# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench bench-full demo examples check lint stats clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

demo:
	$(PYTHON) -m repro.cli demo

# Static analysis (docs/STATIC_ANALYSIS.md).  The domain-aware lint
# (repro-sdn check) always runs; ruff and mypy run when installed
# (pip install -e ".[check]") and are skipped with a notice otherwise,
# so a bare container can still run the core gate.  CI installs both.
check:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	PYTHONPATH=src $(PYTHON) -m repro.cli check src benchmarks examples
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[check]')"; \
	fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[check]')"; \
	fi

lint: check
	PYTHONPATH=src $(PYTHON) -m pytest --collect-only -q tests benchmarks > /dev/null

# Observability smoke (docs/OBSERVABILITY.md): run a tiny instrumented
# headline experiment, then summarise its span trace.
stats:
	PYTHONPATH=src $(PYTHON) -m repro.cli headline \
		--configs 2 --trials 5 --seed 12 --mode table \
		--trace /tmp/repro-trace.ndjson --metrics /tmp/repro-metrics.json
	PYTHONPATH=src $(PYTHON) -m repro.cli stats /tmp/repro-trace.ndjson

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/web_visit_recon.py
	$(PYTHON) examples/ids_logging_recon.py
	$(PYTHON) examples/defender_leakage_audit.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
