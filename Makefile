# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench bench-smoke bench-full profile-headline demo examples check check-project sanitize-smoke lint stats faults-smoke parallel-smoke serve-smoke defend-smoke coverage clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Performance-regression smoke: the pinned fixed-scale proxy benchmark
# compared against the stored BENCH_headline.json baseline.  Fails on a
# >20% regression on the baseline machine; on other machines the
# comparison is reported as informational only (timings don't transfer
# across CPUs).  Seconds of wall clock, unlike `bench`.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_proxy.py \
		--benchmark-only --bench-compare

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Where the headline run spends its budget: a reduced-scale headline
# experiment with the phase profiler attached, printed as a per-phase
# wall/CPU breakdown (model build, exact + fast screening, probe
# selection, trials).  Set REPRO_SIMPATH=reference to profile the
# unoptimized path for comparison.
profile-headline:
	PYTHONPATH=src $(PYTHON) -m repro.cli headline \
		--configs 4 --trials 20 --seed 2017 --mode table \
		--metrics /tmp/repro-profile-metrics.json
	@$(PYTHON) -c "import json; \
		doc = json.load(open('/tmp/repro-profile-metrics.json')); \
		phases = doc.get('phases', {}); \
		rows = sorted(phases.items(), key=lambda kv: -kv[1]['wall_s']); \
		print(); \
		print(f'{\"phase\":<32}{\"wall s\":>9}{\"cpu s\":>9}{\"count\":>8}'); \
		[print(f'{n:<32}{v[\"wall_s\"]:>9.2f}{v[\"cpu_s\"]:>9.2f}{v[\"count\"]:>8.0f}') for n, v in rows]; \
		total = sum(v['wall_s'] for v in phases.values()); \
		print(f'{\"(sum of phases)\":<32}{total:>9.2f}')"

demo:
	$(PYTHON) -m repro.cli demo

# Static analysis (docs/STATIC_ANALYSIS.md).  The domain-aware lint
# (repro-sdn check) always runs; ruff and mypy run when installed
# (pip install -e ".[check]") and are skipped with a notice otherwise,
# so a bare container can still run the core gate.  CI installs both.
check:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	PYTHONPATH=src $(PYTHON) -m repro.cli check src benchmarks examples
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[check]')"; \
	fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[check]')"; \
	fi

# Whole-program pass (docs/STATIC_ANALYSIS.md, "check --project"):
# call-graph seed provenance, cross-module escape analysis, worker
# closures -- enforced against the committed lint-baseline.json (new
# findings and stale entries both fail).
check-project:
	PYTHONPATH=src $(PYTHON) -m repro.cli check --project \
		--baseline lint-baseline.json src

# Runtime determinism sanitizer smoke (docs/OBSERVABILITY.md): the demo
# under REPRO_SANITIZE=1 -- frozen cache checksums verified at every
# phase/span boundary, unseeded default_rng() refused.
sanitize-smoke:
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro.cli demo

lint: check check-project
	PYTHONPATH=src $(PYTHON) -m pytest --collect-only -q tests benchmarks > /dev/null

# Observability smoke (docs/OBSERVABILITY.md): run a tiny instrumented
# headline experiment, then summarise its span trace.
stats:
	PYTHONPATH=src $(PYTHON) -m repro.cli headline \
		--configs 2 --trials 5 --seed 12 --mode table \
		--trace /tmp/repro-trace.ndjson --metrics /tmp/repro-metrics.json
	PYTHONPATH=src $(PYTHON) -m repro.cli stats /tmp/repro-trace.ndjson

# Fault-injection smoke (docs/FAULTS.md): a tiny end-to-end robustness
# sweep -- screened sampling, faulty re-trials, retries, counter export.
# Not part of tier-1; a couple of minutes of wall clock.
faults-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli robustness \
		--configs 2 --trials 6 --mode table --rates 0,0.3 \
		--probe-retries 1 --seed 5 \
		--metrics /tmp/repro-faults-metrics.json

# Parallel-execution smoke (EXPERIMENTS.md "Parallel execution"): the
# same tiny headline experiment serial and with --trial-jobs 2 must
# produce identical result documents -- only the recorded fan-out
# settings (params/job trial_jobs, provenance) may differ.  Exercises both
# fan-out grains (config screening + trials) through the real CLI.
parallel-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli headline \
		--configs 1 --trials 6 --seed 12 --mode table \
		--out /tmp/repro-parallel-serial.json
	PYTHONPATH=src $(PYTHON) -m repro.cli headline \
		--configs 1 --trials 6 --seed 12 --mode table \
		--trial-jobs 2 --out /tmp/repro-parallel-jobs2.json
	@$(PYTHON) -c "import json; \
		docs = [json.load(open(p)) for p in \
			('/tmp/repro-parallel-serial.json', '/tmp/repro-parallel-jobs2.json')]; \
		[d.pop('provenance', None) for d in docs]; \
		[d['params'].pop('trial_jobs', None) for d in docs]; \
		[d['job'].pop('trial_jobs', None) for d in docs if d.get('job')]; \
		assert docs[0] == docs[1], 'parallel run diverged from serial'; \
		print('parallel-smoke: serial and --trial-jobs 2 documents identical')"

# Service smoke (docs/SERVICE.md): spool three recon jobs, serve under
# a session budget to simulate a mid-job kill (exit 3), resume to
# completion, then serve the same spool uninterrupted into a fresh
# state and require every checkpoint digest to match -- the
# kill/resume bit-identity contract, end-to-end through the CLI.
serve-smoke:
	rm -rf /tmp/repro-serve-smoke
	for seed in 5 6 7; do \
		PYTHONPATH=src $(PYTHON) -m repro.cli submit recon \
			--configs 2 --trials 6 --mode table --n-targets 2 \
			--seed $$seed --spool /tmp/repro-serve-smoke/spool \
			|| exit 1; \
	done
	PYTHONPATH=src $(PYTHON) -m repro.cli serve \
		--spool /tmp/repro-serve-smoke/spool \
		--state /tmp/repro-serve-smoke/state --shards 2 \
		--max-sessions 3; \
	test $$? -eq 3
	PYTHONPATH=src $(PYTHON) -m repro.cli serve \
		--spool /tmp/repro-serve-smoke/spool \
		--state /tmp/repro-serve-smoke/state --shards 2
	PYTHONPATH=src $(PYTHON) -m repro.cli serve \
		--spool /tmp/repro-serve-smoke/spool \
		--state /tmp/repro-serve-smoke/reference --shards 2
	@PYTHONPATH=src $(PYTHON) -c "from repro.service.checkpoint import CheckpointStore; \
		resumed = CheckpointStore('/tmp/repro-serve-smoke/state'); \
		reference = CheckpointStore('/tmp/repro-serve-smoke/reference'); \
		jobs = sorted(resumed.known_jobs()); \
		assert len(jobs) == 3 and jobs == sorted(reference.known_jobs()), jobs; \
		bad = [j for j in jobs if resumed.digests(j) != reference.digests(j)]; \
		assert not bad, f'resumed digests diverged: {bad}'; \
		print(f'serve-smoke: {len(jobs)} jobs resumed bit-identically')"

# Defense smoke (docs/DEFENSES.md): the countermeasure x attacker grid
# end-to-end through the CLI -- every built-in defense attached to the
# simulated network, the online recon detector scored in each cell,
# defense/detector counters exported.  Not part of tier-1; ~15 seconds
# of wall clock.
defend-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli defend \
		--configs 2 --trials 4 --seed 5 \
		--metrics /tmp/repro-defend-metrics.json

# Coverage gate (CI runs this with pytest-cov installed; locally it is
# skipped with a notice when pytest-cov is absent, like ruff/mypy in
# `check`).  The floor sits under the measured baseline (~95% line
# coverage of src/repro under the tier-1 suite) to absorb tool and
# fork-pool accounting differences -- raise it as coverage grows,
# never lower it to pass.  Raised 90 -> 92 with the defense test
# battery (defend grid, detect package, DEF001 rule all fully
# exercised by tier-1).
coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		PYTHONPATH=src $(PYTHON) -m pytest -x -q \
			--cov=repro --cov-report=term-missing:skip-covered \
			--cov-fail-under=92; \
	else \
		echo "pytest-cov not installed; skipping (pip install pytest-cov)"; \
	fi

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/web_visit_recon.py
	$(PYTHON) examples/ids_logging_recon.py
	$(PYTHON) examples/defender_leakage_audit.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
