# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench bench-full demo examples lint clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

demo:
	$(PYTHON) -m repro.cli demo

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	PYTHONPATH=src $(PYTHON) -m pytest --collect-only -q tests benchmarks > /dev/null

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/web_visit_recon.py
	$(PYTHON) examples/ids_logging_recon.py
	$(PYTHON) examples/defender_leakage_audit.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
