"""Per-window feature extraction for the recon detector.

Four rates/ratios per window, all computable by a switch from its own
control-channel counters.  Probing shows up as packet-in and flow-mod
activity out of proportion to the data-plane volume: a probe is a
single spoofed packet engineered to miss the flow table, so a probed
window has a high miss fraction at low received rate, while benign
bursts raise the received rate along with the misses.
"""

from __future__ import annotations

from typing import Tuple

from repro.detect.windows import CounterWindow

#: Feature order produced by :func:`window_features`.
FEATURE_NAMES: Tuple[str, ...] = (
    "packet_in_rate",
    "miss_fraction",
    "received_rate",
    "flow_mod_rate",
)


def window_features(window: CounterWindow) -> Tuple[float, ...]:
    """The window's feature vector, in :data:`FEATURE_NAMES` order."""
    return (
        window.packet_ins / window.duration,
        window.packet_ins / max(window.received, 1),
        window.received / window.duration,
        window.flow_mods / window.duration,
    )
