"""The seeded, deterministic recon detector.

Two scoring methods over :func:`~repro.detect.features.window_features`
vectors:

* ``threshold`` -- a z-score on the packet-in rate against the benign
  calibration windows (the classic control-channel rate alarm);
* ``logistic`` -- a logistic regression over all four features,
  standardised against the pooled calibration windows and fitted by
  plain-numpy full-batch gradient descent from a seeded initial weight
  vector.

Both are deterministic functions of ``(calibration windows, seed)``:
no OS entropy, no data-dependent iteration counts, so a grid cell's
detector score is bit-identical across runs and ``--trial-jobs``
settings.  Scoring emits ``detector.windows.scored`` and
``detector.alerts`` counters on the ambient obs backend.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.detect.features import FEATURE_NAMES, window_features
from repro.detect.windows import CounterWindow
from repro.obs import get_instrumentation

#: Valid ``--detector`` / ``JobSpec.detector`` method names.
DETECTOR_CHOICES: Tuple[str, ...] = ("threshold", "logistic")

#: Floor on feature standard deviations, so a constant feature (e.g.
#: flow mods under a proactive defense) standardises to zero instead of
#: dividing by zero.
_STD_FLOOR = 1e-12


class ReconDetector:
    """Score counter windows for reconnaissance probing.

    ``fit`` calibrates on labelled benign/attack windows; ``score``
    maps a window to ``[0, 1]`` (higher = more probe-like).  A window
    scoring above ``alert_threshold`` counts as an alert.
    """

    def __init__(
        self,
        method: str = "threshold",
        seed: int = 0,
        alert_threshold: float = 0.5,
        epochs: int = 200,
        learning_rate: float = 0.5,
    ) -> None:
        if method not in DETECTOR_CHOICES:
            raise ValueError(
                f"unknown detector method {method!r}; choose from "
                f"{', '.join(DETECTOR_CHOICES)}"
            )
        if epochs < 1 or learning_rate <= 0:
            raise ValueError("epochs must be >= 1, learning_rate positive")
        self.method = method
        self.seed = int(seed)
        self.alert_threshold = float(alert_threshold)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._bias = 0.0
        metrics = get_instrumentation().metrics
        self._obs_scored = metrics.counter("detector.windows.scored")
        self._obs_alerts = metrics.counter("detector.alerts")

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def fit(
        self,
        benign: Sequence[CounterWindow],
        attack: Sequence[CounterWindow],
    ) -> None:
        """Calibrate on labelled windows (benign=0, attack=1)."""
        if not benign or not attack:
            raise ValueError("need calibration windows from both classes")
        benign_x = np.array([window_features(w) for w in benign])
        attack_x = np.array([window_features(w) for w in attack])
        if self.method == "threshold":
            # Calibrate the z-score on the benign packet-in rate only;
            # the attack windows just locate the alert cut midway
            # between the two class means.
            self._mean = benign_x.mean(axis=0)
            self._std = np.maximum(benign_x.std(axis=0), _STD_FLOOR)
            return
        pooled = np.concatenate([benign_x, attack_x])
        self._mean = pooled.mean(axis=0)
        self._std = np.maximum(pooled.std(axis=0), _STD_FLOOR)
        x = (pooled - self._mean) / self._std
        y = np.concatenate(
            [np.zeros(len(benign_x)), np.ones(len(attack_x))]
        )
        rng = np.random.default_rng(self.seed)
        weights = rng.normal(0.0, 0.01, size=len(FEATURE_NAMES))
        bias = 0.0
        for _ in range(self.epochs):
            logits = np.clip(x @ weights + bias, -60.0, 60.0)
            probs = 1.0 / (1.0 + np.exp(-logits))
            error = probs - y
            weights -= self.learning_rate * (x.T @ error) / len(y)
            bias -= self.learning_rate * float(error.mean())
        self._weights = weights
        self._bias = bias

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._mean is not None

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, window: CounterWindow) -> float:
        """Probe-likelihood of one window in ``[0, 1]``."""
        if self._mean is None or self._std is None:
            raise RuntimeError("fit() must run before score()")
        features = np.array(window_features(window))
        z = (features - self._mean) / self._std
        if self.method == "threshold":
            # Squash the packet-in-rate z-score; z = 0 (benign-typical)
            # maps to 0.5, three benign sigmas to ~0.95.
            logit = float(np.clip(z[0], -60.0, 60.0))
        else:
            assert self._weights is not None
            logit = float(np.clip(z @ self._weights + self._bias, -60.0, 60.0))
        value = 1.0 / (1.0 + float(np.exp(-logit)))
        self._obs_scored.inc()
        if value > self.alert_threshold:
            self._obs_alerts.inc()
        return value

    def scores(self, windows: Sequence[CounterWindow]) -> List[float]:
        """Scores for a window sequence, in order."""
        return [self.score(window) for window in windows]
