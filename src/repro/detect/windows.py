"""Counter windows: the detector's raw observation unit.

A :class:`WindowRecorder` watches one obs metrics backend and cuts the
monotonically increasing switch/controller counters into per-window
deltas.  The recorder never touches the simulator -- it reads the same
``sim.switch.*`` / ``sim.controller.*`` counters the observability
layer already maintains, which is exactly the vantage point a real
switch-side detector has (control-channel message counts, not packet
payloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Instrumentation

#: The counter names one window aggregates, in feature order.
WINDOW_COUNTERS: Tuple[str, ...] = (
    "sim.switch.packet_ins",
    "sim.controller.installs",
    "sim.switch.received",
    "sim.switch.forwarded",
)


@dataclass(frozen=True)
class CounterWindow:
    """Counter deltas over one fixed-length observation window."""

    duration: float
    packet_ins: int
    flow_mods: int
    received: int
    forwarded: int

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("window duration must be positive")


class WindowRecorder:
    """Cut a metrics backend's counter stream into windows.

    The recorder snapshots the four :data:`WINDOW_COUNTERS` at
    construction and again at every :meth:`cut`; each cut yields the
    deltas since the previous snapshot.  Attach it to the same
    :class:`~repro.obs.Instrumentation` the simulated network resolves
    its counters from.
    """

    def __init__(self, instrumentation: "Instrumentation") -> None:
        self._metrics = instrumentation.metrics
        self._last = self._snapshot()

    def _snapshot(self) -> Dict[str, int]:
        return {
            name: int(self._metrics.counter(name).value)
            for name in WINDOW_COUNTERS
        }

    def cut(self, duration: float) -> CounterWindow:
        """Close the current window and start the next one."""
        now = self._snapshot()
        delta = {name: now[name] - self._last[name] for name in now}
        self._last = now
        return CounterWindow(
            duration=float(duration),
            packet_ins=delta["sim.switch.packet_ins"],
            flow_mods=delta["sim.controller.installs"],
            received=delta["sim.switch.received"],
            forwarded=delta["sim.switch.forwarded"],
        )
