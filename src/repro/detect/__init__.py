"""Online reconnaissance detection from control-channel counters.

The defender's side of the timing channel: a switch that is being
probed emits a distinctive control-plane signature (bursts of
packet-ins and flow-mods out of proportion to the data-plane load).
This package turns the obs layer's counter stream into fixed-length
windows (:mod:`repro.detect.windows`), summarises each window as a
small feature vector (:mod:`repro.detect.features`), and scores the
vectors with a seeded, deterministic detector
(:mod:`repro.detect.detector`) -- threshold or logistic -- that the
``repro-sdn defend`` grid evaluates against every countermeasure.

Modelled on the switch-side detectors of Krösche et al. (I DPID It My
Way!) and the per-window ML feature extraction of the Waterclau DPDK
pipeline; see docs/DEFENSES.md for the determinism contract.
"""

from repro.detect.detector import DETECTOR_CHOICES, ReconDetector
from repro.detect.features import FEATURE_NAMES, window_features
from repro.detect.windows import WINDOW_COUNTERS, CounterWindow, WindowRecorder

__all__ = [
    "DETECTOR_CHOICES",
    "CounterWindow",
    "FEATURE_NAMES",
    "ReconDetector",
    "WINDOW_COUNTERS",
    "WindowRecorder",
    "window_features",
]
