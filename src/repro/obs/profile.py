"""Opt-in per-phase wall/CPU profiling.

A :class:`PhaseProfiler` aggregates named phases -- coarse stages like
``harness.model_build`` or ``reproduce.fig6`` -- into per-name totals of
wall time (``time.perf_counter``) and CPU time (``time.process_time``).
Where tracing answers "what happened when", phase profiles answer
"where did the run spend its budget" without storing one record per
event, so they stay cheap even across thousands of trials.

The CPU column only sees the current process: work delegated to the
engine's fork pool shows up as wall time without matching CPU time,
which is itself a useful signal of pool utilisation.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class Phase:
    """One timed phase occurrence, used as a context manager."""

    __slots__ = ("profiler", "name", "_wall_start", "_cpu_start")

    def __init__(self, profiler: Optional["PhaseProfiler"], name: str) -> None:
        self.profiler = profiler
        self.name = name
        self._wall_start = 0.0
        self._cpu_start = 0.0

    def __enter__(self) -> "Phase":
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self.profiler is not None:
            self.profiler._record(
                self.name,
                wall_s=time.perf_counter() - self._wall_start,
                cpu_s=time.process_time() - self._cpu_start,
            )


class PhaseProfiler:
    """Aggregate wall/CPU totals per phase name."""

    def __init__(self) -> None:
        self.totals: Dict[str, Dict[str, float]] = {}

    def phase(self, name: str) -> Phase:
        """Open a timed phase; totals accumulate when it exits."""
        return Phase(self, name)

    def _record(self, name: str, wall_s: float, cpu_s: float) -> None:
        entry = self.totals.get(name)
        if entry is None:
            entry = {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            self.totals[name] = entry
        entry["count"] += 1
        entry["wall_s"] += wall_s
        entry["cpu_s"] += cpu_s

    def __len__(self) -> int:
        return len(self.totals)

    def to_document(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals as a sorted plain-JSON mapping."""
        return {name: dict(self.totals[name]) for name in sorted(self.totals)}


class NullPhase(Phase):
    """Inert phase: enter/exit read no clocks."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(None, "null")

    def __enter__(self) -> "NullPhase":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass


_NULL_PHASE = NullPhase()


class NullPhaseProfiler(PhaseProfiler):
    """Profiler that hands out one shared inert phase (the default)."""

    def phase(self, name: str) -> Phase:
        return _NULL_PHASE
