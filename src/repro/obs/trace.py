"""Span-based tracing with monotonic clocks and NDJSON export.

A :class:`Tracer` hands out context-managed spans::

    with tracer.span("engine.evolve", T=T):
        ...

Each span records monotonic start/duration (``time.perf_counter``, never
wall-clock, so traces are immune to NTP steps), its nesting depth, and a
parent/child link, and is appended to the tracer's record list when the
``with`` block exits.  Traces serialise to NDJSON -- one JSON object per
line -- which streams, greps, and diffs better than one giant document.

The :class:`NullTracer` is the default backend's counterpart: its
``span()`` returns one shared inert context manager, so tracing code on
hot paths costs a method call and a no-op ``__enter__``/``__exit__``
when disabled.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

PathLike = Union[str, Path]

#: Version stamp written into every span record.
TRACE_SCHEMA_VERSION = 1

#: Keys every exported span record must carry.
REQUIRED_SPAN_KEYS = ("span_id", "name", "start_s", "duration_s", "depth")

#: JSON-safe attribute value types.
_ATTR_TYPES = (str, int, float, bool, type(None))


class Span:
    """One timed region, used as a context manager.

    ``duration_s`` is ``None`` while the span is open and set from the
    monotonic clock when the ``with`` block exits.
    """

    __slots__ = (
        "tracer",
        "span_id",
        "parent_id",
        "name",
        "depth",
        "start_s",
        "duration_s",
        "status",
        "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        depth: int,
        attrs: Dict[str, object],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.depth = depth
        self.start_s: Optional[float] = None
        self.duration_s: Optional[float] = None
        self.status = "ok"
        self.attrs = attrs

    def set_attr(self, key: str, value: object) -> None:
        """Attach one JSON-safe attribute to the span."""
        if not isinstance(value, _ATTR_TYPES):
            value = repr(value)
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self.start_s = time.perf_counter() - self.tracer.epoch
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self.start_s is None:  # pragma: no cover - misuse guard
            raise RuntimeError(f"span {self.name!r} exited before entry")
        self.duration_s = (time.perf_counter() - self.tracer.epoch) - self.start_s
        if exc_type is not None:
            self.status = "error"
        self.tracer._finish(self)

    def to_json(self) -> Dict[str, object]:
        """The span as a plain-JSON record (one NDJSON line)."""
        record: Dict[str, object] = {
            "schema_version": TRACE_SCHEMA_VERSION,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = dict(sorted(self.attrs.items()))
        return record


class Tracer:
    """Factory and collector of spans for one run.

    All timestamps are relative to the tracer's creation (``epoch`` on
    the monotonic clock), so ``start_s`` reads as "seconds into the
    run".  Nesting is tracked with an explicit stack: a span opened
    while another is active becomes its child.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.records: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    def span(self, name: str, **attrs: object) -> Span:
        """Open a new span named ``name``; keyword args become attrs."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            depth=len(self._stack),
            attrs={
                key: value if isinstance(value, _ATTR_TYPES) else repr(value)
                for key, value in attrs.items()
            },
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - misuse guard
            # Out-of-order exit (span leaked past its parent): drop the
            # stack down to, and including, this span if present.
            while self._stack:
                top = self._stack.pop()
                if top is span:
                    break
        self.records.append(span)

    def __len__(self) -> int:
        return len(self.records)

    def write_ndjson(self, path: PathLike) -> Path:
        """Write every finished span, one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for span in self.records:
                handle.write(json.dumps(span.to_json(), sort_keys=True))
                handle.write("\n")
        return path


class NullSpan(Span):
    """Inert span: enter/exit do nothing, attributes vanish."""

    __slots__ = ()

    def __init__(self) -> None:
        # No tracer back-reference is ever used; the attrs dict is shared
        # and never written.
        self.span_id = 0
        self.parent_id = None
        self.name = "null"
        self.depth = 0
        self.start_s = None
        self.duration_s = None
        self.status = "ok"
        self.attrs = {}

    def set_attr(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass


_NULL_SPAN = NullSpan()


class NullTracer(Tracer):
    """Tracer that hands out one shared inert span (the default)."""

    def span(self, name: str, **attrs: object) -> Span:
        return _NULL_SPAN

    def write_ndjson(self, path: PathLike) -> Path:
        raise RuntimeError("the null tracer records nothing to export")


def read_ndjson(path: PathLike) -> List[Dict[str, object]]:
    """Parse an NDJSON trace file into a list of span records.

    Blank lines are ignored; a malformed line or a record missing a
    required span key raises ``ValueError`` naming the line number.
    """
    spans: List[Dict[str, object]] = []
    with Path(path).open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid NDJSON line: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON object per line"
                )
            missing = [key for key in REQUIRED_SPAN_KEYS if key not in record]
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: span record missing {missing}"
                )
            spans.append(record)
    return spans


def iter_spans(records: List[Dict[str, object]], name: str) -> Iterator[Dict[str, object]]:
    """Yield the records whose ``name`` matches exactly."""
    for record in records:
        if record.get("name") == name:
            yield record
