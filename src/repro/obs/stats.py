"""Summarise NDJSON trace files into per-span-name aggregates.

Backs the ``repro-sdn stats`` subcommand: read a trace produced with
``--trace``, group spans by name, and report count / total / mean /
min / max durations, sorted by total time descending so the biggest
consumers lead the table.
"""

from __future__ import annotations

from typing import Dict, List, Union


def summarize_spans(
    records: List[Dict[str, object]]
) -> List[Dict[str, Union[str, int, float]]]:
    """Aggregate span records (from ``trace.read_ndjson``) by name.

    Returns one row per span name with keys ``name``, ``count``,
    ``total_ms``, ``mean_ms``, ``min_ms``, ``max_ms``, sorted by
    ``total_ms`` descending (ties broken by name for determinism).
    Spans without a recorded duration (still open at export) are
    skipped.
    """
    grouped: Dict[str, List[float]] = {}
    for record in records:
        duration = record.get("duration_s")
        if not isinstance(duration, (int, float)):
            continue
        grouped.setdefault(str(record["name"]), []).append(float(duration))

    rows: List[Dict[str, Union[str, int, float]]] = []
    for name in sorted(grouped):
        durations_ms = [d * 1000.0 for d in grouped[name]]
        total = sum(durations_ms)
        rows.append(
            {
                "name": name,
                "count": len(durations_ms),
                "total_ms": total,
                "mean_ms": total / len(durations_ms),
                "min_ms": min(durations_ms),
                "max_ms": max(durations_ms),
            }
        )
    rows.sort(key=lambda row: (-float(row["total_ms"]), str(row["name"])))
    return rows


def format_table(rows: List[Dict[str, Union[str, int, float]]]) -> str:
    """Render summary rows as an aligned plain-text table."""
    headers = ("span", "count", "total_ms", "mean_ms", "min_ms", "max_ms")
    if not rows:
        return "trace contains no finished spans"
    body = [
        (
            str(row["name"]),
            str(row["count"]),
            f"{float(row['total_ms']):.3f}",
            f"{float(row['mean_ms']):.3f}",
            f"{float(row['min_ms']):.3f}",
            f"{float(row['max_ms']):.3f}",
        )
        for row in rows
    ]
    widths = [
        max(len(headers[i]), max(len(line[i]) for line in body))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(len(headers))),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for line in body:
        # name column left-aligned, value columns right-aligned
        lines.append(
            "  ".join(
                [line[0].ljust(widths[0])]
                + [line[i].rjust(widths[i]) for i in range(1, len(headers))]
            )
        )
    return "\n".join(lines)
