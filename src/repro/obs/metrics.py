"""Metrics primitives: counters, gauges, histograms, and their registry.

All instruments are keyed by dotted lowercase names (``sim.table.hits``,
``engine.score.batch_ms``) and live in one :class:`MetricsRegistry` so a
whole run can be exported as a single JSON document.  Three kinds:

* :class:`Counter` -- monotonically increasing event counts;
* :class:`Gauge` -- last-written values (pool sizes, utilisation);
* :class:`Histogram` -- value distributions over *fixed* bucket
  boundaries.  The boundaries are compile-time constants (powers of
  ten), never derived from the observed data, so exported documents are
  byte-comparable between runs of the same seed -- the same
  "fixed shapes" discipline the scoring engine applies to its blocks.

The null counterparts (:class:`NullCounter` et al.) implement the same
interface as shared do-nothing singletons; they are what the default
:class:`~repro.obs.api.NullInstrumentation` hands to hot paths, so an
uninstrumented run pays one attribute chase and a no-op call per event.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]

#: Version stamp of the exported metrics document.
METRICS_SCHEMA_VERSION = 1

#: Dotted lowercase metric names: ``layer.component.event``.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Fixed histogram bucket boundaries (upper edges), in the observed
#: unit.  Spanning 1e-6 .. 1e6 covers microseconds-to-minutes when
#: observing milliseconds and single events to millions when counting.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** exponent for exponent in range(-6, 7)
)


def validate_metric_name(name: str) -> str:
    """Check a metric name against the dotted-name convention."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: expected dotted lowercase "
            "segments like 'sim.table.hits'"
        )
    return name


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int = 0

    def inc(self, value: int = 1) -> None:
        """Add ``value`` (must be non-negative) to the count."""
        if value < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += value


class Gauge:
    """A last-write-wins numeric value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """A value distribution over fixed, data-independent buckets.

    ``bucket_counts[i]`` counts observations with
    ``value <= bounds[i]``; the final slot counts the overflow above the
    last bound.  Count/sum/min/max are tracked exactly alongside.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "low", "high")

    def __init__(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKET_BOUNDS
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count: int = 0
        self.total: float = 0.0
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the observations, if any."""
        return self.total / self.count if self.count else None

    def to_json(self) -> Dict[str, object]:
        """The histogram as a plain-JSON mapping (sparse buckets)."""
        buckets: Dict[str, int] = {}
        for bound, count in zip(self.bounds, self.bucket_counts):
            if count:
                buckets[f"le_{bound:g}"] = count
        if self.bucket_counts[-1]:
            buckets["inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.low,
            "max": self.high,
            "mean": self.mean,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create home of every instrument in one run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(validate_metric_name(name))
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = Gauge(validate_metric_name(name))
            self._gauges[name] = instrument
        return instrument

    def histogram(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKET_BOUNDS
    ) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = Histogram(validate_metric_name(name), bounds)
            self._histograms[name] = instrument
        return instrument

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def to_document(self) -> Dict[str, object]:
        """Every instrument flattened into one sorted JSON document."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_json()
                for name in sorted(self._histograms)
            },
        }

    def write_json(self, path: PathLike) -> Path:
        """Serialise :meth:`to_document` to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_document(), indent=2, sort_keys=True)
        )
        return path


# ----------------------------------------------------------------------
# Null backend: shared do-nothing singletons
# ----------------------------------------------------------------------
class NullCounter(Counter):
    """Counter whose increments vanish (the default backend)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null.counter")

    def inc(self, value: int = 1) -> None:
        pass


class NullGauge(Gauge):
    """Gauge whose writes vanish."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null.gauge")

    def set(self, value: float) -> None:
        pass


class NullHistogram(Histogram):
    """Histogram whose observations vanish."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null.histogram")

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullMetricsRegistry(MetricsRegistry):
    """Registry that hands every caller the same inert instruments.

    ``counter(name)`` skips name validation and the per-name dict -- the
    hot-path cost of a disabled metric is one method call returning a
    module-level singleton.
    """

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKET_BOUNDS
    ) -> Histogram:
        return _NULL_HISTOGRAM
