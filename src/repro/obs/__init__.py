"""Observability: metrics, tracing, and profiling behind one stable API.

Public surface:

* :class:`Instrumentation` / :data:`NULL` -- the backend facade and its
  default do-nothing instance;
* :func:`get_instrumentation` / :func:`set_instrumentation` /
  :func:`use_instrumentation` -- the current-backend plumbing;
* :func:`counter_inc` / :func:`span` / :func:`phase` -- module-level
  hooks that act on the current backend;
* ``repro.obs.metrics`` / ``repro.obs.trace`` / ``repro.obs.profile``
  -- the underlying primitives, importable directly.

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and the
NDJSON trace format.
"""

from repro.obs.api import (
    NULL,
    Instrumentation,
    NullInstrumentation,
    counter_inc,
    get_instrumentation,
    phase,
    set_instrumentation,
    span,
    use_instrumentation,
)
from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.stats import format_table, summarize_spans
from repro.obs.trace import Span, Tracer, read_ndjson

__all__ = [
    "NULL",
    "Instrumentation",
    "NullInstrumentation",
    "counter_inc",
    "get_instrumentation",
    "set_instrumentation",
    "use_instrumentation",
    "span",
    "phase",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKET_BOUNDS",
    "PhaseProfiler",
    "Span",
    "Tracer",
    "read_ndjson",
    "summarize_spans",
    "format_table",
]
