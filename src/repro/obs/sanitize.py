"""The runtime determinism sanitizer (``REPRO_SANITIZE=1`` / ``--sanitize``).

The static project rules (docs/STATIC_ANALYSIS.md) prove determinism
properties the AST can express; this module checks the two it cannot at
runtime, with zero cost when disabled:

* **frozen-buffer integrity** -- the cache accessors hand out shared
  read-only arrays (``evolution``, ``prefix_distribution``,
  ``dist_full``, the compact model's membership/coverage/CSR buffers).
  Registered arrays are checksummed (CRC32) when guarded and
  re-verified at every observability phase/span boundary: a thawed
  ``writeable`` flag or a drifted checksum raises
  :class:`DeterminismError` at the first boundary after the corruption,
  instead of as a wrong number three experiments later.
* **seed provenance** -- while the sanitizer is active,
  ``np.random.default_rng()`` *without* a seed raises immediately (an
  OS-entropy draw makes the whole run unreproducible), and registered
  generators have their bit-generator state hashed at each boundary, so
  two runs of the same seed can be diffed phase-by-phase via
  :func:`report`.

Activation is explicit: the CLI's ``--sanitize`` flag or the
``REPRO_SANITIZE=1`` environment variable wraps the command in
:func:`sanitized`.  Every hook in library code is gated on
:func:`is_active` -- a single module-global read -- so the disabled
path stays off the profile (pinned by
``benchmarks/test_bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import os
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np


class DeterminismError(AssertionError):
    """A determinism contract was broken at runtime."""


def _array_crc(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def _rng_state_hash(generator: np.random.Generator) -> int:
    state = generator.bit_generator.state
    payload = json.dumps(state, sort_keys=True, default=str)
    return zlib.crc32(payload.encode("utf-8"))


class Sanitizer:
    """One activation's guards, checkpoints, and findings."""

    def __init__(self) -> None:
        #: name -> (array, checksum at guard time).
        self._arrays: Dict[str, Tuple[np.ndarray, int]] = {}
        #: name -> generator (state hashed at each checkpoint).
        self._rngs: Dict[str, np.random.Generator] = {}
        #: Ordered boundary records: label + per-generator state hashes.
        self.checkpoints: List[Dict[str, Any]] = []

    # -- registration --------------------------------------------------
    def guard_array(self, name: str, array: np.ndarray) -> None:
        """Register a frozen cache array (idempotent per name+object)."""
        known = self._arrays.get(name)
        if known is not None and known[0] is array:
            return
        if array.flags.writeable:
            raise DeterminismError(
                f"cache array '{name}' registered with the sanitizer is "
                "writeable; freeze it with setflags(write=False) before "
                "sharing"
            )
        self._arrays[name] = (array, _array_crc(array))

    def guard_rng(self, name: str, generator: np.random.Generator) -> None:
        """Register a generator whose state is hashed at boundaries."""
        self._rngs[name] = generator

    # -- verification --------------------------------------------------
    def verify_arrays(self, label: str) -> None:
        for name, (array, checksum) in sorted(self._arrays.items()):
            if array.flags.writeable:
                raise DeterminismError(
                    f"at '{label}': cache array '{name}' was thawed "
                    "(writeable flag re-enabled); some caller is "
                    "preparing to mutate shared cache state"
                )
            current = _array_crc(array)
            if current != checksum:
                raise DeterminismError(
                    f"at '{label}': cache array '{name}' changed "
                    f"underneath its checksum ({checksum:#010x} -> "
                    f"{current:#010x}); a shared frozen buffer was "
                    "mutated"
                )

    def checkpoint(self, label: str) -> None:
        """Verify every guard and record generator states at ``label``."""
        self.verify_arrays(label)
        self.checkpoints.append(
            {
                "label": label,
                "rng_state": {
                    name: _rng_state_hash(generator)
                    for name, generator in sorted(self._rngs.items())
                },
            }
        )

    def report(self) -> Dict[str, Any]:
        """The activation's summary (diffable across same-seed runs)."""
        return {
            "guarded_arrays": sorted(self._arrays),
            "guarded_rngs": sorted(self._rngs),
            "checkpoints": list(self.checkpoints),
        }


#: The active sanitizer, or ``None`` -- the one global every hook reads.
_ACTIVE: Optional[Sanitizer] = None


def is_active() -> bool:
    """Whether a sanitizer is installed (the cheap gate for hooks)."""
    return _ACTIVE is not None


def get_sanitizer() -> Optional[Sanitizer]:
    return _ACTIVE


def guard_array(name: str, array: np.ndarray) -> None:
    """Register ``array`` when the sanitizer is active; no-op otherwise."""
    if _ACTIVE is not None:
        _ACTIVE.guard_array(name, array)


def guard_rng(name: str, generator: np.random.Generator) -> None:
    """Register ``generator`` when active; no-op otherwise."""
    if _ACTIVE is not None:
        _ACTIVE.guard_rng(name, generator)


def checkpoint(label: str) -> None:
    """Run a boundary check when active; no-op otherwise."""
    if _ACTIVE is not None:
        _ACTIVE.checkpoint(label)


def enabled_by_env() -> bool:
    """Whether ``REPRO_SANITIZE`` requests activation."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


@contextmanager
def sanitized() -> Iterator[Sanitizer]:
    """Activate the sanitizer for a ``with`` block.

    Installs the module-global sanitizer, patches
    ``np.random.default_rng`` to reject unseeded construction, runs a
    final verification pass on exit, and always restores both.  Nested
    activations reuse the outer sanitizer.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        yield _ACTIVE
        return
    sanitizer = Sanitizer()
    real_default_rng = np.random.default_rng

    def checked_default_rng(seed: Any = None) -> np.random.Generator:
        if seed is None:
            raise DeterminismError(
                "np.random.default_rng() called without a seed while the "
                "determinism sanitizer is active; an OS-entropy stream "
                "makes the run unreproducible -- thread the run seed down "
                "(see DETERMINISM.md)"
            )
        return real_default_rng(seed)

    _ACTIVE = sanitizer
    np.random.default_rng = checked_default_rng  # type: ignore[assignment]
    try:
        yield sanitizer
        sanitizer.checkpoint("sanitize.exit")
    finally:
        np.random.default_rng = real_default_rng  # type: ignore[assignment]
        _ACTIVE = None
