"""The stable observability facade: :class:`Instrumentation`.

One object bundles the three pillars -- metrics registry, span tracer,
phase profiler -- behind the surface the rest of the codebase talks to::

    from repro.obs import Instrumentation, use_instrumentation

    obs = Instrumentation()
    with use_instrumentation(obs):
        run_fig6(params=params)
    obs.write_trace("trace.ndjson")
    obs.write_metrics("metrics.json")

Components that cannot thread an ``instrumentation=`` argument (the
simulator's switches, deep library code) read the *current*
instrumentation via :func:`get_instrumentation`; the default is the
shared :data:`NULL` singleton, whose every operation is a no-op, so the
library is silent unless a caller opts in.

``obs.enabled`` lets hot paths skip argument preparation entirely::

    if obs.enabled:
        obs.histogram("engine.score.batch_ms").observe(elapsed_ms)

This is the one stable public API for observability; module paths
``repro.obs.metrics`` / ``repro.obs.trace`` / ``repro.obs.profile``
carry the underlying primitives.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Tuple, Union

from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.profile import NullPhaseProfiler, Phase, PhaseProfiler
from repro.obs.sanitize import checkpoint as _sanitize_checkpoint
from repro.obs.sanitize import is_active as _sanitize_active
from repro.obs.trace import NullTracer, Span, Tracer

PathLike = Union[str, Path]


class _SanitizedBoundary:
    """Wraps a span/phase so the determinism sanitizer checks fire on
    clean exit (see :mod:`repro.obs.sanitize`); built only while the
    sanitizer is active, so the disabled path never allocates."""

    __slots__ = ("_inner", "_label")

    def __init__(self, inner: object, label: str) -> None:
        self._inner = inner
        self._label = label

    def __enter__(self) -> object:
        return self._inner.__enter__()  # type: ignore[attr-defined]

    def __exit__(self, exc_type: object, exc: object, tb: object) -> object:
        result = self._inner.__exit__(  # type: ignore[attr-defined]
            exc_type, exc, tb
        )
        if exc_type is None:
            _sanitize_checkpoint(self._label)
        return result


class Instrumentation:
    """A recording observability backend: metrics + tracing + profiling."""

    #: Hot paths may consult this to skip measurement setup when the
    #: backend discards everything anyway.
    enabled = True

    def __init__(self) -> None:
        self.metrics: MetricsRegistry = MetricsRegistry()
        self.tracer: Tracer = Tracer()
        self.profiler: PhaseProfiler = PhaseProfiler()

    # -- shortcuts -----------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name``."""
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name``."""
        return self.metrics.gauge(name)

    def histogram(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKET_BOUNDS
    ) -> Histogram:
        """The histogram registered under ``name``."""
        return self.metrics.histogram(name, bounds)

    def span(self, name: str, **attrs: object) -> Span:
        """Open a trace span (context manager)."""
        if _sanitize_active():
            return _SanitizedBoundary(  # type: ignore[return-value]
                self.tracer.span(name, **attrs), f"span:{name}"
            )
        return self.tracer.span(name, **attrs)

    def phase(self, name: str) -> Phase:
        """Open a wall/CPU profiling phase (context manager)."""
        if _sanitize_active():
            return _SanitizedBoundary(  # type: ignore[return-value]
                self.profiler.phase(name), f"phase:{name}"
            )
        return self.profiler.phase(name)

    # -- export --------------------------------------------------------
    def metrics_document(self) -> Dict[str, object]:
        """The metrics registry plus per-phase profile as one document."""
        document = self.metrics.to_document()
        document["phases"] = self.profiler.to_document()
        return document

    def write_metrics(self, path: PathLike) -> Path:
        """Write :meth:`metrics_document` as JSON; returns the path."""
        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.metrics_document(), indent=2, sort_keys=True)
        )
        return path

    def write_trace(self, path: PathLike) -> Path:
        """Write the recorded spans as NDJSON; returns the path."""
        return self.tracer.write_ndjson(path)


class NullInstrumentation(Instrumentation):
    """The default backend: every operation is a shared no-op.

    Exactly one instance exists (:data:`NULL`); components compare
    ``obs.enabled`` or ``obs is NULL`` to detect it.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = NullMetricsRegistry()
        self.tracer = NullTracer()
        self.profiler = NullPhaseProfiler()

    def write_metrics(self, path: PathLike) -> Path:
        raise RuntimeError("the null instrumentation records no metrics")

    def write_trace(self, path: PathLike) -> Path:
        raise RuntimeError("the null instrumentation records no trace")


#: The process-wide do-nothing backend; the default current instrumentation.
NULL = NullInstrumentation()

_current: Instrumentation = NULL


def get_instrumentation() -> Instrumentation:
    """The currently installed instrumentation (default :data:`NULL`)."""
    return _current


def set_instrumentation(obs: Instrumentation) -> Instrumentation:
    """Install ``obs`` as current; returns the previous one."""
    global _current
    previous = _current
    _current = obs
    return previous


@contextmanager
def use_instrumentation(obs: Instrumentation) -> Iterator[Instrumentation]:
    """Install ``obs`` for the duration of a ``with`` block."""
    previous = set_instrumentation(obs)
    try:
        yield obs
    finally:
        set_instrumentation(previous)


# -- module-level convenience hooks -----------------------------------
def counter_inc(name: str, value: int = 1) -> None:
    """Increment a counter on the *current* instrumentation."""
    _current.metrics.counter(name).inc(value)


def span(name: str, **attrs: object) -> Span:
    """Open a span on the *current* instrumentation."""
    return _current.span(name, **attrs)


def phase(name: str) -> Phase:
    """Open a profiling phase on the *current* instrumentation."""
    return _current.phase(name)
