"""Project graph: symbol tables, imports, and a summary call graph.

:class:`ProjectGraph` parses every module of one package and builds the
three structures the whole-program rules query:

* a **symbol table** per module -- what each local name means: an
  imported module, an imported symbol, a top-level function, or a class;
* an **import graph** -- which analyzed module each import resolves to;
* a **call graph** with intraprocedural summaries -- for every function
  and method, one :class:`FunctionInfo` carrying its resolved call
  sites plus the local facts the rules need (RNG constructions,
  generator draws, parameter mutations, cache-array taint, pool
  dispatches), so the interprocedural passes never re-walk an AST.

Method calls resolve through a deliberately simple type discipline:
``self`` binds to the enclosing class; locals annotated with or
assigned from a project class constructor bind to that class;
``self.attr`` binds through assignments in the class body.  Unresolved
receivers fall back to by-name matching when exactly one project class
defines the method -- an over-approximation that suits reachability
analyses (better a spurious edge than a silently missing one).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.base import AnyFunctionDef, ModuleSource, call_endpoint, dotted_name
from repro.lint.rules.mutation import (
    CACHE_ACCESSOR_METHODS,
    CACHE_ATTRIBUTES,
    INPLACE_METHODS,
)
from repro.lint.rules.parallel import POOL_DISPATCH_METHODS

#: Attribute names conventionally bound to ``numpy.random.Generator``s.
GENERATOR_ATTRS: FrozenSet[str] = frozenset(
    {"rng", "_rng", "generator", "_generator"}
)

#: ``Generator`` methods that consume the stream.
DRAW_METHODS: FrozenSet[str] = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "choice",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "integers",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "normal",
        "pareto",
        "permutation",
        "permuted",
        "poisson",
        "random",
        "shuffle",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
    }
)

#: Constructor endpoints whose module-level result taints a global
#: (mirrors the per-file PAR001 list).
TAINTING_GLOBAL_CALLS: FrozenSet[str] = frozenset(
    {"Instrumentation", "get_instrumentation", "default_rng", "RandomState"}
)

#: Methods that write a recorded trace/metrics stream to disk.
TRACE_SINK_METHODS: FrozenSet[str] = frozenset(
    {"write_trace", "write_metrics", "write_ndjson"}
)


# ----------------------------------------------------------------------
# Per-function facts
# ----------------------------------------------------------------------
@dataclass
class CallSite:
    """One resolved (or unresolved) call inside a function body."""

    node: ast.Call
    caller: str
    #: Qualified name of the target when it resolves inside the project.
    callee: Optional[str]
    #: Positional offset of the callee's parameter list relative to the
    #: written arguments (1 for bound-method calls, else 0).
    param_offset: int = 0


@dataclass
class RngSite:
    """A ``numpy.random.default_rng`` construction."""

    node: ast.Call
    #: ``"unseeded"`` | ``"constant"`` | ``"param"`` |
    #: ``"param_none_default"`` | ``"other"``
    kind: str
    #: Parameter feeding the seed, for the ``param*`` kinds.
    param: Optional[str] = None


@dataclass
class DrawSite:
    """A ``Generator`` draw, with its receiver's attribute chain."""

    node: ast.Call
    method: str
    #: Receiver rendered as a name chain, e.g. ``("self", "_network",
    #: "rng")``; local aliases of attribute chains are expanded.
    chain: Tuple[str, ...]


@dataclass
class Mutation:
    """An in-place write whose base is a plain name or ``self.attr``."""

    node: ast.AST
    #: ``"subscript"`` | ``"augassign"`` | ``"inplace"`` | ``"setflags"``
    #: | ``"out="``
    kind: str
    #: The mutated base: a parameter/local name, or ``("self", attr)``.
    base: Tuple[str, ...]


@dataclass
class TaintedArg:
    """A cache-aliased array passed to a callee."""

    site: CallSite
    #: Position in the *written* argument list, or the keyword name.
    position: Optional[int]
    keyword: Optional[str]
    #: Human-readable origin, e.g. ``"evolution()"``.
    origin: str


@dataclass
class PoolDispatch:
    """A ``pool.map(worker, ...)``-style dispatch site."""

    node: ast.Call
    caller: str
    #: The worker argument expression.
    worker: ast.expr
    #: Resolved worker qualified name, when it is a project function.
    worker_qname: Optional[str]
    #: Resolved ``initializer=`` qualified name, when present.
    initializer_qname: Optional[str] = None


@dataclass
class FunctionInfo:
    """One function or method, with its intraprocedural summary."""

    qname: str
    module: str
    node: AnyFunctionDef
    class_name: Optional[str]
    #: Parameter names in binding order (including ``self``).
    params: List[str]
    #: Parameters whose declared default is the literal ``None``.
    none_default_params: FrozenSet[str]
    calls: List[CallSite] = field(default_factory=list)
    rng_sites: List[RngSite] = field(default_factory=list)
    draw_sites: List[DrawSite] = field(default_factory=list)
    mutations: List[Mutation] = field(default_factory=list)
    tainted_args: List[TaintedArg] = field(default_factory=list)
    #: ``self.attr = <cache-aliased expr>`` stores: attr -> store node.
    tainted_attr_stores: Dict[str, ast.AST] = field(default_factory=dict)
    pool_dispatches: List[PoolDispatch] = field(default_factory=list)
    get_instrumentation_calls: List[ast.Call] = field(default_factory=list)
    installs_fresh_instrumentation: bool = False
    trace_sink_calls: List[ast.Call] = field(default_factory=list)
    #: Module-global reads resolved to ``(module, name)`` pairs.
    global_reads: List[Tuple[ast.Name, str, str]] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class: its methods and single project base, if any."""

    qname: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)
    base_qname: Optional[str] = None


@dataclass
class ModuleInfo:
    """One parsed module plus its symbol table."""

    name: str
    path: str
    source: ModuleSource
    #: Local name -> fully qualified target (module or symbol).
    symbols: Dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to RNG/instrumentation state -> reason.
    tainted_globals: Dict[str, str] = field(default_factory=dict)
    #: Aliases under which ``numpy`` / ``numpy.random`` are imported.
    numpy_aliases: Set[str] = field(default_factory=set)
    numpy_random_aliases: Set[str] = field(default_factory=set)
    default_rng_aliases: Set[str] = field(default_factory=set)


# ----------------------------------------------------------------------
# The graph
# ----------------------------------------------------------------------
class ProjectGraph:
    """Symbol tables, import graph, and call graph over one package."""

    def __init__(self, root: Path, package: str) -> None:
        self.root = root
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: callee qname -> call sites targeting it.
        self.callers: Dict[str, List[CallSite]] = {}
        #: method name -> classes defining it (for unique-name fallback).
        self._method_index: Dict[str, List[str]] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, root: str) -> "ProjectGraph":
        """Parse the package rooted at ``root`` (a directory containing
        ``__init__.py``) and build every table."""
        root_path = Path(root)
        if not root_path.is_dir():
            raise FileNotFoundError(f"no such package directory: {root}")
        if not (root_path / "__init__.py").is_file():
            raise ValueError(
                f"{root} is not a package (missing __init__.py)"
            )
        graph = cls(root_path, root_path.name)
        graph._parse_modules()
        graph._index_classes()
        graph._summarise_functions()
        return graph

    def _module_name(self, path: Path) -> str:
        relative = path.relative_to(self.root).with_suffix("")
        parts = [self.package] + list(relative.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _parse_modules(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            source = ModuleSource.from_source(
                str(path), path.read_text(encoding="utf-8")
            )
            if source.tree is None:
                continue  # the per-file pass reports SYN001
            module = ModuleInfo(
                name=self._module_name(path), path=str(path), source=source
            )
            self._build_symbol_table(module)
            self.modules[module.name] = module

    # -- symbol tables -------------------------------------------------
    def _build_symbol_table(self, module: ModuleInfo) -> None:
        tree = module.source.tree
        assert tree is not None
        for statement in tree.body:
            if isinstance(statement, ast.Import):
                self._index_import(module, statement)
            elif isinstance(statement, ast.ImportFrom):
                self._index_import_from(module, statement)
            elif isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                module.symbols[statement.name] = (
                    f"{module.name}.{statement.name}"
                )
            elif isinstance(statement, ast.ClassDef):
                module.symbols[statement.name] = (
                    f"{module.name}.{statement.name}"
                )
            elif isinstance(statement, (ast.Assign, ast.AnnAssign)):
                self._index_global(module, statement)
        # Guarded imports (``if TYPE_CHECKING:``) still name symbols.
        for statement in tree.body:
            if isinstance(statement, ast.If):
                for inner in statement.body:
                    if isinstance(inner, ast.Import):
                        self._index_import(module, inner)
                    elif isinstance(inner, ast.ImportFrom):
                        self._index_import_from(module, inner)

    def _index_import(self, module: ModuleInfo, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            module.symbols[bound] = target
            if alias.name == "numpy":
                module.numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname is not None:
                    module.numpy_random_aliases.add(alias.asname)
                else:
                    module.numpy_aliases.add(bound)

    def _resolve_import_module(
        self, module: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: resolve against this module's package.
        parts = module.name.split(".")
        # ``level`` strips the module itself plus (level - 1) packages.
        base = parts[: len(parts) - node.level]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def _index_import_from(
        self, module: ModuleInfo, node: ast.ImportFrom
    ) -> None:
        origin = self._resolve_import_module(module, node)
        if origin is None:
            return
        if origin == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    module.numpy_random_aliases.add(alias.asname or alias.name)
        if origin == "numpy.random":
            for alias in node.names:
                if alias.name == "default_rng":
                    module.default_rng_aliases.add(alias.asname or alias.name)
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            module.symbols[bound] = f"{origin}.{alias.name}"

    def _index_global(self, module: ModuleInfo, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value: Optional[ast.expr] = statement.value
        else:
            assert isinstance(statement, ast.AnnAssign)
            targets = [statement.target]
            value = statement.value
        if isinstance(value, ast.Call):
            endpoint = call_endpoint(value.func)
            if endpoint in TAINTING_GLOBAL_CALLS:
                for target in targets:
                    if isinstance(target, ast.Name):
                        module.tainted_globals[target.id] = (
                            f"assigned from {endpoint}()"
                        )

    # -- class index ---------------------------------------------------
    def _index_classes(self) -> None:
        for module in self.modules.values():
            tree = module.source.tree
            assert tree is not None
            for statement in tree.body:
                if not isinstance(statement, ast.ClassDef):
                    continue
                qname = f"{module.name}.{statement.name}"
                info = ClassInfo(
                    qname=qname, module=module.name, node=statement
                )
                for base in statement.bases:
                    resolved = self._resolve_symbol_expr(module, base)
                    if resolved is not None and self._is_project_name(
                        resolved
                    ):
                        info.base_qname = resolved
                        break
                for item in statement.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info.methods[item.name] = f"{qname}.{item.name}"
                self.classes[qname] = info
        for info in self.classes.values():
            for method in info.methods:
                self._method_index.setdefault(method, []).append(info.qname)

    def _is_project_name(self, qname: str) -> bool:
        return qname == self.package or qname.startswith(self.package + ".")

    def _resolve_symbol_expr(
        self, module: ModuleInfo, node: ast.expr
    ) -> Optional[str]:
        """A name or dotted expression resolved through the symbol table."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = module.symbols.get(head)
        if target is None:
            # A name defined in this module but not yet indexed
            # (e.g. referenced before definition) stays unresolved.
            return None
        return f"{target}.{rest}" if rest else target

    # -- function summaries --------------------------------------------
    def _summarise_functions(self) -> None:
        # Pass 1: register every function's signature, so call
        # resolution in pass 2 can see targets in any module -- a
        # caller is routinely parsed before its callee's module.
        pending: List[Tuple[ModuleInfo, FunctionInfo]] = []
        for module in self.modules.values():
            tree = module.source.tree
            assert tree is not None
            for statement in tree.body:
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    pending.append(
                        (module, self._register_one(module, statement, None))
                    )
                elif isinstance(statement, ast.ClassDef):
                    for item in statement.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            pending.append(
                                (
                                    module,
                                    self._register_one(
                                        module, item, statement.name
                                    ),
                                )
                            )
        # Pass 2: fill the intraprocedural summaries.
        for module, info in pending:
            _SummaryVisitor(self, module, info).run()
        for info in self.functions.values():
            for site in info.calls:
                if site.callee is not None:
                    self.callers.setdefault(site.callee, []).append(site)

    def _register_one(
        self,
        module: ModuleInfo,
        node: AnyFunctionDef,
        class_name: Optional[str],
    ) -> FunctionInfo:
        prefix = (
            f"{module.name}.{class_name}." if class_name else f"{module.name}."
        )
        qname = prefix + node.name
        args = node.args
        params = [
            argument.arg
            for argument in args.posonlyargs + args.args + args.kwonlyargs
        ]
        none_defaults: Set[str] = set()
        positional = args.posonlyargs + args.args
        for argument, default in zip(
            positional[len(positional) - len(args.defaults):], args.defaults
        ):
            if isinstance(default, ast.Constant) and default.value is None:
                none_defaults.add(argument.arg)
        for argument, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if (
                isinstance(kw_default, ast.Constant)
                and kw_default.value is None
            ):
                none_defaults.add(argument.arg)
        info = FunctionInfo(
            qname=qname,
            module=module.name,
            node=node,
            class_name=class_name,
            params=params,
            none_default_params=frozenset(none_defaults),
        )
        self.functions[qname] = info
        return info

    # -- queries -------------------------------------------------------
    def resolve_call(
        self,
        module: ModuleInfo,
        info: FunctionInfo,
        node: ast.Call,
        local_types: Dict[str, str],
        attr_types: Dict[str, str],
    ) -> Tuple[Optional[str], int]:
        """``(callee qname, param offset)`` for one call expression."""
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self._resolve_symbol_expr(module, func)
            if resolved is None and func.id in local_types:
                resolved = None  # calling an instance: untracked __call__
            if resolved is None:
                return None, 0
            return self._as_callable(resolved), 0
        if not isinstance(func, ast.Attribute):
            return None, 0
        receiver = func.value
        method = func.attr
        # self.method() -> own class (walking single project bases).
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if info.class_name is not None:
                owner: Optional[str] = f"{module.name}.{info.class_name}"
                while owner is not None:
                    cls = self.classes.get(owner)
                    if cls is None:
                        break
                    target = cls.methods.get(method)
                    if target is not None:
                        return target, 1
                    owner = cls.base_qname
        # module.func() through an imported module alias.
        dotted = dotted_name(func)
        if dotted is not None:
            resolved = self._resolve_symbol_expr(module, func)
            if resolved is not None and self._is_project_name(resolved):
                callable_q = self._as_callable(resolved)
                if callable_q is not None and callable_q in self.functions:
                    offset = 1 if self._is_method_qname(callable_q) else 0
                    # ``instance.attr.method`` resolves via typed
                    # receivers below; a direct hit here is a
                    # module-level function or ``Class.method``.
                    return callable_q, 0 if offset == 0 else 0
        # instance.method() through a locally typed receiver.
        receiver_type: Optional[str] = None
        if isinstance(receiver, ast.Name):
            receiver_type = local_types.get(receiver.id)
        elif (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            receiver_type = attr_types.get(receiver.attr)
        if receiver_type is not None:
            owner = receiver_type
            while owner is not None:
                cls = self.classes.get(owner)
                if cls is None:
                    break
                target = cls.methods.get(method)
                if target is not None:
                    return target, 1
                owner = cls.base_qname
        # Fallback: the method name is defined by exactly one class.
        owners = self._method_index.get(method, [])
        if len(owners) == 1:
            return self.classes[owners[0]].methods[method], 1
        return None, 0

    def _is_method_qname(self, qname: str) -> bool:
        info = self.functions.get(qname)
        return info is not None and info.is_method

    def _as_callable(self, qname: str) -> Optional[str]:
        """Map a resolved symbol to a function: itself or ``__init__``."""
        if qname in self.functions:
            return qname
        cls = self.classes.get(qname)
        if cls is not None:
            init = cls.methods.get("__init__")
            if init is not None:
                return init
            if cls.base_qname is not None:
                return self._as_callable(cls.base_qname)
            return None
        return qname if self._is_project_name(qname) else None

    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Function qnames transitively callable from ``roots``."""
        seen: Set[str] = set()
        frontier = [root for root in roots if root in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.functions.get(current)
            if info is None:
                continue
            for site in info.calls:
                if site.callee is not None and site.callee not in seen:
                    frontier.append(site.callee)
        return seen

    def closure(self, roots: Sequence[str]) -> Set[str]:
        """Alias of :meth:`reachable` (worker-closure terminology)."""
        return self.reachable(roots)

    def entry_points(self) -> List[str]:
        """CLI entry functions: everything defined in a ``cli`` module."""
        roots: List[str] = []
        for qname, info in self.functions.items():
            if info.module.rsplit(".", 1)[-1] == "cli":
                roots.append(qname)
        return sorted(roots)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qname in sorted(self.functions):
            yield self.functions[qname]

    def module_of(self, info: FunctionInfo) -> ModuleInfo:
        return self.modules[info.module]


# ----------------------------------------------------------------------
# The intraprocedural summary pass
# ----------------------------------------------------------------------
class _SummaryVisitor:
    """One linear pass over a function body, filling a FunctionInfo."""

    def __init__(
        self, graph: ProjectGraph, module: ModuleInfo, info: FunctionInfo
    ) -> None:
        self.graph = graph
        self.module = module
        self.info = info
        #: local name -> project class qname (constructor/annotation).
        self.local_types: Dict[str, str] = {}
        #: self attribute name -> project class qname.
        self.attr_types: Dict[str, str] = {}
        #: local name -> attribute chain it aliases.
        self.chain_aliases: Dict[str, Tuple[str, ...]] = {}
        #: cache-aliased locals -> origin description.
        self.tainted_locals: Dict[str, str] = {}
        self.local_names: Set[str] = set(info.params)

    def run(self) -> None:
        self._seed_types_from_annotations()
        if self.info.class_name is not None:
            self._seed_attr_types_from_class()
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                self.local_names.add(node.id)
        for statement in self.info.node.body:
            self._visit(statement)

    # -- typing seeds --------------------------------------------------
    def _annotation_class(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):  # Optional[X] / "X" in brackets
            node = node.slice
        resolved = self.graph._resolve_symbol_expr(self.module, node)
        if resolved is not None and resolved in self.graph.classes:
            return resolved
        # A bare class name annotated in its own defining module.
        if isinstance(node, ast.Name):
            own = f"{self.module.name}.{node.id}"
            if own in self.graph.classes:
                return own
        return None

    def _seed_types_from_annotations(self) -> None:
        args = self.info.node.args
        for argument in args.posonlyargs + args.args + args.kwonlyargs:
            annotated = self._annotation_class(argument.annotation)
            if annotated is not None:
                self.local_types[argument.arg] = annotated

    def _seed_attr_types_from_class(self) -> None:
        cls = self.graph.classes.get(
            f"{self.module.name}.{self.info.class_name}"
        )
        if cls is None:
            return
        for item in cls.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                annotated = self._annotation_class(item.annotation)
                if annotated is not None:
                    self.attr_types[item.target.id] = annotated
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(item):
                if not isinstance(inner, ast.Assign):
                    continue
                for target in inner.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(inner.value, ast.Call)
                    ):
                        constructed = self.graph._resolve_symbol_expr(
                            self.module, inner.value.func
                        )
                        if (
                            constructed is not None
                            and constructed in self.graph.classes
                        ):
                            self.attr_types[target.attr] = constructed

    # -- traversal -----------------------------------------------------
    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes get their own pass / are opaque
        if isinstance(node, ast.Assign):
            self._visit_assign(node)
        elif isinstance(node, ast.AnnAssign):
            self._visit_annassign(node)
        elif isinstance(node, ast.AugAssign):
            self._visit_augassign(node)
        elif isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self._visit_name_load(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                # Already dispatched above; still walk the value side for
                # calls, reads, and nested mutations.
                pass
            self._visit(child)

    # -- assignments ---------------------------------------------------
    def _chain_of(self, node: ast.expr) -> Optional[Tuple[str, ...]]:
        dotted = dotted_name(node)
        if dotted is None:
            return None
        parts = tuple(dotted.split("."))
        head = parts[0]
        alias = self.chain_aliases.get(head)
        if alias is not None:
            return alias + parts[1:]
        return parts

    def _expr_taint(self, node: ast.expr) -> Optional[str]:
        """Origin description when ``node`` aliases a cache array."""
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in CACHE_ACCESSOR_METHODS:
                return f"{node.func.attr}()"
        if isinstance(node, ast.Attribute):
            if node.attr in CACHE_ATTRIBUTES:
                return f".{node.attr}"
        if isinstance(node, ast.Name):
            return self.tainted_locals.get(node.id)
        return None

    def _visit_assign(self, node: ast.Assign) -> None:
        self._flag_store_targets(node.targets)
        taint = self._expr_taint(node.value)
        chain = self._chain_of(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if taint is not None:
                    self.tainted_locals[target.id] = taint
                else:
                    self.tainted_locals.pop(target.id, None)
                if chain is not None and len(chain) > 1:
                    self.chain_aliases[target.id] = chain
                else:
                    self.chain_aliases.pop(target.id, None)
                if isinstance(node.value, ast.Call):
                    constructed = self.graph._resolve_symbol_expr(
                        self.module, node.value.func
                    )
                    if (
                        constructed is not None
                        and constructed in self.graph.classes
                    ):
                        self.local_types[target.id] = constructed
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and taint is not None
            ):
                self.info.tainted_attr_stores[target.attr] = target

    def _visit_annassign(self, node: ast.AnnAssign) -> None:
        if not isinstance(node.target, ast.Name):
            return
        annotated = self._annotation_class(node.annotation)
        if annotated is not None:
            self.local_types[node.target.id] = annotated
        if node.value is not None:
            taint = self._expr_taint(node.value)
            if taint is not None:
                self.tainted_locals[node.target.id] = taint

    def _mutation_base(self, node: ast.expr) -> Optional[Tuple[str, ...]]:
        if isinstance(node, ast.Name):
            return (node.id,)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return ("self", node.attr)
        return None

    def _flag_store_targets(self, targets: List[ast.expr]) -> None:
        for target in targets:
            if isinstance(target, ast.Subscript):
                base = self._mutation_base(target.value)
                if base is not None:
                    self.info.mutations.append(
                        Mutation(node=target, kind="subscript", base=base)
                    )

    def _visit_augassign(self, node: ast.AugAssign) -> None:
        target = node.target
        inner = target.value if isinstance(target, ast.Subscript) else target
        base = self._mutation_base(inner)
        if base is not None:
            self.info.mutations.append(
                Mutation(node=node, kind="augassign", base=base)
            )

    # -- calls ---------------------------------------------------------
    def _is_default_rng_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in self.module.default_rng_aliases
        if isinstance(func, ast.Attribute) and func.attr == "default_rng":
            value = func.value
            if isinstance(value, ast.Name):
                return value.id in self.module.numpy_random_aliases or (
                    False
                )
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
            ):
                return value.value.id in self.module.numpy_aliases
            if isinstance(value, ast.Name):
                return value.id in self.module.numpy_random_aliases
        return False

    def _classify_rng_seed(self, node: ast.Call) -> RngSite:
        if not node.args and not node.keywords:
            return RngSite(node=node, kind="unseeded")
        seed: Optional[ast.expr] = node.args[0] if node.args else None
        if seed is None:
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed = keyword.value
        if seed is None:
            return RngSite(node=node, kind="other")
        if isinstance(seed, ast.Constant):
            return RngSite(node=node, kind="constant")
        if isinstance(seed, (ast.List, ast.Tuple)) and all(
            isinstance(element, ast.Constant) for element in seed.elts
        ):
            return RngSite(node=node, kind="constant")
        if isinstance(seed, ast.Name) and seed.id in self.info.params:
            kind = (
                "param_none_default"
                if seed.id in self.info.none_default_params
                else "param"
            )
            return RngSite(node=node, kind=kind, param=seed.id)
        return RngSite(node=node, kind="other")

    def _keyword_qname(self, node: ast.Call, name: str) -> Optional[str]:
        for keyword in node.keywords:
            if keyword.arg == name and isinstance(keyword.value, ast.Name):
                resolved = self.graph._resolve_symbol_expr(
                    self.module, keyword.value
                )
                if resolved is not None:
                    return self.graph._as_callable(resolved)
        return None

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        endpoint = call_endpoint(func)

        if self._is_default_rng_call(node):
            self.info.rng_sites.append(self._classify_rng_seed(node))

        if endpoint == "get_instrumentation":
            self.info.get_instrumentation_calls.append(node)
        if endpoint == "use_instrumentation":
            self.info.installs_fresh_instrumentation = True
        if endpoint in TRACE_SINK_METHODS:
            self.info.trace_sink_calls.append(node)

        if isinstance(func, ast.Attribute):
            # Generator draws, with alias-expanded receiver chains.
            if func.attr in DRAW_METHODS:
                chain = self._chain_of(func.value)
                if chain is not None:
                    self.info.draw_sites.append(
                        DrawSite(node=node, method=func.attr, chain=chain)
                    )
            # In-place mutations through a method or setflags.
            base = self._mutation_base(func.value)
            if base is not None:
                if func.attr in INPLACE_METHODS:
                    self.info.mutations.append(
                        Mutation(node=node, kind="inplace", base=base)
                    )
                elif func.attr == "setflags" and _enables_write(node):
                    self.info.mutations.append(
                        Mutation(node=node, kind="setflags", base=base)
                    )
            # Pool dispatches.
            if (
                func.attr in POOL_DISPATCH_METHODS
                and _receiver_is_pool(func.value)
                and node.args
            ):
                worker = node.args[0]
                worker_qname: Optional[str] = None
                if isinstance(worker, ast.Name):
                    resolved = self.graph._resolve_symbol_expr(
                        self.module, worker
                    )
                    if resolved is not None:
                        worker_qname = self.graph._as_callable(resolved)
                self.info.pool_dispatches.append(
                    PoolDispatch(
                        node=node,
                        caller=self.info.qname,
                        worker=worker,
                        worker_qname=worker_qname,
                    )
                )
        if endpoint == "Pool":
            initializer = self._keyword_qname(node, "initializer")
            if initializer is not None:
                self.info.pool_dispatches.append(
                    PoolDispatch(
                        node=node,
                        caller=self.info.qname,
                        worker=node.func,
                        worker_qname=None,
                        initializer_qname=initializer,
                    )
                )

        # ``np.<func>(..., out=<base>)`` mutates its ``out`` argument.
        for keyword in node.keywords:
            if keyword.arg == "out":
                base = self._mutation_base(keyword.value)
                if base is not None:
                    self.info.mutations.append(
                        Mutation(node=node, kind="out=", base=base)
                    )

        callee, offset = self.graph.resolve_call(
            self.module, self.info, node, self.local_types, self.attr_types
        )
        site = CallSite(
            node=node,
            caller=self.info.qname,
            callee=callee,
            param_offset=offset,
        )
        self.info.calls.append(site)

        # Cache-aliased arguments handed to a callee.
        for position, argument in enumerate(node.args):
            origin = self._expr_taint(argument)
            if origin is not None:
                self.info.tainted_args.append(
                    TaintedArg(
                        site=site,
                        position=position,
                        keyword=None,
                        origin=origin,
                    )
                )
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            origin = self._expr_taint(keyword.value)
            if origin is not None:
                self.info.tainted_args.append(
                    TaintedArg(
                        site=site,
                        position=None,
                        keyword=keyword.arg,
                        origin=origin,
                    )
                )

    # -- global reads --------------------------------------------------
    def _visit_name_load(self, node: ast.Name) -> None:
        if node.id in self.local_names or node.id in ("self", "cls"):
            return
        if node.id in self.module.tainted_globals:
            self.info.global_reads.append(
                (node, self.module.name, node.id)
            )
            return
        resolved = self.module.symbols.get(node.id)
        if resolved is None or "." not in resolved:
            return
        origin_module, _, symbol = resolved.rpartition(".")
        origin = self.graph.modules.get(origin_module)
        if origin is not None and symbol in origin.tainted_globals:
            self.info.global_reads.append((node, origin_module, symbol))


def _receiver_is_pool(node: ast.expr) -> bool:
    dotted = dotted_name(node)
    return dotted is not None and "pool" in dotted.lower()


def _enables_write(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "write":
            value = keyword.value
            return not (
                isinstance(value, ast.Constant) and value.value is False
            )
    if node.args:
        first = node.args[0]
        return not (isinstance(first, ast.Constant) and first.value is False)
    return False
