"""Whole-program determinism analysis (``repro-sdn check --project``).

The per-file rules of :mod:`repro.lint.rules` are deliberately blind to
anything outside one module; the determinism contracts they guard --
seeds threading down from the CLI, frozen cache buffers never written,
fork-pool workers never touching parent state -- are *project-wide*
properties.  This subpackage builds the project-level view and checks
them across module boundaries:

* :mod:`repro.lint.project.graph` -- symbol tables, the import graph,
  and an intraprocedural-summary call graph over the package;
* :mod:`repro.lint.project.seeds` -- SEED101/102/103: RNG
  seed-provenance dataflow (entropy fallbacks reachable from CLI entry
  points, hidden generator coupling, constant worker seeds);
* :mod:`repro.lint.project.escape` -- MUT101/102: frozen-buffer escape
  analysis across call edges and attribute stashes;
* :mod:`repro.lint.project.capture` -- PAR101: the cross-module,
  transitive generalisation of PAR001's worker-capture check;
* :mod:`repro.lint.project.baseline` -- the committed waiver file for
  justified findings;
* :mod:`repro.lint.project.sarif` -- SARIF 2.1.0 rendering for code
  scanning UIs.

The static pass over-approximates by design; its runtime complement is
the determinism sanitizer (:mod:`repro.obs.sanitize`, docs/OBSERVABILITY.md).
"""

from repro.lint.project.baseline import Baseline
from repro.lint.project.graph import ProjectGraph
from repro.lint.project.runner import (
    PROJECT_RULES,
    ProjectReport,
    run_project_checks,
)
from repro.lint.project.sarif import to_sarif

__all__ = [
    "Baseline",
    "PROJECT_RULES",
    "ProjectGraph",
    "ProjectReport",
    "run_project_checks",
    "to_sarif",
]
