"""PAR101 -- transitive cross-module pool-worker capture.

The per-file PAR001 rule inspects a pool worker's own body in the
module where the dispatch happens.  Real captures hide one hop away: a
worker imported from another module, or a clean-looking worker that
calls a helper which calls ``get_instrumentation()`` three frames
down.  PAR101 walks the whole call-graph closure of every dispatched
worker (and ``Pool(initializer=...)``) and flags, anywhere in that
closure:

* calls to ``get_instrumentation()`` -- under fork that resolves to the
  *parent's* backend, so recorded events vanish with the worker --
  unless the closure installs a fresh backend via
  ``use_instrumentation(...)`` first (the sanctioned worker pattern in
  :mod:`repro.experiments.parallel`);
* reads of module globals bound to ``Instrumentation``/``Generator``
  state, including globals imported from *other* modules, which PAR001
  cannot see.

Findings inside the dispatched worker itself, when it lives in the same
module as the dispatch, are left to PAR001 -- this rule reports only
what the per-file pass cannot.  The :mod:`repro.obs` package is exempt
from the global-read check: it owns the ambient-backend global by
design.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from repro.lint.project.findings import ProjectFinding
from repro.lint.project.graph import FunctionInfo, ProjectGraph

PAR101 = "PAR101"


def _finding(
    graph: ProjectGraph, info: FunctionInfo, node: ast.AST, message: str
) -> ProjectFinding:
    return ProjectFinding(
        path=graph.module_of(info).path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=PAR101,
        message=message,
        symbol=info.qname,
    )


def _is_obs_module(graph: ProjectGraph, module: str) -> bool:
    prefix = f"{graph.package}.obs"
    return module == prefix or module.startswith(prefix + ".")


def check_worker_closures(graph: ProjectGraph) -> List[ProjectFinding]:
    findings: List[ProjectFinding] = []
    seen: Set[Tuple[str, int, int]] = set()
    for info in graph.iter_functions():
        for dispatch in info.pool_dispatches:
            roots = [
                qname
                for qname in (
                    dispatch.worker_qname,
                    dispatch.initializer_qname,
                )
                if qname is not None
            ]
            if not roots:
                continue
            closure = graph.closure(roots)
            installs_fresh = any(
                graph.functions[qname].installs_fresh_instrumentation
                for qname in closure
                if qname in graph.functions
            )
            for member_qname in sorted(closure):
                member = graph.functions.get(member_qname)
                if member is None:
                    continue
                direct_worker = (
                    member_qname == dispatch.worker_qname
                    and member.module == info.module
                )
                if direct_worker:
                    continue  # PAR001 territory
                for finding in _check_member(
                    graph, member, dispatch.caller, installs_fresh
                ):
                    key = (finding.path, finding.line, finding.col)
                    if key not in seen:
                        seen.add(key)
                        findings.append(finding)
    return findings


def _check_member(
    graph: ProjectGraph,
    member: FunctionInfo,
    dispatch_caller: str,
    installs_fresh: bool,
) -> List[ProjectFinding]:
    found: List[ProjectFinding] = []
    if not installs_fresh:
        for call in member.get_instrumentation_calls:
            found.append(
                _finding(
                    graph,
                    member,
                    call,
                    f"reached from the pool dispatch in {dispatch_caller}: "
                    "get_instrumentation() resolves to the parent's "
                    "backend under fork -- install a fresh backend with "
                    "use_instrumentation() in the worker and return "
                    "counter deltas",
                )
            )
    if not _is_obs_module(graph, member.module):
        for node, origin_module, name in member.global_reads:
            found.append(
                _finding(
                    graph,
                    member,
                    node,
                    f"reached from the pool dispatch in {dispatch_caller}: "
                    f"reads parent-owned global '{name}' from "
                    f"{origin_module}; pass seeds/state through the task "
                    "items instead",
                )
            )
    return found
