"""The finding record emitted by project-level rules.

Identical to the per-file :class:`repro.lint.findings.Finding` plus a
``symbol`` -- the qualified name of the function, method, or class the
violation lives in.  The symbol is what makes baseline entries stable:
line numbers drift with every edit, but ``repro.countermeasures.delay.
DelayDefense.forward_delay`` keeps naming the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.lint.findings import Finding


@dataclass(frozen=True, order=True)
class ProjectFinding(Finding):
    """One whole-program rule violation, anchored to a symbol."""

    symbol: str = ""

    def to_json(self) -> Dict[str, Any]:
        payload = super().to_json()
        payload["symbol"] = self.symbol
        return payload

    def render(self) -> str:
        location = super().render()
        return f"{location} [{self.symbol}]" if self.symbol else location
