"""SEED101/102/103 -- RNG seed provenance across module boundaries.

The determinism contract (DETERMINISM.md) is that every
``numpy.random.Generator`` in a run derives from the one seed the CLI
was given.  Per-file rules can check a module's own ``default_rng``
calls, but the contract is a *flow* property: the seed threads from
``repro.cli`` down through experiment configs, network constructors,
and countermeasure attach points.  Three rules check that flow on the
project graph:

* **SEED101** -- an entropy fallback is reachable from a CLI entry
  point: ``default_rng(p)`` where ``p`` defaults to ``None`` and some
  transitive call chain rooted in ``repro.cli`` leaves it unbound (or
  passes a literal ``None``), so the run silently draws OS entropy.
  Locally guarded parameters (``if p is None: p = DEFAULT`` or an
  ``x if p is None else y`` seed expression) are provenance-correct and
  not flagged.
* **SEED102** -- hidden generator coupling: a component draws from a
  generator it reaches through another object (``self._network.rng.
  normal(...)``).  The draw interleaves two components' streams, so
  adding a draw in one silently shifts the other's numbers.  Components
  must own a generator (spawned or seeded at attach/init) instead.
* **SEED103** -- a constant-seeded ``default_rng`` inside a fork-pool
  worker closure: every worker starts the *same* stream, so parallel
  trials are secretly correlated.  Workers must consume pre-drawn seeds
  from their task items.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.project.findings import ProjectFinding
from repro.lint.project.graph import (
    GENERATOR_ATTRS,
    CallSite,
    FunctionInfo,
    ProjectGraph,
    RngSite,
)

SEED101 = "SEED101"
SEED102 = "SEED102"
SEED103 = "SEED103"


def _finding(
    graph: ProjectGraph,
    info: FunctionInfo,
    node: ast.AST,
    rule: str,
    message: str,
) -> ProjectFinding:
    return ProjectFinding(
        path=graph.module_of(info).path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
        symbol=info.qname,
    )


# ----------------------------------------------------------------------
# SEED101: entropy fallback reachable from the CLI
# ----------------------------------------------------------------------
def _locally_guarded(info: FunctionInfo, param: str) -> bool:
    """True when ``param`` is re-bound against ``None`` before use."""
    for node in ast.walk(info.node):
        if isinstance(node, ast.If) and _compares_none(node.test, param):
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Name)
                    and inner.id == param
                    and isinstance(inner.ctx, ast.Store)
                ):
                    return True
        if isinstance(node, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == param
                for target in node.targets
            ) and isinstance(node.value, (ast.IfExp, ast.BoolOp)):
                return True
    return False


def _compares_none(test: ast.expr, param: str) -> bool:
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    left, right = test.left, test.comparators[0]
    names = [n for n in (left, right) if isinstance(n, ast.Name)]
    consts = [n for n in (left, right) if isinstance(n, ast.Constant)]
    return (
        isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and any(n.id == param for n in names)
        and any(c.value is None for c in consts)
    )


def _argument_for(
    site: CallSite, callee: FunctionInfo, param: str
) -> Tuple[str, Optional[ast.expr]]:
    """How one call site binds ``param``: ``(kind, expression)``.

    ``kind`` is ``"expr"`` (bound to the returned expression),
    ``"unbound"`` (default applies), or ``"unknown"`` (``*args`` /
    ``**kwargs`` forwarding -- assumed bound).
    """
    call = site.node
    try:
        index = callee.params.index(param)
    except ValueError:  # pragma: no cover - facts built from params
        return "unknown", None
    written = index - site.param_offset
    positional = [a for a in call.args if not isinstance(a, ast.Starred)]
    if 0 <= written < len(positional):
        return "expr", positional[written]
    for keyword in call.keywords:
        if keyword.arg == param:
            return "expr", keyword.value
    if len(positional) != len(call.args):
        return "unknown", None
    if any(keyword.arg is None for keyword in call.keywords):
        return "unknown", None
    return "unbound", None


class _NoneFlow:
    """Answers: can this parameter be ``None`` on an entry-reachable path?"""

    def __init__(self, graph: ProjectGraph, reachable: Set[str]) -> None:
        self.graph = graph
        self.reachable = reachable
        self._memo: Dict[Tuple[str, str], Optional[str]] = {}

    def evidence(self, qname: str, param: str) -> Optional[str]:
        """A ``caller (path:line)`` description, or ``None`` if clean."""
        key = (qname, param)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = None  # cycle guard: assume clean while open
        callee = self.graph.functions.get(qname)
        if callee is None:
            return None
        result: Optional[str] = None
        for site in sorted(
            self.graph.callers.get(qname, ()),
            key=lambda s: (s.caller, s.node.lineno, s.node.col_offset),
        ):
            if site.caller not in self.reachable:
                continue
            caller = self.graph.functions.get(site.caller)
            if caller is None:
                continue
            kind, expression = _argument_for(site, callee, param)
            where = (
                f"{site.caller} "
                f"({self.graph.module_of(caller).path}:{site.node.lineno})"
            )
            if kind == "unbound":
                if param in callee.none_default_params:
                    result = where
                    break
                continue
            if kind == "unknown" or expression is None:
                continue
            if (
                isinstance(expression, ast.Constant)
                and expression.value is None
            ):
                result = where
                break
            if (
                isinstance(expression, ast.Name)
                and expression.id in caller.params
                and expression.id in caller.none_default_params
                and not _locally_guarded(caller, expression.id)
            ):
                upstream = self.evidence(site.caller, expression.id)
                if upstream is not None:
                    result = upstream
                    break
        self._memo[key] = result
        return result


def check_seed_provenance(graph: ProjectGraph) -> List[ProjectFinding]:
    """SEED101 over every ``default_rng(param)`` site in the project."""
    findings: List[ProjectFinding] = []
    reachable = graph.reachable(graph.entry_points())
    flow = _NoneFlow(graph, reachable)
    for info in graph.iter_functions():
        if info.qname not in reachable:
            continue
        for site in info.rng_sites:
            if site.kind not in ("param", "param_none_default"):
                continue
            assert site.param is not None
            if _locally_guarded(info, site.param):
                continue
            evidence = flow.evidence(info.qname, site.param)
            if evidence is None and site.kind == "param_none_default":
                # A None default with *no* project caller binding it is
                # only suspicious if someone actually calls it; entry
                # functions themselves are invoked by argparse, which
                # the graph cannot see -- stay quiet there.
                continue
            if evidence is not None:
                findings.append(
                    _finding(
                        graph,
                        info,
                        site.node,
                        SEED101,
                        f"default_rng({site.param}) can receive None from "
                        f"{evidence}, falling back to OS entropy; thread "
                        "the run seed down or guard the parameter",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# SEED102: hidden generator coupling
# ----------------------------------------------------------------------
def check_generator_coupling(graph: ProjectGraph) -> List[ProjectFinding]:
    findings: List[ProjectFinding] = []
    for info in graph.iter_functions():
        for draw in info.draw_sites:
            chain = draw.chain
            if (
                len(chain) >= 3
                and chain[0] == "self"
                and chain[-1] in GENERATOR_ATTRS
            ):
                owner = ".".join(chain[:-1])
                findings.append(
                    _finding(
                        graph,
                        info,
                        draw.node,
                        SEED102,
                        f"draws '{draw.method}' from {owner}'s generator "
                        f"('{'.'.join(chain)}'); the draw interleaves two "
                        "components' streams -- own a generator spawned "
                        "from it at attach/init instead",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# SEED103: constant worker seeds
# ----------------------------------------------------------------------
def check_worker_seeds(graph: ProjectGraph) -> List[ProjectFinding]:
    findings: List[ProjectFinding] = []
    seen: Set[Tuple[str, int, int]] = set()
    for info in graph.iter_functions():
        for dispatch in info.pool_dispatches:
            roots = [
                qname
                for qname in (
                    dispatch.worker_qname,
                    dispatch.initializer_qname,
                )
                if qname is not None
            ]
            if not roots:
                continue
            for member_qname in sorted(graph.closure(roots)):
                member = graph.functions.get(member_qname)
                if member is None:
                    continue
                for site in member.rng_sites:
                    if site.kind != "constant":
                        continue
                    key = (
                        member_qname,
                        site.node.lineno,
                        site.node.col_offset,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        _finding(
                            graph,
                            member,
                            site.node,
                            SEED103,
                            "constant-seeded default_rng in the worker "
                            f"closure of {dispatch.caller}: every pool "
                            "worker repeats the same stream -- consume a "
                            "pre-drawn seed from the task item",
                        )
                    )
    return findings
