"""The committed waiver file for justified project findings.

Whole-program rules over-approximate, and a few real patterns are
intentional (a throwaway constant-seeded generator in a screening
worker that never draws, for example).  Rather than sprinkling noqa
comments across call chains -- a project finding has no single line
that "owns" it -- justified findings live in one committed JSON file,
reviewed like code:

.. code-block:: json

    {
      "version": 1,
      "entries": [
        {
          "rule": "SEED103",
          "path": "src/repro/experiments/parallel.py",
          "symbol": "repro.experiments.parallel.screening_verdicts",
          "justification": "why this one is fine"
        }
      ]
    }

Matching is by ``(rule, path suffix, symbol)`` -- never by line -- so
entries survive unrelated edits.  Every entry must carry a non-empty
justification, and entries that stop matching anything are reported as
*stale* so the file cannot rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple

from repro.lint.project.findings import ProjectFinding

#: The on-disk location the CLI uses unless told otherwise.
DEFAULT_BASELINE_PATH = "lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One waived finding: rule + path suffix + symbol + why."""

    rule: str
    path: str
    symbol: str
    justification: str

    def matches(self, finding: ProjectFinding) -> bool:
        return (
            finding.rule == self.rule
            and finding.symbol == self.symbol
            and _path_matches(finding.path, self.path)
        )


def _path_matches(actual: str, suffix: str) -> bool:
    actual_parts = Path(actual).parts
    suffix_parts = Path(suffix).parts
    if len(suffix_parts) > len(actual_parts):
        return False
    return actual_parts[len(actual_parts) - len(suffix_parts):] == suffix_parts


class Baseline:
    """A set of waiver entries with strict-format loading."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("version") != 1:
            raise ValueError(
                f"{path}: baseline must be a JSON object with version 1"
            )
        entries: List[BaselineEntry] = []
        for position, item in enumerate(raw.get("entries", [])):
            if not isinstance(item, dict):
                raise ValueError(f"{path}: entry {position} is not an object")
            missing = {"rule", "path", "symbol", "justification"} - set(item)
            if missing:
                raise ValueError(
                    f"{path}: entry {position} missing "
                    f"{', '.join(sorted(missing))}"
                )
            if not str(item["justification"]).strip():
                raise ValueError(
                    f"{path}: entry {position} ({item['rule']} "
                    f"{item['symbol']}) has an empty justification -- "
                    "every waiver must say why"
                )
            entries.append(
                BaselineEntry(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    symbol=str(item["symbol"]),
                    justification=str(item["justification"]),
                )
            )
        return cls(entries)

    def partition(
        self, findings: Iterable[ProjectFinding]
    ) -> Tuple[List[ProjectFinding], List[ProjectFinding], List[BaselineEntry]]:
        """``(new, waived, stale)``: findings not covered by any entry,
        findings covered, and entries that covered nothing."""
        new: List[ProjectFinding] = []
        waived: List[ProjectFinding] = []
        used = [False] * len(self.entries)
        for finding in findings:
            matched = False
            for position, entry in enumerate(self.entries):
                if entry.matches(finding):
                    used[position] = True
                    matched = True
            (waived if matched else new).append(finding)
        stale = [
            entry
            for entry, was_used in zip(self.entries, used)
            if not was_used
        ]
        return new, waived, stale

    def to_json(self) -> dict:
        return {
            "version": 1,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "symbol": entry.symbol,
                    "justification": entry.justification,
                }
                for entry in self.entries
            ],
        }

    @staticmethod
    def skeleton(findings: Iterable[ProjectFinding]) -> dict:
        """A baseline document covering ``findings``, with placeholder
        justifications the loader will refuse until filled in."""
        entries = sorted(
            {(f.rule, f.path, f.symbol) for f in findings}
        )
        return {
            "version": 1,
            "entries": [
                {
                    "rule": rule,
                    "path": path,
                    "symbol": symbol,
                    "justification": "",
                }
                for rule, path, symbol in entries
            ],
        }
