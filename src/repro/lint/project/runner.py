"""Orchestration for the whole-program pass (``check --project``).

One :func:`run_project_checks` call builds the project graph once and
runs every project rule over it, then partitions the findings against
the committed baseline.  The report separates *new* findings (fail the
gate), *waived* findings (covered by a justified baseline entry), and
*stale* baseline entries (waivers that no longer match anything --
also a gate failure, so the baseline cannot rot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.lint.project.baseline import Baseline, BaselineEntry
from repro.lint.project.capture import PAR101, check_worker_closures
from repro.lint.project.escape import (
    MUT101,
    MUT102,
    check_attribute_stashes,
    check_escaping_arguments,
)
from repro.lint.project.findings import ProjectFinding
from repro.lint.project.graph import ProjectGraph
from repro.lint.project.seeds import (
    SEED101,
    SEED102,
    SEED103,
    check_generator_coupling,
    check_seed_provenance,
    check_worker_seeds,
)

#: ``(rule id, summary)`` for every project rule, in report order.
PROJECT_RULES: List[Tuple[str, str]] = [
    (
        SEED101,
        "an entropy fallback (default_rng receiving None) is reachable "
        "from a CLI entry point",
    ),
    (
        SEED102,
        "a component draws from another component's generator through a "
        "stored object reference",
    ),
    (
        SEED103,
        "a constant-seeded default_rng inside a fork-pool worker closure "
        "repeats the same stream in every worker",
    ),
    (
        MUT101,
        "a frozen cache array is passed to a callee that mutates that "
        "parameter",
    ),
    (
        MUT102,
        "a frozen cache array is stashed on self and later written "
        "through the attribute",
    ),
    (
        PAR101,
        "a pool worker's transitive call closure captures parent "
        "RNG/instrumentation state",
    ),
]

_CHECKS: List[Callable[[ProjectGraph], List[ProjectFinding]]] = [
    check_seed_provenance,
    check_generator_coupling,
    check_worker_seeds,
    check_escaping_arguments,
    check_attribute_stashes,
    check_worker_closures,
]


@dataclass
class ProjectReport:
    """The outcome of one whole-program pass."""

    graph: ProjectGraph
    #: Findings not covered by the baseline: these fail the gate.
    new: List[ProjectFinding] = field(default_factory=list)
    #: Findings covered by a justified baseline entry.
    waived: List[ProjectFinding] = field(default_factory=list)
    #: Baseline entries that matched nothing: also fail the gate.
    stale: List[BaselineEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale

    @property
    def all_findings(self) -> List[ProjectFinding]:
        return sorted(self.new + self.waived)


def run_project_checks(
    root: str,
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
) -> ProjectReport:
    """Build the graph for the package at ``root`` and run every rule.

    ``select`` optionally restricts to a subset of project rule IDs
    (unknown IDs raise ``ValueError``, mirroring the per-file runner).
    """
    known = {rule_id for rule_id, _ in PROJECT_RULES}
    wanted = None
    if select is not None:
        wanted = {rule_id.strip().upper() for rule_id in select}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown project rule ID(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
    graph = ProjectGraph.build(root)
    findings: List[ProjectFinding] = []
    for check in _CHECKS:
        findings.extend(check(graph))
    if wanted is not None:
        findings = [f for f in findings if f.rule in wanted]
    findings.sort()
    report = ProjectReport(graph=graph)
    if baseline is None:
        report.new = findings
    else:
        report.new, report.waived, report.stale = baseline.partition(findings)
    return report
