"""MUT101/102 -- frozen-buffer escape analysis across call edges.

The compact model's cache accessors (``evolution``,
``prefix_distribution``, ``coverage_vector``, ``probe_matrix``, the
CSR ``data``/``indices``/``indptr`` buffers behind
``transition_matrix``) return **frozen, shared** arrays -- writing one
corrupts every later reader of the cache.  The per-file MUT001 rule
catches a mutation in the same module as the accessor call; these two
rules track the array once it *escapes*:

* **MUT101** -- a cache-aliased array is passed as an argument to a
  callee that (transitively) mutates that parameter.  The mutated-
  parameter set is a fixpoint over the call graph: a parameter is
  mutating if the function writes it in place, or forwards it into a
  mutating position of another project function.
* **MUT102** -- a cache-aliased array is stashed on ``self`` and some
  method of the same class later writes through that attribute.  The
  stash looks innocent at the store site and the write looks like a
  private buffer at the mutation site; only the pair is a bug.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.project.findings import ProjectFinding
from repro.lint.project.graph import (
    FunctionInfo,
    ProjectGraph,
    TaintedArg,
)

MUT101 = "MUT101"
MUT102 = "MUT102"


def _finding(
    graph: ProjectGraph,
    info: FunctionInfo,
    node: ast.AST,
    rule: str,
    message: str,
) -> ProjectFinding:
    return ProjectFinding(
        path=graph.module_of(info).path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
        symbol=info.qname,
    )


def mutated_parameters(graph: ProjectGraph) -> Dict[str, Set[str]]:
    """Fixpoint: for each function, the parameters it mutates in place
    (directly, or by forwarding into another mutating parameter)."""
    mutated: Dict[str, Set[str]] = {}
    for info in graph.functions.values():
        direct: Set[str] = set()
        for mutation in info.mutations:
            if len(mutation.base) == 1 and mutation.base[0] in info.params:
                direct.add(mutation.base[0])
        mutated[info.qname] = direct

    changed = True
    while changed:
        changed = False
        for info in graph.functions.values():
            current = mutated[info.qname]
            for site in info.calls:
                if site.callee is None:
                    continue
                callee = graph.functions.get(site.callee)
                if callee is None:
                    continue
                callee_mutated = mutated[site.callee]
                if not callee_mutated:
                    continue
                positional = [
                    a for a in site.node.args
                    if not isinstance(a, ast.Starred)
                ]
                for written, argument in enumerate(positional):
                    if not isinstance(argument, ast.Name):
                        continue
                    if argument.id not in info.params:
                        continue
                    index = written + site.param_offset
                    if index >= len(callee.params):
                        continue
                    if (
                        callee.params[index] in callee_mutated
                        and argument.id not in current
                    ):
                        current.add(argument.id)
                        changed = True
                for keyword in site.node.keywords:
                    if (
                        keyword.arg in callee_mutated
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in info.params
                        and keyword.value.id not in current
                    ):
                        current.add(keyword.value.id)
                        changed = True
    return mutated


def _bound_parameter(
    tainted: TaintedArg, callee: FunctionInfo
) -> Optional[str]:
    if tainted.keyword is not None:
        return tainted.keyword if tainted.keyword in callee.params else None
    assert tainted.position is not None
    index = tainted.position + tainted.site.param_offset
    if index < len(callee.params):
        return callee.params[index]
    return None


def check_escaping_arguments(graph: ProjectGraph) -> List[ProjectFinding]:
    """MUT101: cache-aliased arrays handed to mutating callees."""
    findings: List[ProjectFinding] = []
    mutated = mutated_parameters(graph)
    for info in graph.iter_functions():
        for tainted in info.tainted_args:
            callee_qname = tainted.site.callee
            if callee_qname is None:
                continue
            callee = graph.functions.get(callee_qname)
            if callee is None:
                continue
            parameter = _bound_parameter(tainted, callee)
            if parameter is None or parameter not in mutated[callee_qname]:
                continue
            findings.append(
                _finding(
                    graph,
                    info,
                    tainted.site.node,
                    MUT101,
                    f"frozen cache array ({tainted.origin}) passed to "
                    f"{callee_qname}, which mutates parameter "
                    f"'{parameter}'; pass a .copy() or make the callee "
                    "allocate its output",
                )
            )
    return findings


def check_attribute_stashes(graph: ProjectGraph) -> List[ProjectFinding]:
    """MUT102: cache arrays stashed on ``self`` then written through."""
    findings: List[ProjectFinding] = []
    stashes: Dict[Tuple[str, str], str] = {}
    for info in graph.functions.values():
        if info.class_name is None:
            continue
        owner = f"{info.module}.{info.class_name}"
        for attribute in info.tainted_attr_stores:
            stashes.setdefault((owner, attribute), info.qname)
    if not stashes:
        return findings
    for info in graph.iter_functions():
        if info.class_name is None:
            continue
        owner = f"{info.module}.{info.class_name}"
        for mutation in info.mutations:
            if len(mutation.base) != 2 or mutation.base[0] != "self":
                continue
            stashed_in = stashes.get((owner, mutation.base[1]))
            if stashed_in is None:
                continue
            findings.append(
                _finding(
                    graph,
                    info,
                    mutation.node,
                    MUT102,
                    f"writes through self.{mutation.base[1]}, which "
                    f"{stashed_in} bound to a frozen cache array; copy "
                    "at the stash site before mutating",
                )
            )
    return findings
