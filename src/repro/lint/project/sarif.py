"""SARIF 2.1.0 rendering of project findings.

SARIF is the interchange format code-scanning UIs ingest (GitHub code
scanning among them); emitting it lets ``repro-sdn check --project``
annotate pull requests without any adapter.  The document targets the
2.1.0 schema: one run, one tool driver listing the project rules, one
``result`` per finding with a physical location.  Paths are emitted
relative to the repository root when possible, as code-scanning
matching is path-suffix based.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.project.findings import ProjectFinding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-sdn-lint"
TOOL_URI = "https://example.invalid/repro-sdn/docs/STATIC_ANALYSIS.md"


def _relative_uri(path: str, root: Optional[str]) -> str:
    candidate = Path(path)
    if root is not None:
        try:
            candidate = candidate.resolve().relative_to(Path(root).resolve())
        except ValueError:
            pass
    return candidate.as_posix()


def to_sarif(
    findings: Sequence[ProjectFinding],
    rules: Iterable[Tuple[str, str]],
    repo_root: Optional[str] = None,
) -> Dict:
    """The findings as a SARIF 2.1.0 document (a plain dict).

    ``rules`` is ``(rule id, summary)`` pairs for the tool's rule
    catalog; rules that produced no findings are still listed, so the
    consumer can distinguish "checked and clean" from "not checked".
    """
    rule_list = sorted(dict(rules).items())
    rule_index = {rule_id: i for i, (rule_id, _) in enumerate(rule_list)}
    results: List[Dict] = []
    for finding in findings:
        result: Dict = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(finding.path, repo_root),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    },
                    "logicalLocations": [
                        {
                            "fullyQualifiedName": finding.symbol,
                            "kind": "function",
                        }
                    ],
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {"text": summary},
                            }
                            for rule_id, summary in rule_list
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
