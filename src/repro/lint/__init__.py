"""Domain-aware static analysis for the reproduction (``repro-sdn check``).

The probability kernels (Eqns. 1--7 of the paper and the Section V
probe-scoring engine) rest on invariants that unit tests cannot fully
cover: cached distribution arrays must never be mutated by callers,
every transition matrix must stay (sub)stochastic, and all randomness
must thread from explicit seeds so ``n_jobs`` runs stay bitwise
identical.  This package encodes those invariants as AST-level lint
rules with stable IDs:

========  ==========================================================
RNG001    unseeded ``default_rng()`` / legacy ``np.random.*`` globals
MUT001    in-place mutation of cached model/inference arrays
STO001    transition-matrix construction without ``validate_stochastic``
DET001    iteration over unordered sets feeding downstream computation
PY001     mutable default arguments and float ``==`` comparisons
========  ==========================================================

Findings carry precise ``path:line:col`` locations and can be
suppressed per line with ``# repro: noqa[RULE]``.  See
``docs/STATIC_ANALYSIS.md`` for the rationale behind each rule.
"""

from repro.lint.findings import Finding
from repro.lint.base import LintRule, ModuleSource
from repro.lint.rules import ALL_RULES, rule_by_id
from repro.lint.runner import check_file, check_source, iter_python_files, run_checks

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintRule",
    "ModuleSource",
    "check_file",
    "check_source",
    "iter_python_files",
    "rule_by_id",
    "run_checks",
]
