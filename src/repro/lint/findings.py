"""The finding record emitted by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a precise source location.

    The field order doubles as the sort order, so a sorted finding list
    reads top-to-bottom through each file.  ``line`` and ``col`` are
    1-based and 0-based respectively, matching compiler convention.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` (the CLI text format)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable form (the CLI ``--format json`` output)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
