"""File discovery, rule orchestration, noqa filtering, and fan-out.

``run_checks`` is the per-file pass: every rule over every file.  The
file pass is embarrassingly parallel -- each file is parsed and checked
independently -- so with ``jobs`` unset it fans out over a fork pool
sized to the machine (capped; see :data:`MAX_AUTO_JOBS`) and falls back
to the serial loop on any pool failure.  Findings are sorted after the
merge, so the output is **byte-identical for every job count** -- the
same determinism contract the experiment fan-out keeps
(EXPERIMENTS.md), pinned by ``tests/lint/test_runner.py`` and the
``benchmarks/test_bench_lint.py`` guard.
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.lint.base import LintRule, ModuleSource
from repro.lint.findings import Finding
from repro.lint.noqa import is_suppressed
from repro.lint.rules import ALL_RULES

#: Directory names never descended into.
SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})

#: Pseudo-rule for unparsable files (cannot be noqa'd away).
SYNTAX_RULE = "SYN001"

#: Auto-sized pools never exceed this many workers: lint is I/O-light
#: and per-file work is small, so wide pools just pay fork cost.
MAX_AUTO_JOBS = 8

#: Fewer files than this and the fork pool cannot pay for itself.
MIN_FILES_FOR_POOL = 16


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """All ``.py`` files under ``paths``, depth-first, sorted.

    Plain files are yielded as given; directories are walked
    recursively.  Missing paths raise ``FileNotFoundError`` so typos
    fail loudly instead of silently checking nothing.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in SKIPPED_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    yield Path(root) / name


def _select_rules(select: Optional[Iterable[str]]) -> List[LintRule]:
    if select is None:
        return list(ALL_RULES)
    wanted = {rule_id.strip().upper() for rule_id in select if rule_id.strip()}
    unknown = wanted - {rule.rule_id for rule in ALL_RULES}
    if unknown:
        known = ", ".join(rule.rule_id for rule in ALL_RULES)
        raise ValueError(
            f"unknown rule ID(s): {', '.join(sorted(unknown))} "
            f"(known: {known})"
        )
    return [rule for rule in ALL_RULES if rule.rule_id in wanted]


def check_source(
    path: str,
    source: str,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the (selected) rules over one in-memory module."""
    module = ModuleSource.from_source(path, source)
    if module.tree is None:
        return [
            Finding(
                path=path,
                line=1,
                col=0,
                rule=SYNTAX_RULE,
                message="file does not parse; fix the syntax error first",
            )
        ]
    findings: List[Finding] = []
    for rule in _select_rules(select):
        for finding in rule.check(module):
            if is_suppressed(module.suppressions, finding.line, finding.rule):
                continue
            findings.append(finding)
    return sorted(findings)


def check_file(
    path: Path, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run the (selected) rules over one file on disk."""
    source = path.read_text(encoding="utf-8")
    return check_source(str(path), source, select=select)


# ----------------------------------------------------------------------
# Parallel file pass
# ----------------------------------------------------------------------
#: Rule selection for pool workers, installed by the initializer (the
#: sanctioned fork-inherited read-only context; findings flow back as
#: return values, never through shared state).
_WORKER_SELECT: Optional[List[str]] = None


def _init_lint_worker(select: Optional[List[str]]) -> None:
    global _WORKER_SELECT
    _WORKER_SELECT = select


def _lint_file_work(path: str) -> List[Finding]:
    """Check one file in a pool worker (pure function of the path)."""
    return check_file(Path(path), select=_WORKER_SELECT)


def resolve_jobs(jobs: Optional[int], n_files: int) -> int:
    """The worker count to actually use for ``n_files`` files.

    ``None`` auto-sizes to the machine (capped at
    :data:`MAX_AUTO_JOBS`), and tiny file sets always run serially --
    the fork cost dwarfs the work.
    """
    if jobs is None:
        jobs = min(os.cpu_count() or 1, MAX_AUTO_JOBS)
    jobs = max(1, int(jobs))
    if n_files < MIN_FILES_FOR_POOL:
        return 1
    return min(jobs, n_files)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start method, or ``None`` where unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None


def run_checks(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> List[Finding]:
    """Check every Python file under ``paths``; findings sorted.

    ``jobs`` controls the file-pass fan-out: ``1`` forces the serial
    loop, ``None`` auto-sizes a fork pool to the machine.  The merged
    finding list is sorted either way, so output order never depends on
    the job count; any pool failure silently degrades to serial.
    """
    selected = [rule.rule_id for rule in _select_rules(select)]
    files = [str(path) for path in iter_python_files(paths)]
    n_jobs = resolve_jobs(jobs, len(files))
    fork = _fork_context() if n_jobs > 1 else None
    per_file: Optional[List[List[Finding]]] = None
    if fork is not None:
        try:
            with fork.Pool(
                n_jobs, initializer=_init_lint_worker, initargs=(selected,)
            ) as pool:
                per_file = pool.map(_lint_file_work, files)
        except Exception:
            per_file = None  # lint is pure per file; redo serially
    if per_file is None:
        per_file = [check_file(Path(path), select=selected) for path in files]
    findings: List[Finding] = []
    for file_findings in per_file:
        findings.extend(file_findings)
    return sorted(findings)
