"""File discovery, rule orchestration, and noqa filtering."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.lint.base import LintRule, ModuleSource
from repro.lint.findings import Finding
from repro.lint.noqa import is_suppressed
from repro.lint.rules import ALL_RULES

#: Directory names never descended into.
SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})

#: Pseudo-rule for unparsable files (cannot be noqa'd away).
SYNTAX_RULE = "SYN001"


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """All ``.py`` files under ``paths``, depth-first, sorted.

    Plain files are yielded as given; directories are walked
    recursively.  Missing paths raise ``FileNotFoundError`` so typos
    fail loudly instead of silently checking nothing.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in SKIPPED_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    yield Path(root) / name


def _select_rules(select: Optional[Iterable[str]]) -> List[LintRule]:
    if select is None:
        return list(ALL_RULES)
    wanted = {rule_id.strip().upper() for rule_id in select if rule_id.strip()}
    unknown = wanted - {rule.rule_id for rule in ALL_RULES}
    if unknown:
        known = ", ".join(rule.rule_id for rule in ALL_RULES)
        raise ValueError(
            f"unknown rule ID(s): {', '.join(sorted(unknown))} "
            f"(known: {known})"
        )
    return [rule for rule in ALL_RULES if rule.rule_id in wanted]


def check_source(
    path: str,
    source: str,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the (selected) rules over one in-memory module."""
    module = ModuleSource.from_source(path, source)
    if module.tree is None:
        return [
            Finding(
                path=path,
                line=1,
                col=0,
                rule=SYNTAX_RULE,
                message="file does not parse; fix the syntax error first",
            )
        ]
    findings: List[Finding] = []
    for rule in _select_rules(select):
        for finding in rule.check(module):
            if is_suppressed(module.suppressions, finding.line, finding.rule):
                continue
            findings.append(finding)
    return sorted(findings)


def check_file(
    path: Path, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run the (selected) rules over one file on disk."""
    source = path.read_text(encoding="utf-8")
    return check_source(str(path), source, select=select)


def run_checks(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Check every Python file under ``paths``; findings sorted."""
    selected = [rule.rule_id for rule in _select_rules(select)]
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(check_file(path, select=selected))
    return sorted(findings)
