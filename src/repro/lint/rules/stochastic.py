"""STO001 -- transition-matrix construction must self-validate.

Eqn. 8 evolves ``I_T = A^T I_0``; every probability the attack reports
(Eqns. 1--7, the IG argmax) is a linear functional of powers of ``A``.
A row that silently sums to 1 + eps inflates every posterior it feeds,
and the substochastic target-excluded matrices of Section V-A must shed
*exactly* the excluded flows' mass -- errors here are invisible to
spot-check tests because the drift compounds over ``T`` steps.

The rule therefore requires every construction site -- a function named
like ``*transition_matrix*`` / ``*probe_matrix*``, or any function
assembling a scipy sparse matrix from coo-style triplets -- to call
:func:`repro.core.chain.validate_stochastic` before handing the matrix
out.  Helper functions that build triplet *entries* without forming a
matrix are not flagged; validation belongs where the matrix is formed.
"""

from __future__ import annotations

import ast
import re
from typing import ClassVar, FrozenSet, Iterator

from repro.lint.base import (
    AnyFunctionDef,
    LintRule,
    ModuleSource,
    call_endpoint,
    iter_function_defs,
)
from repro.lint.findings import Finding

#: scipy.sparse constructors that assemble a matrix from triplets/data.
SPARSE_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "bsr_matrix",
        "coo_array",
        "coo_matrix",
        "csc_array",
        "csc_matrix",
        "csr_array",
        "csr_matrix",
        "dia_matrix",
        "dok_matrix",
        "lil_matrix",
    }
)

#: Function names that are transition-matrix construction sites by
#: contract (anchored: a benchmark or test *about* these functions is
#: not itself a construction site).
_MATRIX_DEF_RE = re.compile(r"^_*(transition|probe)_matrix$")

#: The blessed validator (repro.core.chain.validate_stochastic).
VALIDATOR_NAME = "validate_stochastic"


class UnvalidatedTransitionMatrixRule(LintRule):
    """STO001: matrix construction without ``validate_stochastic``."""

    rule_id: ClassVar[str] = "STO001"
    summary: ClassVar[str] = (
        "transition/probe matrix construction sites must call "
        "chain.validate_stochastic"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        for function in iter_function_defs(module.tree):
            if not self._is_construction_site(function):
                continue
            if self._calls_validator(function):
                continue
            yield self.finding(
                module,
                function,
                f"{function.name}() constructs a transition matrix "
                "without routing it through chain.validate_stochastic",
            )

    # ------------------------------------------------------------------
    def _is_construction_site(self, function: AnyFunctionDef) -> bool:
        if _MATRIX_DEF_RE.search(function.name):
            return True
        for node in self._walk_own(function):
            if isinstance(node, ast.Call):
                endpoint = call_endpoint(node.func)
                if endpoint in SPARSE_CONSTRUCTORS:
                    return True
        return False

    def _calls_validator(self, function: AnyFunctionDef) -> bool:
        for node in self._walk_own(function):
            if isinstance(node, ast.Call):
                if call_endpoint(node.func) == VALIDATOR_NAME:
                    return True
        return False

    @staticmethod
    def _walk_own(function: AnyFunctionDef) -> Iterator[ast.AST]:
        """Walk a function body without descending into nested defs."""
        stack: list[ast.AST] = list(function.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))
