"""DET001 -- unordered iteration must not feed downstream computation.

The IG argmax breaks ties by canonical candidate order, float sums
depend on accumulation order, and serialised artifacts are diffed
across runs -- so any value that flows out of a ``set`` must leave it
in sorted order.  With hash randomisation, iterating a set of strings
(or any hash-keyed object) permutes between *processes*, which is
exactly the cross-``n_jobs`` nondeterminism the differential suites
guard against.

The rule taints set-valued expressions (literals, comprehensions,
``set()`` / ``frozenset()`` calls, set algebra over those, and local
names bound to them) and flags handing one, unsorted, to an ordered
consumer: a ``for`` loop or comprehension, ``list`` / ``tuple`` /
``enumerate`` / ``sum``, ``str.join``, or a numpy array constructor.
Order-insensitive consumption (``in``, ``len``, ``min``/``max``,
``sorted`` itself, set algebra) is untouched.
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Iterator, List, Optional, Set

from repro.lint.base import (
    AnyFunctionDef,
    LintRule,
    ModuleSource,
    call_endpoint,
    iter_function_defs,
)
from repro.lint.findings import Finding

#: Call endpoints whose output order follows input iteration order.
ORDERED_CONSUMERS: FrozenSet[str] = frozenset(
    {
        "array",
        "asarray",
        "concatenate",
        "enumerate",
        "fromiter",
        "join",
        "list",
        "stack",
        "sum",
        "tuple",
    }
)

_SET_CALLS: FrozenSet[str] = frozenset({"frozenset", "set"})
_SET_BINOPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
_SET_METHODS: FrozenSet[str] = frozenset(
    {"difference", "intersection", "symmetric_difference", "union"}
)


class _SetTracker:
    """Per-scope set-typed expression/name classification."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CALLS:
                # ``set()`` with no argument builds empty and ordered-
                # by-insertion-is-meaningless; still a set either way.
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def bind(self, target: ast.expr, value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            if value is not None and self.is_set_expr(value):
                self.set_names.add(target.id)
            else:
                self.set_names.discard(target.id)


class _ScopeWalker(ast.NodeVisitor):
    """Walk one scope's statements in order, flagging ordered consumption."""

    def __init__(self, rule: "SetIterationRule", module: ModuleSource) -> None:
        self.rule = rule
        self.module = module
        self.tracker = _SetTracker()
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, how: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.module,
                node,
                f"{how} iterates an unordered set; wrap it in sorted() "
                "to keep scoring/serialisation deterministic",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self.tracker.bind(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        self.tracker.bind(node.target, node.value)

    def visit_For(self, node: ast.For) -> None:
        if self.tracker.is_set_expr(node.iter):
            self._flag(node.iter, "for loop")
        self.generic_visit(node)

    def visit_comprehension_iters(self, generators: List[ast.comprehension]) -> None:
        for comp in generators:
            if self.tracker.is_set_expr(comp.iter):
                self._flag(comp.iter, "comprehension")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        endpoint = call_endpoint(node.func)
        if endpoint in ORDERED_CONSUMERS and node.args:
            first = node.args[0]
            if self.tracker.is_set_expr(first):
                self._flag(node, f"{endpoint}() over a set argument")
        self.generic_visit(node)

    # Nested scopes are walked independently.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


class SetIterationRule(LintRule):
    """DET001: ordered consumption of unordered sets."""

    rule_id: ClassVar[str] = "DET001"
    summary: ClassVar[str] = (
        "set iteration feeding scoring/serialisation must go through "
        "sorted()"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        scopes: List[Optional[AnyFunctionDef]] = [None]
        scopes.extend(iter_function_defs(module.tree))
        for scope in scopes:
            walker = _ScopeWalker(self, module)
            body = module.tree.body if scope is None else scope.body
            for statement in body:
                walker.visit(statement)
            yield from walker.findings
