"""OBS001 -- spans and phase timers must be used as context managers.

:meth:`repro.obs.Tracer.span` and :meth:`repro.obs.PhaseProfiler.phase`
return context managers; the measurement only happens between
``__enter__`` and ``__exit__``.  A bare statement call::

    obs.span("engine.select")          # opened, never finished
    timer = obs.phase("model_build")   # never entered at all

either leaks an unfinished span into the trace (breaking NDJSON export,
which requires every record to carry a duration) or silently records
nothing.  The rule flags ``span(...)`` / ``phase(...)`` calls used as a
bare expression statement or assigned without entering them; the fix is
always ``with obs.span(...):`` / ``with obs.phase(...) as t:``.

Calls whose value is consumed some other way (returned, passed along,
used as a ``with`` context expression) are fine: wrapper APIs such as
``Instrumentation.span`` legitimately forward the context manager.
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Iterator

from repro.lint.base import LintRule, ModuleSource, call_endpoint
from repro.lint.findings import Finding

#: Observability endpoints that return context managers.
CONTEXT_ENDPOINTS: FrozenSet[str] = frozenset({"phase", "span"})


def _is_obs_context_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and call_endpoint(node.func) in CONTEXT_ENDPOINTS
    )


class ObservabilityContextRule(LintRule):
    """OBS001: span/phase opened without a context manager."""

    rule_id: ClassVar[str] = "OBS001"
    summary: ClassVar[str] = (
        "span()/phase() return context managers; a bare call or plain "
        "assignment never records -- use 'with'"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Expr) and _is_obs_context_call(node.value):
                endpoint = call_endpoint(node.value.func)
                yield self.finding(
                    module,
                    node.value,
                    f"{endpoint}() call discarded -- the context manager "
                    "is never entered, so nothing is recorded; wrap it in "
                    f"'with ...{endpoint}(...):'",
                )
            elif (
                isinstance(node, (ast.Assign, ast.AnnAssign))
                and node.value is not None
                and _is_obs_context_call(node.value)
            ):
                endpoint = call_endpoint(node.value.func)
                yield self.finding(
                    module,
                    node.value,
                    f"{endpoint}() assigned but not entered; use "
                    f"'with ...{endpoint}(...) as name:' so the "
                    "measurement actually starts and finishes",
                )
