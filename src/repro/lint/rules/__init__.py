"""Rule registry: one module per rule, stable IDs, fixed order."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lint.base import LintRule
from repro.lint.rules.defense import DefenseStreamRule
from repro.lint.rules.determinism import SetIterationRule
from repro.lint.rules.faults import InjectorRandomnessRule
from repro.lint.rules.mutation import CachedArrayMutationRule
from repro.lint.rules.obs import ObservabilityContextRule
from repro.lint.rules.parallel import PoolWorkerCaptureRule
from repro.lint.rules.pyhygiene import PythonHygieneRule
from repro.lint.rules.rng import UnseededRandomnessRule
from repro.lint.rules.service import ServiceGeneratorRule
from repro.lint.rules.stochastic import UnvalidatedTransitionMatrixRule

#: Every rule, in reporting/documentation order.
ALL_RULES: List[LintRule] = [
    UnseededRandomnessRule(),
    CachedArrayMutationRule(),
    UnvalidatedTransitionMatrixRule(),
    SetIterationRule(),
    PythonHygieneRule(),
    ObservabilityContextRule(),
    InjectorRandomnessRule(),
    PoolWorkerCaptureRule(),
    ServiceGeneratorRule(),
    DefenseStreamRule(),
]

_BY_ID: Dict[str, LintRule] = {rule.rule_id: rule for rule in ALL_RULES}


def rule_by_id(rule_id: str) -> Optional[LintRule]:
    """The registered rule with this ID, if any."""
    return _BY_ID.get(rule_id.upper())


__all__ = [
    "ALL_RULES",
    "CachedArrayMutationRule",
    "DefenseStreamRule",
    "InjectorRandomnessRule",
    "ObservabilityContextRule",
    "PoolWorkerCaptureRule",
    "PythonHygieneRule",
    "ServiceGeneratorRule",
    "SetIterationRule",
    "UnseededRandomnessRule",
    "UnvalidatedTransitionMatrixRule",
    "rule_by_id",
]
