"""PAR001 -- pool workers must not capture parent RNG/instrumentation.

The experiment and engine layers fan work out across fork pools
(:mod:`repro.core.engine`, :mod:`repro.experiments.parallel`).  Under
the fork start method a worker function silently inherits the parent's
memory image, so it is easy to write a worker that *appears* to work
while breaking both determinism contracts:

* drawing from an ``np.random.Generator`` created in the parent makes
  every worker clone the parent's stream -- draws are duplicated across
  workers and diverge from the serial order, so ``n_jobs`` changes the
  numbers;
* writing to the parent's :class:`~repro.obs.Instrumentation` records
  nothing (the fork's copy dies with the worker) or double-counts under
  a start-method change.

Workers must instead receive pre-drawn seeds/plans in their task items
and return counter *deltas* for the parent to re-emit (the pattern both
fan-out layers use).  The rule inspects every function dispatched
through a pool (``pool.map(worker, ...)`` and the other ``Pool``
dispatch methods) and flags:

* ``lambda`` workers and workers defined inside another function --
  closures capture parent state invisibly (and do not survive a switch
  to the spawn start method);
* module-level workers that call ``get_instrumentation()`` -- under
  fork that is the parent's backend; create a fresh
  ``Instrumentation()`` and return its counters as deltas instead;
* module-level workers that read a module global bound to an
  ``Instrumentation``/``np.random.Generator`` (by construction --
  ``X = Instrumentation()`` / ``X = np.random.default_rng(...)`` /
  ``X = get_instrumentation()`` -- or by annotation).

Worker *initializers* (``Pool(initializer=...)``) are the sanctioned
channel for fork-inherited state and are not flagged.  Intentional
exceptions need ``# repro: noqa[PAR001]``.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, FrozenSet, Iterator, Optional, Set, Tuple

from repro.lint.base import (
    AnyFunctionDef,
    LintRule,
    ModuleSource,
    call_endpoint,
    dotted_name,
    iter_function_defs,
)
from repro.lint.findings import Finding

#: ``multiprocessing.Pool`` methods that dispatch a worker function.
POOL_DISPATCH_METHODS: FrozenSet[str] = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
    }
)

#: Constructor endpoints whose module-level result taints a global.
_TAINTING_CALLS: FrozenSet[str] = frozenset(
    {"Instrumentation", "get_instrumentation", "default_rng", "RandomState"}
)

#: Annotation substrings marking a global as RNG/instrumentation state.
_TAINTED_ANNOTATIONS: Tuple[str, ...] = ("Instrumentation", "Generator")


def _is_pool_dispatch(node: ast.Call) -> bool:
    """``<pool>.map(worker, ...)`` and friends, by receiver name."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr not in POOL_DISPATCH_METHODS:
        return False
    receiver = dotted_name(func.value)
    return receiver is not None and "pool" in receiver.lower()


def _annotation_text(node: Optional[ast.expr]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ""


class _ModuleIndex:
    """Module-level facts the worker checks need: defs, scopes, taints."""

    def __init__(self, tree: ast.Module) -> None:
        self.top_level: Dict[str, AnyFunctionDef] = {}
        self.nested: Set[str] = set()
        self.tainted_globals: Dict[str, str] = {}

        for statement in tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.top_level[statement.name] = statement
            elif isinstance(statement, (ast.Assign, ast.AnnAssign)):
                self._index_global(statement)

        for function in iter_function_defs(tree):
            for inner in ast.walk(function):
                if inner is function:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.nested.add(inner.name)

    def _index_global(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
            annotation = ""
        else:
            assert isinstance(statement, ast.AnnAssign)
            targets = [statement.target]
            value = statement.value
            annotation = _annotation_text(statement.annotation)
        reason = ""
        if isinstance(value, ast.Call):
            endpoint = call_endpoint(value.func)
            if endpoint in _TAINTING_CALLS:
                reason = f"assigned from {endpoint}()"
        if not reason and any(
            marker in annotation for marker in _TAINTED_ANNOTATIONS
        ):
            reason = f"annotated as {annotation}"
        if not reason:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.tainted_globals[target.id] = reason


class PoolWorkerCaptureRule(LintRule):
    """PAR001: pool workers must receive state explicitly."""

    rule_id: ClassVar[str] = "PAR001"
    summary: ClassVar[str] = (
        "pool workers must not capture parent "
        "Instrumentation/Generator state (pass seeds, return deltas)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        index = _ModuleIndex(module.tree)
        reported: Set[Tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_pool_dispatch(node)):
                continue
            if not node.args:
                continue
            worker = node.args[0]
            for finding in self._check_worker(module, worker, index):
                key = (finding.line, finding.col)
                if key not in reported:
                    reported.add(key)
                    yield finding

    # ------------------------------------------------------------------
    def _check_worker(
        self, module: ModuleSource, worker: ast.expr, index: _ModuleIndex
    ) -> Iterator[Finding]:
        if isinstance(worker, ast.Lambda):
            yield self.finding(
                module,
                worker,
                "lambda pool worker captures its defining scope; use a "
                "module-level function taking explicit task state",
            )
            return
        name = worker.id if isinstance(worker, ast.Name) else None
        if name is None:
            return
        if name in index.nested and name not in index.top_level:
            yield self.finding(
                module,
                worker,
                f"pool worker '{name}' is a nested function; its closure "
                "captures parent state -- define it at module level",
            )
            return
        definition = index.top_level.get(name)
        if definition is None:
            return
        yield from self._check_worker_body(module, definition, index)

    def _check_worker_body(
        self,
        module: ModuleSource,
        definition: AnyFunctionDef,
        index: _ModuleIndex,
    ) -> Iterator[Finding]:
        local_names = {
            argument.arg
            for argument in (
                definition.args.posonlyargs
                + definition.args.args
                + definition.args.kwonlyargs
            )
        }
        # Anything stored anywhere in the worker is a local (Python's
        # whole-function scoping), unless declared global.
        declared_global: Set[str] = set()
        for node in ast.walk(definition):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                local_names.add(node.id)
        local_names -= declared_global
        for node in ast.walk(definition):
            if isinstance(node, ast.Call):
                endpoint = call_endpoint(node.func)
                if endpoint == "get_instrumentation":
                    yield self.finding(
                        module,
                        node,
                        f"pool worker '{definition.name}' reads the "
                        "ambient instrumentation; under fork that is the "
                        "parent's backend -- create a fresh "
                        "Instrumentation() and return counter deltas",
                    )
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id not in local_names
                and node.id in index.tainted_globals
            ):
                reason = index.tainted_globals[node.id]
                yield self.finding(
                    module,
                    node,
                    f"pool worker '{definition.name}' reads parent-owned "
                    f"global '{node.id}' ({reason}); pass seeds/state in "
                    "the task items instead",
                )
