"""SRV101 -- service handlers must not construct generators ad hoc.

The service's bit-identical resume contract (docs/SERVICE.md) hangs on
one discipline: every random draw a session makes must descend from
the planned generator ``default_rng([job_seed, session_index])``,
created in the *planning* path and consumed through pre-drawn
:class:`~repro.experiments.parallel.TrialPlan` records.  A generator
constructed inside a service handler -- an ``async def`` coroutine, or
any method of a ``*Service*`` class -- is randomness keyed by
*execution order* (which jobs ran before, which sessions were resumed
from checkpoints), and silently breaks kill/resume equality even when
the seed argument looks explicit.

The rule flags construction of ``numpy.random.default_rng`` /
``Generator`` / ``RandomState`` lexically inside

* an ``async def`` function (service handlers are coroutines), or
* a function defined in a class whose name contains ``Service``,

unless an enclosing function's name starts with ``plan``/``_plan`` --
the planned-seed path (e.g. ``plan_session``), where session-keyed
construction is the whole point.  Synchronous module-level helpers
(``session_rng`` and the experiment pipelines) are out of scope here;
RNG001 already polices unseeded construction everywhere.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, List, Optional, Tuple

from repro.lint.base import (
    AnyFunctionDef,
    LintRule,
    ModuleSource,
    call_endpoint,
)
from repro.lint.findings import Finding

#: Call endpoints that construct a generator-like object.
_GENERATOR_CALLS = frozenset({"default_rng", "Generator", "RandomState"})

#: Enclosing-function prefixes that mark the planned-seed path.
_PLANNED_PREFIXES = ("plan", "_plan")


def _is_service_class(name: str) -> bool:
    return "Service" in name


class ServiceGeneratorRule(LintRule):
    """SRV101: generators in service handlers outside the planned path."""

    rule_id: ClassVar[str] = "SRV101"
    summary: ClassVar[str] = (
        "service handlers must not construct Generators outside the "
        "planned-seed path (plan_* functions)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        yield from self._walk(module, module.tree, enclosing=(), in_service_class=False)

    def _walk(
        self,
        module: ModuleSource,
        node: ast.AST,
        *,
        enclosing: Tuple[AnyFunctionDef, ...],
        in_service_class: bool,
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._walk(
                    module,
                    child,
                    enclosing=enclosing,
                    in_service_class=in_service_class
                    or _is_service_class(child.name),
                )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(
                    module,
                    child,
                    enclosing=enclosing + (child,),
                    in_service_class=in_service_class,
                )
            else:
                if isinstance(child, ast.Call):
                    finding = self._check_call(
                        module, child, enclosing, in_service_class
                    )
                    if finding is not None:
                        yield finding
                yield from self._walk(
                    module,
                    child,
                    enclosing=enclosing,
                    in_service_class=in_service_class,
                )

    def _check_call(
        self,
        module: ModuleSource,
        node: ast.Call,
        enclosing: Tuple[AnyFunctionDef, ...],
        in_service_class: bool,
    ) -> Optional[Finding]:
        endpoint = call_endpoint(node.func)
        if endpoint not in _GENERATOR_CALLS:
            return None
        if not enclosing:
            return None
        in_handler = in_service_class or any(
            isinstance(func, ast.AsyncFunctionDef) for func in enclosing
        )
        if not in_handler:
            return None
        if any(
            func.name.startswith(_PLANNED_PREFIXES) for func in enclosing
        ):
            return None
        names: List[str] = [func.name for func in enclosing]
        return self.finding(
            module,
            node,
            f"{endpoint}(...) constructed in service handler "
            f"{'.'.join(names)}(); route randomness through the "
            "planned-seed path (a plan_* function) so resume stays "
            "bit-identical",
        )
