"""DEF001 -- defenses must draw only from their own spawned stream.

A countermeasure attached to a :class:`~repro.simulator.network.
Network` samples its artificial delays on the packet hot path.  If it
draws from the *network's* generator, its samples interleave with the
simulator's service/setup times and the whole trial stream shifts --
the exact bug the SEED102 audit caught in ``DelayDefense`` (the fix:
spawn an independent child stream off the network's seed tree at
``attach`` time and draw from that ever after).  Module-level RNGs are
worse still: process-wide hidden state shared across every fork of the
``--trial-jobs`` pool.

The rule applies to any class whose name ends in ``Defense`` and
flags, inside its methods:

* any use of the legacy module-level ``np.random`` API (shares
  :data:`~repro.lint.rules.rng.LEGACY_GLOBAL_API` with RNG001);
* calls into the stdlib ``random`` module (``random.random()``, ...);
* ``default_rng(...)`` calls outside ``__init__``/``attach`` --
  defenses build their stream once at construction or attach, never
  per packet;
* generator draws through a non-``self`` ``.rng`` chain (``network.
  rng.normal(...)``, ``self._network.rng.choice(...)``): that is the
  simulator's stream, not the defense's.  The one sanctioned use is
  ``.spawn`` inside ``__init__``/``attach`` -- deriving the defense's
  own child stream from the network's seed tree (docs/DEFENSES.md).
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Iterator

from repro.lint.base import AnyFunctionDef, LintRule, ModuleSource
from repro.lint.findings import Finding
from repro.lint.rules.faults import _STDLIB_RANDOM_API, _StdlibRandomAliases
from repro.lint.rules.rng import LEGACY_GLOBAL_API, _ImportAliases

#: Methods that advance a ``np.random.Generator`` stream.
_GENERATOR_DRAW_API: FrozenSet[str] = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "dirichlet",
        "exponential",
        "f",
        "gamma",
        "geometric",
        "gumbel",
        "hypergeometric",
        "integers",
        "laplace",
        "logistic",
        "lognormal",
        "multinomial",
        "multivariate_hypergeometric",
        "multivariate_normal",
        "negative_binomial",
        "noncentral_chisquare",
        "noncentral_f",
        "normal",
        "pareto",
        "permutation",
        "permuted",
        "poisson",
        "power",
        "random",
        "rayleigh",
        "shuffle",
        "spawn",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
    }
)

#: Methods where building/spawning the defense's own stream is the
#: sanctioned pattern rather than a violation.
_SETUP_METHODS: FrozenSet[str] = frozenset({"__init__", "attach"})


class DefenseStreamRule(LintRule):
    """DEF001: defenses draw only from their owned child stream."""

    rule_id: ClassVar[str] = "DEF001"
    summary: ClassVar[str] = (
        "defenses must draw from their own stream spawned at attach, "
        "never the network's generator or module-level RNGs"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        np_aliases = _ImportAliases()
        np_aliases.visit(module.tree)
        std_aliases = _StdlibRandomAliases()
        std_aliases.visit(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Defense"):
                continue
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_method(
                        module, node, item, np_aliases, std_aliases
                    )

    # ------------------------------------------------------------------
    def _check_method(
        self,
        module: ModuleSource,
        cls: ast.ClassDef,
        method: AnyFunctionDef,
        np_aliases: _ImportAliases,
        std_aliases: _StdlibRandomAliases,
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute):
                if (
                    node.attr in LEGACY_GLOBAL_API
                    and self._is_numpy_random(node.value, np_aliases)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{cls.name}.{method.name} draws from the legacy "
                        f"global np.random.{node.attr}; defenses must use "
                        "their own stream spawned at attach (self._rng)",
                    )
                elif (
                    node.attr in _STDLIB_RANDOM_API
                    and isinstance(node.value, ast.Name)
                    and node.value.id in std_aliases.random
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{cls.name}.{method.name} draws from the stdlib "
                        f"random.{node.attr} global; defenses must use "
                        "their own stream spawned at attach (self._rng)",
                    )
            if not isinstance(node, ast.Call):
                continue
            if (
                method.name not in _SETUP_METHODS
                and self._is_default_rng(node.func, np_aliases)
            ):
                yield self.finding(
                    module,
                    node,
                    f"{cls.name}.{method.name} constructs a fresh "
                    "default_rng() per call; spawn the defense's stream "
                    "once at attach and draw from self._rng",
                )
                continue
            finding = self._check_foreign_stream(
                module, cls, method, node
            )
            if finding is not None:
                yield finding

    def _check_foreign_stream(
        self,
        module: ModuleSource,
        cls: ast.ClassDef,
        method: AnyFunctionDef,
        node: ast.Call,
    ) -> Finding | None:
        """A draw through a ``.rng`` chain the defense does not own."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in _GENERATOR_DRAW_API:
            return None
        owner = func.value
        if not (isinstance(owner, ast.Attribute) and owner.attr == "rng"):
            return None
        base = owner.value
        if isinstance(base, ast.Name) and base.id == "self":
            return None  # self.rng is the defense's own attribute
        if func.attr == "spawn" and method.name in _SETUP_METHODS:
            return None  # the sanctioned seed-tree derivation
        return self.finding(
            module,
            func,
            f"{cls.name}.{method.name} draws via .rng.{func.attr} on a "
            "foreign object (the simulator's stream); spawn an own child "
            "stream at attach and draw from self._rng",
        )

    # ------------------------------------------------------------------
    def _is_numpy_random(
        self, node: ast.expr, aliases: _ImportAliases
    ) -> bool:
        if isinstance(node, ast.Name):
            return node.id in aliases.numpy_random
        if isinstance(node, ast.Attribute) and node.attr == "random":
            return (
                isinstance(node.value, ast.Name)
                and node.value.id in aliases.numpy
            )
        return False

    def _is_default_rng(
        self, func: ast.expr, aliases: _ImportAliases
    ) -> bool:
        if isinstance(func, ast.Name):
            return func.id in aliases.default_rng
        if isinstance(func, ast.Attribute) and func.attr == "default_rng":
            return self._is_numpy_random(func.value, aliases)
        return False
