"""FLT001 -- fault injectors must draw from an injected Generator.

The fault layer's determinism contract (docs/FAULTS.md) is that a
:class:`~repro.faults.FaultPlan`'s seed fully determines the injected
faults, and that the fault stream is independent of the network RNG.
Both break if an injector draws from a module-level RNG (the legacy
``np.random.*`` global or the stdlib ``random`` module -- process-wide
hidden state, shared across forks) or conjures a fresh generator on the
hot path.

The rule applies to any class whose name ends in ``Injector`` and
flags, inside its methods:

* any use of the legacy module-level ``np.random`` API (shares
  :data:`~repro.lint.rules.rng.LEGACY_GLOBAL_API` with RNG001);
* calls into the stdlib ``random`` module (``random.random()``, ...);
* ``default_rng(...)`` calls **outside** ``__init__`` -- constructing a
  generator per draw resets the stream; injectors must build their RNG
  once at construction (from the plan's seed or an injected generator)
  and draw from ``self.rng`` thereafter.
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Iterator, Set

from repro.lint.base import AnyFunctionDef, LintRule, ModuleSource
from repro.lint.findings import Finding
from repro.lint.rules.rng import LEGACY_GLOBAL_API, _ImportAliases

#: Stdlib ``random`` module functions backed by the hidden global.
_STDLIB_RANDOM_API: FrozenSet[str] = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


class _StdlibRandomAliases(ast.NodeVisitor):
    """Track names bound to the stdlib ``random`` module."""

    def __init__(self) -> None:
        self.random: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.random.add(alias.asname or "random")


class InjectorRandomnessRule(LintRule):
    """FLT001: fault injectors must use their injected Generator."""

    rule_id: ClassVar[str] = "FLT001"
    summary: ClassVar[str] = (
        "fault injectors must draw from an injected numpy Generator, "
        "never module-level RNGs"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        np_aliases = _ImportAliases()
        np_aliases.visit(module.tree)
        std_aliases = _StdlibRandomAliases()
        std_aliases.visit(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Injector"):
                continue
            yield from self._check_injector(
                module, node, np_aliases, std_aliases
            )

    # ------------------------------------------------------------------
    def _check_injector(
        self,
        module: ModuleSource,
        cls: ast.ClassDef,
        np_aliases: _ImportAliases,
        std_aliases: _StdlibRandomAliases,
    ) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_method(
                module, cls, item, np_aliases, std_aliases
            )

    def _check_method(
        self,
        module: ModuleSource,
        cls: ast.ClassDef,
        method: AnyFunctionDef,
        np_aliases: _ImportAliases,
        std_aliases: _StdlibRandomAliases,
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute):
                if (
                    node.attr in LEGACY_GLOBAL_API
                    and self._is_numpy_random(node.value, np_aliases)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{cls.name}.{method.name} draws from the legacy "
                        f"global np.random.{node.attr}; fault injectors "
                        "must use their injected Generator (self.rng)",
                    )
                elif (
                    node.attr in _STDLIB_RANDOM_API
                    and isinstance(node.value, ast.Name)
                    and node.value.id in std_aliases.random
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{cls.name}.{method.name} draws from the stdlib "
                        f"random.{node.attr} global; fault injectors must "
                        "use their injected Generator (self.rng)",
                    )
            elif (
                isinstance(node, ast.Call)
                and method.name != "__init__"
                and self._is_default_rng(node.func, np_aliases)
            ):
                yield self.finding(
                    module,
                    node,
                    f"{cls.name}.{method.name} constructs a fresh "
                    "default_rng() per call; build the generator once in "
                    "__init__ and draw from self.rng",
                )

    # ------------------------------------------------------------------
    def _is_numpy_random(
        self, node: ast.expr, aliases: _ImportAliases
    ) -> bool:
        if isinstance(node, ast.Name):
            return node.id in aliases.numpy_random
        if isinstance(node, ast.Attribute) and node.attr == "random":
            return (
                isinstance(node.value, ast.Name)
                and node.value.id in aliases.numpy
            )
        return False

    def _is_default_rng(
        self, func: ast.expr, aliases: _ImportAliases
    ) -> bool:
        if isinstance(func, ast.Name):
            return func.id in aliases.default_rng
        if isinstance(func, ast.Attribute) and func.attr == "default_rng":
            return self._is_numpy_random(func.value, aliases)
        return False
