"""MUT001 -- cached model/inference arrays are read-only.

The probe-scoring engine's speed comes from aliasing: ``evolution()``,
``prefix_distribution()``, ``coverage_vector()``, ``probe_matrix()``
and the model's memoised transition-entry accessors
(``_ensure_entries()`` / ``_sorted_entries()``, which the fast screen
reads directly) return the cached object itself, and ``dist_full`` /
``dist_absent`` *are* cache entries.  Writing through any of those
references corrupts
every later score drawn from the same cache -- silently, because the
numbers stay plausible.  (The runtime complement: the caches return
arrays with ``writeable=False``, so an uncaught mutation raises.)

The rule runs a per-function taint pass: names bound to an accessor's
result (or to ``.dist_full`` / ``.dist_absent``) are tainted until
rebound; ``.copy()`` launders the taint.  Flagged operations on a
tainted value or directly on an accessor call:

* subscript assignment or augmented assignment (``w[0] = x``, ``w *= 2``);
* in-place ndarray methods (``sort``, ``fill``, ``put``, ...);
* re-enabling writes via ``setflags(write=True)``.

Mutating a fresh copy is always fine: ``w = acc().copy(); w[0] = 1``.
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Iterator, List, Optional, Set

from repro.lint.base import (
    AnyFunctionDef,
    LintRule,
    ModuleSource,
    iter_function_defs,
)
from repro.lint.findings import Finding

#: Methods returning cached (aliased) arrays/matrices.
CACHE_ACCESSOR_METHODS: FrozenSet[str] = frozenset(
    {
        "_ensure_entries",
        "_sorted_entries",
        "coverage_vector",
        "evolution",
        "prefix_distribution",
        "probe_matrix",
    }
)

#: Attributes that alias cache entries on ``ReconInference``.
CACHE_ATTRIBUTES: FrozenSet[str] = frozenset({"dist_absent", "dist_full"})

#: ndarray methods that mutate in place.
INPLACE_METHODS: FrozenSet[str] = frozenset(
    {
        "byteswap",
        "fill",
        "itemset",
        "partition",
        "put",
        "resize",
        "sort",
    }
)


def _is_accessor_expr(node: ast.expr) -> bool:
    """Whether an expression reads straight from a cache accessor."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in CACHE_ACCESSOR_METHODS
    if isinstance(node, ast.Attribute):
        return node.attr in CACHE_ATTRIBUTES
    return False


class _FunctionTaint(ast.NodeVisitor):
    """Linear taint pass over one function body."""

    def __init__(self, rule: "CachedArrayMutationRule", module: ModuleSource) -> None:
        self.rule = rule
        self.module = module
        self.tainted: Set[str] = set()
        self.findings: List[Finding] = []

    # -- taint bookkeeping ---------------------------------------------
    def _expr_taints(self, value: ast.expr) -> bool:
        """Whether binding a name to ``value`` taints it."""
        if _is_accessor_expr(value):
            return True
        if isinstance(value, ast.Name) and value.id in self.tainted:
            return True
        return False

    def _is_tainted_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        return _is_accessor_expr(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._flag_mutating_targets(node.targets)
        taints = self._expr_taints(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if taints:
                    self.tainted.add(target.id)
                else:
                    self.tainted.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if self._expr_taints(node.value):
                self.tainted.add(node.target.id)
            else:
                self.tainted.discard(node.target.id)
        self.generic_visit(node)

    # -- mutation sites ------------------------------------------------
    def _flag_mutating_targets(self, targets: List[ast.expr]) -> None:
        for target in targets:
            if isinstance(target, ast.Subscript) and self._is_tainted_expr(
                target.value
            ):
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        target,
                        "subscript write into a cached array; take "
                        "a .copy() before mutating",
                    )
                )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        base = target.value if isinstance(target, ast.Subscript) else target
        if self._is_tainted_expr(base):
            self.findings.append(
                self.rule.finding(
                    self.module,
                    node,
                    "augmented assignment mutates a cached array in "
                    "place; take a .copy() first",
                )
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and self._is_tainted_expr(
            func.value
        ):
            if func.attr in INPLACE_METHODS:
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        f".{func.attr}() mutates a cached array in "
                        "place; take a .copy() first",
                    )
                )
            elif func.attr == "setflags" and self._enables_write(node):
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        "setflags(write=True) re-enables writes on a "
                        "cached array",
                    )
                )
        self.generic_visit(node)

    @staticmethod
    def _enables_write(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "write":
                value = keyword.value
                return not (
                    isinstance(value, ast.Constant) and value.value is False
                )
        if node.args:
            first = node.args[0]
            return not (
                isinstance(first, ast.Constant) and first.value is False
            )
        return False

    # Nested functions get their own scope/pass; do not descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


class CachedArrayMutationRule(LintRule):
    """MUT001: in-place mutation of cached model/inference arrays."""

    rule_id: ClassVar[str] = "MUT001"
    summary: ClassVar[str] = (
        "arrays returned by cache accessors "
        "(prefix_distribution/evolution/coverage_vector/probe_matrix, "
        "_ensure_entries/_sorted_entries, dist_full/dist_absent) "
        "must not be mutated"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        scopes: List[Optional[AnyFunctionDef]] = [None]
        scopes.extend(iter_function_defs(module.tree))
        for scope in scopes:
            walker = _FunctionTaint(self, module)
            body = module.tree.body if scope is None else scope.body
            for statement in body:
                walker.visit(statement)
            yield from walker.findings
