"""RNG001 -- all randomness must thread from explicit seeds.

The differential suites of PR 1 assert that probe selection is bitwise
identical across ``n_jobs`` settings, and every experiment is keyed by
``ExperimentParams.seed``.  Both guarantees die the moment any code
path draws from OS entropy: an unseeded ``np.random.default_rng()`` or
the legacy module-level global (``np.random.rand`` and friends, whose
hidden state is shared across the whole process and every fork).

The rule flags:

* ``np.random.default_rng()`` called with **no seed argument** (any
  argument -- a seed, a ``SeedSequence``, another generator -- is
  accepted; threading ``None`` through a parameter is invisible to a
  static pass and remains the caller's responsibility);
* any use of the legacy module-level API (``np.random.seed``,
  ``np.random.rand``, ``np.random.RandomState``, ...), seeded or not.

Seeds must originate from ``ExperimentParams``/CLI ``--seed`` flags and
thread down as ``np.random.Generator`` instances.  Intentional entropy
(none exists in this repo today) needs ``# repro: noqa[RNG001]``.
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Iterator, Set

from repro.lint.base import LintRule, ModuleSource
from repro.lint.findings import Finding

#: Legacy module-level ``numpy.random`` API backed by the hidden global
#: ``RandomState`` (plus ``RandomState`` itself and its state plumbing).
LEGACY_GLOBAL_API: FrozenSet[str] = frozenset(
    {
        "RandomState",
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "get_state",
        "gumbel",
        "hypergeometric",
        "laplace",
        "logistic",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "normal",
        "pareto",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_integers",
        "random_sample",
        "ranf",
        "rayleigh",
        "sample",
        "seed",
        "set_state",
        "shuffle",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
    }
)


class _ImportAliases(ast.NodeVisitor):
    """Track how ``numpy``, ``numpy.random`` and ``default_rng`` are named."""

    def __init__(self) -> None:
        self.numpy: Set[str] = set()
        self.numpy_random: Set[str] = set()
        self.default_rng: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                self.numpy.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname is not None:
                    self.numpy_random.add(alias.asname)
                else:
                    self.numpy.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.numpy_random.add(alias.asname or alias.name)
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name == "default_rng":
                    self.default_rng.add(alias.asname or alias.name)


class UnseededRandomnessRule(LintRule):
    """RNG001: unseeded generators and the legacy global RNG."""

    rule_id: ClassVar[str] = "RNG001"
    summary: ClassVar[str] = (
        "randomness must thread from explicit seeds "
        "(ExperimentParams / CLI --seed)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        aliases = _ImportAliases()
        aliases.visit(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                finding = self._check_call(module, node, aliases)
                if finding is not None:
                    yield finding
            if isinstance(node, ast.Attribute):
                finding = self._check_attribute(module, node, aliases)
                if finding is not None:
                    yield finding

    # ------------------------------------------------------------------
    def _is_numpy_random(
        self, node: ast.expr, aliases: _ImportAliases
    ) -> bool:
        """Whether an expression denotes the ``numpy.random`` module."""
        if isinstance(node, ast.Name):
            return node.id in aliases.numpy_random
        if isinstance(node, ast.Attribute) and node.attr == "random":
            return (
                isinstance(node.value, ast.Name)
                and node.value.id in aliases.numpy
            )
        return False

    def _is_default_rng(
        self, func: ast.expr, aliases: _ImportAliases
    ) -> bool:
        if isinstance(func, ast.Name):
            return func.id in aliases.default_rng
        if isinstance(func, ast.Attribute) and func.attr == "default_rng":
            return self._is_numpy_random(func.value, aliases)
        return False

    def _check_call(
        self, module: ModuleSource, node: ast.Call, aliases: _ImportAliases
    ) -> Finding | None:
        if not self._is_default_rng(node.func, aliases):
            return None
        if node.args or node.keywords:
            return None
        return self.finding(
            module,
            node,
            "unseeded default_rng(); thread a seed or Generator from "
            "ExperimentParams / the CLI --seed flag",
        )

    def _check_attribute(
        self,
        module: ModuleSource,
        node: ast.Attribute,
        aliases: _ImportAliases,
    ) -> Finding | None:
        if node.attr not in LEGACY_GLOBAL_API:
            return None
        if not self._is_numpy_random(node.value, aliases):
            return None
        return self.finding(
            module,
            node,
            f"legacy global np.random.{node.attr}; use a seeded "
            "np.random.Generator threaded from the caller",
        )
