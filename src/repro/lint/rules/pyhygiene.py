"""PY001 -- Python hygiene traps that corrupt numerics silently.

Two classic traps, both of which have bitten probability code:

* **mutable default arguments** -- a ``def f(cache={})`` default is
  created once and shared across every call (and across every worker
  that inherits the module through fork), turning pure scoring
  functions stateful;
* **float equality** -- comparing floats to literals with ``==`` /
  ``!=`` conflates "mathematically equal" with "bit-identical", which
  fails open after any rounding.  Compare against a tolerance, use
  integer step counts, or -- for genuine exact sentinels such as
  "timeout disabled" stored as ``0.0`` -- suppress the finding with
  ``# repro: noqa[PY001]`` to document the intent.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, List, Optional

from repro.lint.base import LintRule, ModuleSource, iter_function_defs
from repro.lint.findings import Finding

_MUTABLE_CALLS = frozenset({"dict", "list", "set"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.Dict, ast.DictComp, ast.List, ast.ListComp, ast.Set, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return _is_float_literal(node.operand)
    return False


class PythonHygieneRule(LintRule):
    """PY001: mutable defaults and float ``==`` comparisons."""

    rule_id: ClassVar[str] = "PY001"
    summary: ClassVar[str] = (
        "no mutable default arguments; no float == / != comparisons"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        for function in iter_function_defs(module.tree):
            defaults: List[Optional[ast.expr]] = list(function.args.defaults)
            defaults.extend(function.args.kw_defaults)
            for default in defaults:
                if default is not None and _is_mutable_default(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {function.name}(); "
                        "default to None and build inside the body",
                    )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.finding(
                        module,
                        node,
                        "float equality comparison; use a tolerance, an "
                        "integer representation, or noqa an exact "
                        "sentinel",
                    )
                    break
