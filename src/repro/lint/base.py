"""Rule interface and shared AST helpers."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Dict, FrozenSet, Iterator, List, Optional, Union

#: Both flavours of function definition, handled uniformly by rules.
AnyFunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

from repro.lint.findings import Finding
from repro.lint.noqa import expand_suppressions, parse_noqa


@dataclass
class ModuleSource:
    """One parsed module handed to every rule.

    ``tree`` is ``None`` when the file failed to parse; the runner then
    emits a single ``SYN001`` finding and skips the rules.
    """

    path: str
    source: str
    tree: Optional[ast.Module]
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str) -> "ModuleSource":
        try:
            tree: Optional[ast.Module] = ast.parse(source, filename=path)
        except SyntaxError:
            tree = None
        return cls(
            path=path,
            source=source,
            tree=tree,
            suppressions=expand_suppressions(tree, parse_noqa(source)),
        )


class LintRule:
    """Base class: one stable rule ID plus an AST check.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check`, yielding :class:`~repro.lint.findings.Finding`
    records (noqa filtering happens in the runner, so rules stay pure).
    """

    rule_id: ClassVar[str] = "XXX000"
    summary: ClassVar[str] = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        """A finding of this rule anchored at ``node``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
        )


def call_endpoint(func: ast.expr) -> Optional[str]:
    """The terminal name of a call target: ``a.b.c(...)`` -> ``"c"``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` rendered as a string, or ``None`` for non-name chains."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def iter_function_defs(tree: ast.Module) -> Iterator[AnyFunctionDef]:
    """Every (sync or async) function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
