"""Per-statement ``# repro: noqa[RULE]`` suppression parsing.

Suppression is comment-based and statement-scoped, mirroring flake8's
``# noqa`` but namespaced so generic linters never eat (or emit) it:

* ``# repro: noqa`` suppresses every rule on its statement;
* ``# repro: noqa[RNG001]`` suppresses one rule;
* ``# repro: noqa[RNG001,PY001]`` suppresses several.

Comments are recovered with :mod:`tokenize` rather than regex-over-text
so string literals containing the magic phrase never suppress anything.

A comment anywhere inside a multi-line statement covers the statement's
**full physical span** (``lineno`` through ``end_lineno``), so a noqa on
the closing parenthesis of a call, on a decorator, or on a continuation
line suppresses findings anchored to any line of that statement.  For
compound statements (``def``/``class``/``if``/``for``/``with``/...)
only the *header* -- decorators plus the signature or condition, up to
the first body statement -- counts as the span: a noqa on a ``def`` line
never blankets the whole function body.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

#: Sentinel rule set meaning "suppress everything on this line".
ALL_RULES_SENTINEL: FrozenSet[str] = frozenset(["*"])

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?",
)


def parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule IDs suppressed on that line.

    A blanket ``# repro: noqa`` maps to :data:`ALL_RULES_SENTINEL`.
    Unreadable files (tokenisation errors) yield no suppressions; the
    parse error will surface as a finding instead.
    """
    suppressed: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        rules = match.group("rules")
        line = token.start[0]
        if rules is None:
            suppressed[line] = ALL_RULES_SENTINEL
            continue
        ids = frozenset(
            part.strip().upper() for part in rules.split(",") if part.strip()
        )
        # ``# repro: noqa[]`` names no rules; treat it as a blanket
        # suppression rather than silently suppressing nothing.
        suppressed[line] = ids or ALL_RULES_SENTINEL
    return suppressed


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """``(start, end)`` line spans of every statement, headers only.

    Simple statements span ``lineno..end_lineno``.  Compound statements
    (anything carrying a ``body`` block) contribute their *header* span:
    from the first decorator line to the line before the first body
    statement, so the body's own statements -- which appear separately
    -- are never blanketed by a comment on the header.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            start = min(start, decorators[0].lineno)
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = getattr(node, "end_lineno", None) or start
        spans.append((start, end))
    return spans


def _enclosing_span(
    spans: List[Tuple[int, int]], line: int
) -> Optional[Tuple[int, int]]:
    """The smallest statement span containing ``line``, if any."""
    best: Optional[Tuple[int, int]] = None
    for start, end in spans:
        if not (start <= line <= end):
            continue
        if best is None or (end - start) < (best[1] - best[0]):
            best = (start, end)
    return best


def expand_suppressions(
    tree: Optional[ast.Module], suppressions: Dict[int, FrozenSet[str]]
) -> Dict[int, FrozenSet[str]]:
    """Extend each suppression to its statement's full physical span.

    A ``# repro: noqa[...]`` on any line of a multi-line statement (a
    call spanning several lines, a decorator, a parenthesised
    continuation) suppresses the named rules on **every** line of that
    statement, so findings anchored to the statement's first line are
    caught by a comment on its last.  Lines outside any statement keep
    their line-scoped suppression.  With no tree (unparsable file) the
    raw map is returned unchanged.
    """
    if tree is None or not suppressions:
        return suppressions
    spans = _statement_spans(tree)
    expanded: Dict[int, FrozenSet[str]] = {}

    def _merge(line: int, rules: FrozenSet[str]) -> None:
        present = expanded.get(line)
        if present is None:
            expanded[line] = rules
        elif present is ALL_RULES_SENTINEL or rules is ALL_RULES_SENTINEL:
            expanded[line] = ALL_RULES_SENTINEL
        else:
            expanded[line] = present | rules

    for line, rules in suppressions.items():
        span = _enclosing_span(spans, line)
        covered: Iterator[int] = (
            iter((line,)) if span is None else iter(range(span[0], span[1] + 1))
        )
        for target in covered:
            _merge(target, rules)
    return expanded


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], line: int, rule: str
) -> bool:
    """Whether ``rule`` is suppressed on ``line``."""
    rules = suppressions.get(line)
    if rules is None:
        return False
    return rules is ALL_RULES_SENTINEL or "*" in rules or rule.upper() in rules
