"""Per-line ``# repro: noqa[RULE]`` suppression parsing.

Suppression is comment-based and line-scoped, mirroring flake8's
``# noqa`` but namespaced so generic linters never eat (or emit) it:

* ``# repro: noqa`` suppresses every rule on its line;
* ``# repro: noqa[RNG001]`` suppresses one rule;
* ``# repro: noqa[RNG001,PY001]`` suppresses several.

Comments are recovered with :mod:`tokenize` rather than regex-over-text
so string literals containing the magic phrase never suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

#: Sentinel rule set meaning "suppress everything on this line".
ALL_RULES_SENTINEL: FrozenSet[str] = frozenset(["*"])

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?",
)


def parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule IDs suppressed on that line.

    A blanket ``# repro: noqa`` maps to :data:`ALL_RULES_SENTINEL`.
    Unreadable files (tokenisation errors) yield no suppressions; the
    parse error will surface as a finding instead.
    """
    suppressed: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        rules = match.group("rules")
        line = token.start[0]
        if rules is None:
            suppressed[line] = ALL_RULES_SENTINEL
            continue
        ids = frozenset(
            part.strip().upper() for part in rules.split(",") if part.strip()
        )
        # ``# repro: noqa[]`` names no rules; treat it as a blanket
        # suppression rather than silently suppressing nothing.
        suppressed[line] = ids or ALL_RULES_SENTINEL
    return suppressed


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], line: int, rule: str
) -> bool:
    """Whether ``rule`` is suppressed on ``line``."""
    rules = suppressions.get(line)
    if rules is None:
        return False
    return rules is ALL_RULES_SENTINEL or "*" in rules or rule.upper() in rules
