"""Defender-side leakage analysis of rule structures.

Section VII-B3 proposes using the attack model itself as a design tool:
"our Markov model can serve as a tool to measure the information
leakage of the rule structure".  This module provides that tool at the
policy level:

* :func:`leakage_map` -- for every flow in the universe (as a potential
  reconnaissance target), the best single-probe information gain an
  attacker could extract.  The defender reads this as a heat map of
  which communications the rule structure exposes.
* :func:`worst_case_leakage` -- the maximum over targets, i.e. the rule
  structure's leakage figure-of-merit.
* :func:`compare_structures` -- rows comparing several candidate
  structures (e.g. the original, a microflow split, a coarse merge) on
  per-target and worst-case leakage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.compact_model import CompactModel
from repro.core.inference import ReconInference
from repro.core.selection import best_single_probe
from repro.flows.policy import Policy
from repro.flows.universe import FlowUniverse


def leakage_map(
    policy: Policy,
    universe: FlowUniverse,
    delta: float,
    cache_size: int,
    window_steps: int,
    candidates: Optional[Sequence[int]] = None,
    targets: Optional[Sequence[int]] = None,
) -> Dict[int, float]:
    """Best-probe information gain per potential target flow.

    The compact model is built once and shared; one inference (two
    ``T``-step evolutions) runs per target.  Targets default to every
    flow the policy covers -- uncovered flows leave no cache footprint
    and leak nothing through this channel.
    """
    model = CompactModel(policy, universe, delta, cache_size)
    if targets is None:
        targets = sorted(policy.covered_flows())
    leaks: Dict[int, float] = {}
    dist_full = model.distribution_after(window_steps)
    for target in targets:
        inference = ReconInference(
            model, target, window_steps, precomputed_full=dist_full
        )
        leaks[int(target)] = best_single_probe(inference, candidates=candidates).gain
    return leaks


def worst_case_leakage(
    policy: Policy,
    universe: FlowUniverse,
    delta: float,
    cache_size: int,
    window_steps: int,
    candidates: Optional[Sequence[int]] = None,
) -> Tuple[int, float]:
    """The most exposed target flow and its leakage, in bits."""
    leaks = leakage_map(
        policy, universe, delta, cache_size, window_steps, candidates
    )
    if not leaks:
        return (-1, 0.0)
    target = max(leaks, key=leaks.get)
    return (target, leaks[target])


def compare_structures(
    structures: Dict[str, Policy],
    universe: FlowUniverse,
    delta: float,
    cache_size: int,
    window_steps: int,
    candidates: Optional[Sequence[int]] = None,
) -> List[Dict[str, object]]:
    """Leakage comparison rows for alternative rule structures.

    Each row reports the structure's rule count, its worst-case target
    and leakage, and the mean leakage across covered flows -- the
    numbers a defender trades off against forwarding granularity when
    applying the Section VII-B3 transformation.
    """
    rows: List[Dict[str, object]] = []
    for name, policy in structures.items():
        leaks = leakage_map(
            policy, universe, delta, cache_size, window_steps, candidates
        )
        if leaks:
            worst_target = max(leaks, key=leaks.get)
            worst = leaks[worst_target]
            mean = sum(leaks.values()) / len(leaks)
        else:  # a policy covering nothing leaks nothing
            worst_target, worst, mean = -1, 0.0, 0.0
        rows.append(
            {
                "structure": name,
                "n_rules": len(policy),
                "worst_target": worst_target,
                "worst_leakage_bits": worst,
                "mean_leakage_bits": mean,
            }
        )
    return rows
