"""Empirical CDF helpers (Figure 6b).

Figure 6b plots the cumulative distribution, across network
configurations, of the additive accuracy improvement the model attacker
achieves over the naive attacker.  :func:`empirical_cdf` produces the
step-function points; :func:`cdf_at` evaluates the fraction at a value.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def empirical_cdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Step points ``(x, F(x))`` of the empirical CDF.

    One point per distinct sample value, with ``F`` evaluated inclusively
    (``F(x) = P(X <= x)``).
    """
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


def cdf_at(samples: Sequence[float], x: float) -> float:
    """``P(X <= x)`` under the empirical distribution."""
    if not samples:
        raise ValueError("no samples")
    return sum(1 for s in samples if s <= x) / len(samples)


def survival_at(samples: Sequence[float], x: float) -> float:
    """``P(X >= x)`` under the empirical distribution.

    The paper's Figure 6b readings are of this form ("a 15% or larger
    improvement for about 20% of network configurations").
    """
    if not samples:
        raise ValueError("no samples")
    return sum(1 for s in samples if s >= x) / len(samples)


def quantile(samples: Sequence[float], q: float) -> float:
    """Inclusive empirical quantile (nearest-rank)."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(samples)
    # ceil(q * n), clamped to rank >= 1 (which also covers q = 0).
    rank = max(1, int(-(-q * len(ordered) // 1)))
    return ordered[rank - 1]
