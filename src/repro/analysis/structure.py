"""Structural diagnostics of rule sets vs attack performance.

The constrained attacker's fate (Figure 7) hinges on *rule sharing*:
when the target flow's covering rules also cover other flows, a sibling
probe carries the same cache signal as probing the target itself and
the constrained attacker matches the naive one; when the target's best
evidence sits in an exact (unshared) rule, every admissible probe is
blind to it and the constrained attacker falls back to the prior.
These helpers quantify that structure so experiment outputs can be
grouped and explained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.flows.policy import Policy


@dataclass(frozen=True)
class TargetStructure:
    """How a target flow sits inside a rule structure."""

    target_flow: int
    covering_rules: FrozenSet[int]
    #: Flows (other than the target) sharing at least one covering rule.
    sibling_flows: FrozenSet[int]
    #: Rules covering the target and nothing else (exact/microflow rules).
    exclusive_rules: FrozenSet[int]

    @property
    def has_siblings(self) -> bool:
        """Whether any admissible probe shares a rule with the target."""
        return bool(self.sibling_flows)

    @property
    def install_rule_is_exclusive(self) -> bool:
        """Whether the rule a target miss installs covers only the target.

        When true, the strongest cache evidence about the target is
        invisible to every sibling probe -- the regime where the
        constrained attacker cannot match the naive one.
        """
        if not self.covering_rules:
            return False
        install = min(self.covering_rules)  # highest priority rank
        return install in self.exclusive_rules


def target_structure(policy: Policy, target_flow: int) -> TargetStructure:
    """Compute the sharing structure around one target flow."""
    covering = frozenset(policy.covering(target_flow))
    siblings: Set[int] = set()
    exclusive: Set[int] = set()
    for rule_index in sorted(covering):
        others = policy[rule_index].flows - {target_flow}
        if others:
            siblings |= others
        else:
            exclusive.add(rule_index)
    return TargetStructure(
        target_flow=target_flow,
        covering_rules=covering,
        sibling_flows=frozenset(siblings),
        exclusive_rules=frozenset(exclusive),
    )


def sharing_census(policy: Policy) -> Dict[str, List[int]]:
    """Partition covered flows by their sharing structure.

    Returns ``{"shared": [...], "exclusive_install": [...]}`` -- flows
    whose install rule is shared vs exclusive.  Experiment reports use
    this to split Figure-7-style results into the regime where the
    constrained attacker can work and the regime where it cannot.
    """
    shared: List[int] = []
    exclusive: List[int] = []
    for flow in sorted(policy.covered_flows()):
        structure = target_structure(policy, flow)
        if structure.install_rule_is_exclusive:
            exclusive.append(flow)
        else:
            shared.append(flow)
    return {"shared": shared, "exclusive_install": exclusive}
