"""State-space sizes of the two models (Sections IV-A2 and IV-B).

The basic model's state count is the paper's closed form

    sum over Rules' subset of Rules, |Rules'| <= n of
        |Rules'|! * prod_{rule_j in Rules'} (t_j + 1)

(each cached subset can appear in any recency order, and each cached
rule carries a remaining-time counter in ``0..t_j``).  The compact
model's count is ``sum_{k=1..n} C(|Rules|, k)`` non-empty states (the
implementation also keeps the empty cache as the start state).

Note on the paper's worked example: for ``|Rules| = 10``, ``t_j = 100``,
``n = 8`` the paper quotes "about 5.9 x 10^7" states, but the printed
formula evaluates to about ``2.0 x 10^22`` (the ``k = 8`` term alone is
``C(10,8) * 8! * 101^8``).  We implement the formula as printed and
record the discrepancy in EXPERIMENTS.md; either way the qualitative
point -- the basic model is astronomically larger than the compact
model's 2510 states at the experiment's parameters -- stands.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, List, Sequence, Union


def basic_state_count(
    timeouts: Sequence[int], cache_size: int
) -> int:
    """Exact basic-model state count for per-rule timeouts.

    ``timeouts[j]`` is ``t_j`` in steps; subsets of size up to
    ``cache_size`` are enumerated, each contributing
    ``k! * prod (t_j + 1)``.
    """
    if cache_size < 0:
        raise ValueError("cache_size must be non-negative")
    n_rules = len(timeouts)
    total = 0
    for size in range(0, min(cache_size, n_rules) + 1):
        factorial = math.factorial(size)
        for subset in combinations(range(n_rules), size):
            product = 1
            for rule in subset:
                product *= timeouts[rule] + 1
            total += factorial * product
    return total


def basic_state_count_uniform(
    n_rules: int, timeout: int, cache_size: int
) -> int:
    """Closed form for identical timeouts (no subset enumeration)."""
    if cache_size < 0 or n_rules < 0 or timeout < 0:
        raise ValueError("arguments must be non-negative")
    total = 0
    for size in range(0, min(cache_size, n_rules) + 1):
        total += (
            math.comb(n_rules, size)
            * math.factorial(size)
            * (timeout + 1) ** size
        )
    return total


def compact_state_count(
    n_rules: int, cache_size: int, include_empty: bool = False
) -> int:
    """Compact-model state count ``sum_{k=1..n} C(|Rules|, k)``.

    ``include_empty=True`` adds the empty-cache start state that the
    implementation carries (the paper's count starts at ``k = 1``).
    """
    if cache_size < 0 or n_rules < 0:
        raise ValueError("arguments must be non-negative")
    total = sum(
        math.comb(n_rules, size)
        for size in range(1, min(cache_size, n_rules) + 1)
    )
    return total + (1 if include_empty else 0)


def state_count_table(
    n_rules: int, timeout: int, cache_sizes: Sequence[int]
) -> List[Dict[str, Union[int, float]]]:
    """Rows comparing basic vs compact counts across cache sizes."""
    rows: List[Dict[str, Union[int, float]]] = []
    for cache_size in cache_sizes:
        basic = basic_state_count_uniform(n_rules, timeout, cache_size)
        compact = compact_state_count(n_rules, cache_size)
        rows.append(
            {
                "cache_size": cache_size,
                "basic": basic,
                "compact": compact,
                "ratio": basic / compact if compact else float("inf"),
            }
        )
    return rows
