"""Metrics, distribution helpers, and state-space arithmetic."""

from repro.analysis.metrics import (
    Accuracy,
    BinnedSeries,
    accuracy_from_pairs,
    confusion_counts,
    wilson_interval,
)
from repro.analysis.cdf import empirical_cdf, cdf_at
from repro.analysis.statecount import (
    basic_state_count,
    compact_state_count,
    state_count_table,
)
from repro.analysis.leakage import (
    compare_structures,
    leakage_map,
    worst_case_leakage,
)
from repro.analysis.roc import best_threshold, perfect_band, roc_points

__all__ = [
    "compare_structures",
    "leakage_map",
    "worst_case_leakage",
    "best_threshold",
    "perfect_band",
    "roc_points",
    "Accuracy",
    "BinnedSeries",
    "accuracy_from_pairs",
    "confusion_counts",
    "wilson_interval",
    "empirical_cdf",
    "cdf_at",
    "basic_state_count",
    "compact_state_count",
    "state_count_table",
]
