"""Accuracy bookkeeping for attack evaluations.

The paper's headline metric is *average accuracy*: "the ratio of the
total number of true positive and true negative cases to the overall
number of trials" (Section VI-B).  These helpers compute it, its
confusion-matrix decomposition, confidence intervals, and the binned
series underlying Figures 6a/7a/7b.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def confusion_counts(
    pairs: Iterable[Tuple[int, int]]
) -> Dict[str, int]:
    """Counts of TP/TN/FP/FN from ``(truth, decision)`` pairs."""
    counts = {"tp": 0, "tn": 0, "fp": 0, "fn": 0}
    for truth, decision in pairs:
        if truth not in (0, 1) or decision not in (0, 1):
            raise ValueError(f"labels must be 0/1, got {(truth, decision)}")
        if truth == 1 and decision == 1:
            counts["tp"] += 1
        elif truth == 0 and decision == 0:
            counts["tn"] += 1
        elif truth == 0 and decision == 1:
            counts["fp"] += 1
        else:
            counts["fn"] += 1
    return counts


@dataclass(frozen=True)
class Accuracy:
    """Average accuracy with its confusion decomposition."""

    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def trials(self) -> int:
        """Total number of trials."""
        return self.tp + self.tn + self.fp + self.fn

    @property
    def value(self) -> float:
        """The paper's average accuracy: (TP + TN) / trials."""
        if self.trials == 0:
            raise ValueError("no trials recorded")
        return (self.tp + self.tn) / self.trials

    @property
    def true_positive_rate(self) -> Optional[float]:
        """TPR (recall), or ``None`` when no positives occurred."""
        positives = self.tp + self.fn
        return self.tp / positives if positives else None

    @property
    def true_negative_rate(self) -> Optional[float]:
        """TNR (specificity), or ``None`` when no negatives occurred."""
        negatives = self.tn + self.fp
        return self.tn / negatives if negatives else None

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "Accuracy":
        """Build from ``(truth, decision)`` pairs."""
        counts = confusion_counts(pairs)
        return cls(**counts)


def accuracy_from_pairs(pairs: Iterable[Tuple[int, int]]) -> float:
    """Shortcut: average accuracy of ``(truth, decision)`` pairs."""
    return Accuracy.from_pairs(pairs).value


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    phat = successes / trials
    denom = 1 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt(
        (phat * (1 - phat) + z * z / (4 * trials)) / trials
    )
    # Clamp away float residue (e.g. successes=0 can yield -2e-17).
    low = max(0.0, (centre - margin) / denom)
    high = min(1.0, (centre + margin) / denom)
    return (low, high)


@dataclass
class BinnedSeries:
    """Values grouped into labelled bins (Figure 6a/7b x-axes).

    ``edges`` are the bin boundaries; a value ``v`` lands in bin ``i``
    when ``edges[i] <= v < edges[i+1]`` (the last bin is closed above).
    """

    edges: Sequence[float]
    values: List[List[float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.edges) < 2:
            raise ValueError("need at least two bin edges")
        if sorted(self.edges) != list(self.edges):
            raise ValueError("bin edges must be increasing")
        if not self.values:
            self.values = [[] for _ in range(len(self.edges) - 1)]

    @property
    def n_bins(self) -> int:
        """Number of bins."""
        return len(self.edges) - 1

    def bin_of(self, x: float) -> Optional[int]:
        """Index of the bin containing ``x``, or ``None`` if outside."""
        if x < self.edges[0] or x > self.edges[-1]:
            return None
        for i in range(self.n_bins):
            if self.edges[i] <= x < self.edges[i + 1]:
                return i
        return self.n_bins - 1  # x == last edge

    def add(self, x: float, value: float) -> bool:
        """Record ``value`` at position ``x``; False if out of range."""
        index = self.bin_of(x)
        if index is None:
            return False
        self.values[index].append(value)
        return True

    def means(self) -> List[Optional[float]]:
        """Per-bin means (``None`` for empty bins)."""
        return [
            sum(vals) / len(vals) if vals else None for vals in self.values
        ]

    def counts(self) -> List[int]:
        """Per-bin sample counts."""
        return [len(vals) for vals in self.values]

    def centers(self) -> List[float]:
        """Bin midpoints."""
        return [
            (self.edges[i] + self.edges[i + 1]) / 2 for i in range(self.n_bins)
        ]
