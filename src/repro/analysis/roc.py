"""ROC analysis of the timing classifier's threshold.

The attacker turns a measured response time into a hit/miss bit by
thresholding ("e.g., 1 ms", Section VI-A).  These helpers quantify how
forgiving that choice is: given samples of the two latency populations,
they sweep thresholds, compute the hit/miss confusion rates, and locate
the threshold band within which classification stays essentially
perfect -- the quantitative backing for the paper's remark that the two
cases are "easily distinguishable".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class ThresholdPoint:
    """Classifier performance at one threshold."""

    threshold: float
    true_hit_rate: float   # hits classified fast
    false_hit_rate: float  # misses classified fast
    accuracy: float


def roc_points(
    hit_rtts: Sequence[float],
    miss_rtts: Sequence[float],
    thresholds: Sequence[float],
) -> List[ThresholdPoint]:
    """Classifier metrics across candidate thresholds.

    ``hit_rtts`` are response times with a covering rule cached (should
    fall *below* a good threshold), ``miss_rtts`` the setup-path times.
    """
    if not hit_rtts or not miss_rtts:
        raise ValueError("need samples from both populations")
    points: List[ThresholdPoint] = []
    n_hits, n_misses = len(hit_rtts), len(miss_rtts)
    for threshold in thresholds:
        true_hits = sum(1 for rtt in hit_rtts if rtt < threshold)
        false_hits = sum(1 for rtt in miss_rtts if rtt < threshold)
        accuracy = (true_hits + (n_misses - false_hits)) / (
            n_hits + n_misses
        )
        points.append(
            ThresholdPoint(
                threshold=float(threshold),
                true_hit_rate=true_hits / n_hits,
                false_hit_rate=false_hits / n_misses,
                accuracy=accuracy,
            )
        )
    return points


def auc(points: Sequence[ThresholdPoint]) -> float:
    """Area under the ROC curve traced by these threshold points.

    Trapezoidal rule over ``(false_hit_rate, true_hit_rate)`` pairs,
    anchored at ``(0, 0)`` and ``(1, 1)``.  The pairs are sorted
    internally, so the result is invariant under any permutation of the
    threshold sweep.
    """
    if not points:
        raise ValueError("need at least one threshold point")
    pairs = sorted(
        [(p.false_hit_rate, p.true_hit_rate) for p in points]
        + [(0.0, 0.0), (1.0, 1.0)]
    )
    area = 0.0
    for (x0, y0), (x1, y1) in zip(pairs, pairs[1:]):
        area += (x1 - x0) * (y0 + y1) / 2.0
    return area


def score_auc(
    positives: Sequence[float], negatives: Sequence[float]
) -> float:
    """Exact (rank/Mann-Whitney) AUC of a "higher score = positive" rule.

    The probability that a uniformly drawn positive outscores a
    uniformly drawn negative, counting ties as half.  Either population
    empty gives the uninformative 0.5 -- the grid uses this for cells
    where a defense starves one class entirely (e.g. proactive rules
    leave the detector no packet-ins to rank).
    """
    if not positives or not negatives:
        return 0.5
    wins = 0.0
    for pos in positives:
        for neg in negatives:
            if pos > neg:
                wins += 1.0
            elif pos == neg:
                wins += 0.5
    return wins / (len(positives) * len(negatives))


def best_threshold(
    hit_rtts: Sequence[float],
    miss_rtts: Sequence[float],
    n_candidates: int = 200,
) -> ThresholdPoint:
    """The accuracy-maximising threshold over a geometric sweep."""
    low = min(min(hit_rtts), min(miss_rtts))
    high = max(max(hit_rtts), max(miss_rtts))
    if low <= 0:
        raise ValueError("response times must be positive")
    ratio = (high / low) ** (1.0 / max(n_candidates - 1, 1))
    thresholds = [low * ratio**i for i in range(n_candidates)]
    points = roc_points(hit_rtts, miss_rtts, thresholds)
    return max(points, key=lambda p: p.accuracy)


def perfect_band(
    hit_rtts: Sequence[float], miss_rtts: Sequence[float]
) -> Tuple[float, float]:
    """The open interval of thresholds with zero classification error.

    Empty populations overlap gives a zero-width band ``(t, t)``.  For
    the paper's measurements the band spans roughly the maximum hit time
    to the minimum miss time -- the 1 ms choice sits comfortably inside.
    """
    low = max(hit_rtts)
    high = min(miss_rtts)
    if high < low:
        midpoint = (low + high) / 2
        return (midpoint, midpoint)
    return (low, high)
