"""One-call reproduction: regenerate every paper artifact in sequence.

``reproduce_all`` runs the complete Section VI evaluation — both
figures, the timing characterisation, and the state-count comparison —
at a chosen scale, renders every artifact in the paper's terms, and
optionally archives the figure runs as JSON.  It is the programmatic
equivalent of running the whole benchmark suite, packaged for scripts
and notebooks::

    from repro.experiments.reproduce import reproduce_all
    report = reproduce_all(scale=0.1, seed=7)
    print(report.render())
    report.save("runs/2026-07-05")
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.deprecation import keyword_only

if TYPE_CHECKING:
    from repro.apispec import JobSpec
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.faults import FaultPlan
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.obs import get_instrumentation
from repro.experiments.report import (
    format_cdf,
    format_series,
    format_table,
    paper_vs_measured,
)
from repro.experiments.tables import statecount_report, timing_table


@dataclass
class ReproductionReport:
    """All regenerated artifacts plus rendering/persistence helpers."""

    fig6: Fig6Result
    fig7: Fig7Result
    timing: Dict[str, object]
    statecount: Dict[str, object]
    elapsed_seconds: Dict[str, float] = field(default_factory=dict)
    #: The job the report was produced from (None on legacy-path runs
    #: predating the unified job API).
    job: Optional["JobSpec"] = None

    def render(self) -> str:
        """The full plain-text report, artifact by artifact."""
        sections: List[str] = []

        sections.append(
            format_series(
                "P(absent)",
                self.fig6.bin_centers(),
                self.fig6.accuracy_series(),
                title="Figure 6a: accuracy vs P(absence), model vs naive",
            )
        )
        sections.append(
            format_cdf(
                self.fig6.improvement_cdf(),
                title="Figure 6b: CDF of improvement over naive",
            )
        )
        headline = self.fig6.headline()
        sections.append(
            format_table(
                ["metric", "value"],
                [[key, value] for key, value in headline.items()],
                title="Headline statistics",
            )
        )

        fig7a = self.fig7.accuracy_by_covering_count()
        sections.append(
            format_table(
                ["#covering rules", "constrained", "naive", "random", "configs"],
                [
                    [count, row["constrained"], row["naive"], row["random"],
                     int(row["n_configs"])]
                    for count, row in fig7a.items()
                ],
                title="Figure 7a: accuracy vs rules covering the target",
            )
        )
        sections.append(
            format_series(
                "P(absent)",
                self.fig7.bin_centers(),
                self.fig7.accuracy_series(),
                title="Figure 7b: accuracy vs P(absence), constrained",
            )
        )

        hit, miss = self.timing["hit"], self.timing["miss"]
        sections.append(
            paper_vs_measured(
                [
                    ("hit mean (ms)", hit.paper_mean * 1e3, hit.mean * 1e3),
                    ("hit std (ms)", hit.paper_std * 1e3, hit.std * 1e3),
                    ("miss mean (ms)", miss.paper_mean * 1e3, miss.mean * 1e3),
                    ("miss std (ms)", miss.paper_std * 1e3, miss.std * 1e3),
                ],
                title="Section VI-A timing characterisation",
            )
        )

        exp = self.statecount["experiment"]
        sections.append(
            format_table(
                ["setting", "basic", "compact"],
                [
                    [
                        "evaluation parameters",
                        float(exp["basic"]),
                        float(exp["compact"]),
                    ]
                ],
                title="State-space sizes",
            )
        )

        if self.elapsed_seconds:
            sections.append(
                format_table(
                    ["stage", "seconds"],
                    [[k, v] for k, v in self.elapsed_seconds.items()],
                    title="Wall-clock per stage",
                )
            )
        return "\n\n".join(sections)

    def save(self, directory: Union[str, Path]) -> Path:
        """Archive the figure runs and the text report under a directory."""
        from repro.experiments.persist import save_result

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        fig6_spec = fig7_spec = None
        if self.job is not None:
            fig6_spec = replace(self.job, experiment="fig6")
            fig7_spec = replace(self.job, experiment="fig7")
        save_result(self.fig6, directory / "fig6.json", spec=fig6_spec)
        save_result(self.fig7, directory / "fig7.json", spec=fig7_spec)
        (directory / "report.txt").write_text(self.render())
        return directory


#: Sentinel distinguishing "not passed" from any real value, so the
#: legacy keyword form can be detected (and rejected next to a spec).
_UNSET: Any = object()


@keyword_only
def reproduce_all(
    spec: Optional["JobSpec"] = None,
    *,
    scale: float = _UNSET,
    seed: Optional[int] = _UNSET,
    trial_mode: str = _UNSET,
    timing_samples: int = 300,
    fault_plan: Optional[FaultPlan] = _UNSET,
    probe_retries: int = _UNSET,
    trial_jobs: int = _UNSET,
) -> ReproductionReport:
    """Regenerate every artifact at a fraction of the paper's size.

    The canonical input is a :class:`~repro.apispec.JobSpec` (its
    ``scale``/``seed``/``trial_mode``/``fault_plan``/``probe_retries``/
    ``trial_jobs`` fields drive the run; ``scale=None`` means the
    default 0.1).  The legacy keyword form still works for one release
    and emits a ``DeprecationWarning``; its defaults (``seed=2017``,
    ``trial_mode="table"``) are unchanged.

    ``scale=1.0`` is the paper's 100 configurations x 100 trials (hours
    on one core; the sampling screens dominate).  ``fault_plan`` /
    ``probe_retries`` thread seeded fault injection through every trial
    (docs/FAULTS.md); the defaults reproduce the clean-channel paper
    setting bit-for-bit.  ``trial_jobs`` > 1 fans the screening and
    trial loops across a fork pool without changing a single number
    (EXPERIMENTS.md, "Parallel execution").
    """
    from repro.apispec import JobSpec

    legacy = {
        name: value
        for name, value in (
            ("scale", scale),
            ("seed", seed),
            ("trial_mode", trial_mode),
            ("fault_plan", fault_plan),
            ("probe_retries", probe_retries),
            ("trial_jobs", trial_jobs),
        )
        if value is not _UNSET
    }
    if spec is None:
        warnings.warn(
            "reproduce_all: the keyword form is deprecated and will stop "
            "working in a future release; pass a repro.apispec.JobSpec "
            "(experiment='reproduce')",
            DeprecationWarning,
            stacklevel=3,
        )
        spec = JobSpec(
            experiment="reproduce",
            scale=legacy.get("scale", 0.1),
            seed=legacy.get("seed", 2017),
            trial_mode=legacy.get("trial_mode", "table"),
            fault_plan=legacy.get("fault_plan"),
            probe_retries=legacy.get("probe_retries", 0),
            trial_jobs=legacy.get("trial_jobs", 1),
        )
    else:
        if not isinstance(spec, JobSpec):
            raise TypeError(
                "reproduce_all: expected a JobSpec, "
                f"got {type(spec).__name__}"
            )
        if legacy:
            raise TypeError(
                "reproduce_all: pass everything on the JobSpec; got both "
                f"a spec and legacy keyword(s) {', '.join(sorted(legacy))}"
            )
    run_scale = spec.scale if spec.scale is not None else 0.1
    run_spec = replace(
        spec,
        n_configs=max(2, round(100 * run_scale)),
        n_trials=max(10, round(100 * run_scale)),
    )
    elapsed: Dict[str, float] = {}
    obs = get_instrumentation()

    start = time.perf_counter()
    with obs.span("reproduce.fig6"), obs.phase("reproduce.fig6"):
        fig6 = run_fig6(replace(run_spec, experiment="fig6"))
    elapsed["fig6"] = time.perf_counter() - start

    start = time.perf_counter()
    with obs.span("reproduce.fig7"), obs.phase("reproduce.fig7"):
        fig7 = run_fig7(replace(run_spec, experiment="fig7"))
    elapsed["fig7"] = time.perf_counter() - start

    start = time.perf_counter()
    with obs.span("reproduce.timing"), obs.phase("reproduce.timing"):
        timing = timing_table(n_samples=timing_samples, seed=spec.seed or 0)
    elapsed["timing"] = time.perf_counter() - start

    statecount = statecount_report()

    return ReproductionReport(
        fig6=fig6,
        fig7=fig7,
        timing=timing,
        statecount=statecount,
        elapsed_seconds=elapsed,
        job=spec,
    )
