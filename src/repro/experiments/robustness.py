"""Robustness sweep: attacker accuracy as a function of fault rate.

The paper's evaluation (Figure 6) assumes a clean control channel.
This sweep measures how the reconnaissance accuracy of each attacker
degrades when the simulated network misbehaves: one set of screened
configurations is sampled **once**, then re-evaluated at each fault
rate, so the curves differ only in the injected faults (and the
attacker's retry budget), never in the sampled worlds.

Screening matches Figure 7 (viability only), not Figure 6's extra
"optimal probe differs from target" restriction: that restriction
accepts well under 1% of sampled configurations even in the viable
absence band, and the sweep compares *degradation*, which does not
need the case split.  Pass ``require_optimal_differs=True`` to get the
Figure 6 population anyway.  When ``params`` still carry the full
default absence range, it is narrowed to the viable band (the screens
accept essentially nothing below 0.35; see EXPERIMENTS.md).

Expected shape (EXPERIMENTS.md): the *probe's information* decays with
the fault rate while the model attacker stays at or above the naive
attacker (its decision tree marginalises unanswered probes instead of
assuming a miss).  Note the floor: an unanswered probe degrades the
attacker to prior-MAP guessing, and in the viable absence band the
prior alone is already ~0.7 accurate -- so accuracy falls toward the
prior-MAP floor as the rate approaches 1, not toward the random
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.deprecation import keyword_only
from repro.experiments.harness import ConfigResult, sample_screened_harnesses
from repro.experiments.parallel import ExecutionStats
from repro.experiments.params import ExperimentParams
from repro.faults import FAULT_KINDS, FaultPlan
from repro.obs import Instrumentation, get_instrumentation, use_instrumentation

if TYPE_CHECKING:
    from repro.apispec import JobSpec

#: Loss kinds swept by default (the two that directly starve probes).
DEFAULT_KINDS: Tuple[str, ...] = ("packet_in_loss", "probe_reply_loss")

#: Default fault-rate grid.
DEFAULT_RATES: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4)

#: Absence band substituted for the full default range; mirrors the
#: union of :data:`~repro.experiments.params.VIABLE_FIG6_BINS`.
_VIABLE_ABSENCE: Tuple[float, float] = (0.35, 0.95)

#: Metric names snapshotted per rate from the inner instrumentation.
_SWEEP_COUNTERS: Tuple[str, ...] = tuple(
    f"faults.injected.{kind}" for kind in FAULT_KINDS
) + (
    "attacker.probe.retries",
    "attacker.probe.unobserved",
    "engine.pool.fallbacks",
    "experiment.pool.fallbacks",
)


@dataclass
class RobustnessResult:
    """Accuracy-vs-fault-rate curves over one fixed configuration set."""

    rates: Tuple[float, ...]
    kinds: Tuple[str, ...]
    probe_retries: int
    results_per_rate: List[List[ConfigResult]] = field(repr=False)
    #: Per-rate fault/retry counter totals (``faults.injected.*`` etc.).
    counters_per_rate: List[Dict[str, int]] = field(default_factory=list)
    #: Fan-out accounting for the run (None on pre-parallel results).
    execution: Optional[ExecutionStats] = field(default=None, repr=False)

    def accuracy_series(self) -> Dict[str, List[Optional[float]]]:
        """Per-rate mean accuracy for every attacker in the lineup."""
        names = sorted(
            {
                name
                for bucket in self.results_per_rate
                for result in bucket
                for name in result.accuracies
            }
        )
        series: Dict[str, List[Optional[float]]] = {n: [] for n in names}
        for bucket in self.results_per_rate:
            for name in names:
                values = [
                    r.accuracies[name] for r in bucket if name in r.accuracies
                ]
                series[name].append(
                    sum(values) / len(values) if values else None
                )
        return series

    def faults_injected(self) -> List[int]:
        """Total injected faults at each rate (all kinds pooled)."""
        return [
            sum(
                value
                for name, value in counters.items()
                if name.startswith("faults.injected.")
            )
            for counters in self.counters_per_rate
        ]

    def summary(self) -> Dict[str, float]:
        """Headline numbers: endpoint accuracies and degradation."""
        series = self.accuracy_series()

        def _at(name: str, index: int) -> float:
            values = series.get(name, [])
            value = values[index] if values else None
            return float(value) if value is not None else float("nan")

        return {
            "n_rates": float(len(self.rates)),
            "n_configs": float(
                len(self.results_per_rate[0]) if self.results_per_rate else 0
            ),
            "probe_retries": float(self.probe_retries),
            "model_accuracy_clean": _at("model", 0),
            "naive_accuracy_clean": _at("naive", 0),
            "model_accuracy_worst": _at("model", len(self.rates) - 1),
            "naive_accuracy_worst": _at("naive", len(self.rates) - 1),
            "model_minus_naive_clean": _at("model", 0) - _at("naive", 0),
            "total_faults_injected": float(sum(self.faults_injected())),
        }


def _snapshot_counters(instrumentation: Instrumentation) -> Dict[str, int]:
    """Totals of the sweep counters accumulated on one backend."""
    return {
        name: int(instrumentation.metrics.counter(name).value)
        for name in _SWEEP_COUNTERS
    }


@keyword_only
def run_robustness(
    params: Union["JobSpec", ExperimentParams],
    *,
    rates: Optional[Sequence[float]] = None,
    kinds: Optional[Sequence[str]] = None,
    configs: Optional[int] = None,
    require_optimal_differs: bool = False,
    max_attempts_factor: int = 400,
) -> RobustnessResult:
    """Run the accuracy-vs-fault-rate sweep.

    The canonical input is a :class:`~repro.apispec.JobSpec` (whose
    ``rates``/``kinds`` fields supply the grid unless overridden here);
    a bare :class:`ExperimentParams` still works for one release with a
    ``DeprecationWarning``.  ``params.fault_plan`` (or an all-zero
    plan) is the base: each swept rate is applied to every kind in
    ``kinds`` on top of it.  The screened configurations are sampled
    once -- the same worlds are re-trialled at every rate -- and
    ``params.probe_retries`` governs the attacker's retransmission
    budget throughout.
    """
    from repro.apispec import coerce_spec

    spec, params = coerce_spec(
        params, experiment="robustness", caller="run_robustness"
    )
    if rates is None:
        rates = spec.rates if spec.rates is not None else DEFAULT_RATES
    if kinds is None:
        kinds = spec.kinds if spec.kinds is not None else DEFAULT_KINDS
    rates = tuple(float(r) for r in rates)
    if not rates:
        raise ValueError("rates must be non-empty")
    kinds = tuple(kinds)
    base_plan = params.fault_plan or FaultPlan()
    # Validate the kinds eagerly (with_rate raises on unknown names).
    base_plan.with_rate(kinds, 0.0)
    if params.config.absence_range == (0.0, 1.0):
        params = params.with_absence_range(*_VIABLE_ABSENCE)

    outer = get_instrumentation()
    with outer.span(
        "experiment.robustness", rates=len(rates), kinds=",".join(kinds)
    ):
        execution = ExecutionStats(n_jobs=params.trial_jobs)
        harnesses = sample_screened_harnesses(
            params,
            configs if configs is not None else params.n_configs,
            require_optimal_differs=require_optimal_differs,
            max_attempts_factor=max_attempts_factor,
            execution=execution,
        )
        results_per_rate: List[List[ConfigResult]] = []
        counters_per_rate: List[Dict[str, int]] = []
        for rate in rates:
            plan = base_plan.with_rate(kinds, rate)
            # Fault/retry counters are captured per rate on a private
            # backend (Prober and FaultInjector resolve instruments at
            # construction, inside the trial loop), then re-emitted to
            # the session backend so --metrics output still sees them.
            inner = Instrumentation()
            with outer.span("experiment.robustness.rate", rate=rate):
                with use_instrumentation(inner):
                    bucket = [
                        harness.run_trials(
                            fault_plan=plan,
                            probe_retries=params.probe_retries,
                            execution=execution,
                        )
                        for harness in harnesses
                    ]
            counters = _snapshot_counters(inner)
            if outer.enabled:
                for name, value in counters.items():
                    if value > 0:
                        outer.metrics.counter(name).inc(value)
            results_per_rate.append(bucket)
            counters_per_rate.append(counters)
    return RobustnessResult(
        rates=rates,
        kinds=kinds,
        probe_retries=params.probe_retries,
        results_per_rate=results_per_rate,
        counters_per_rate=counters_per_rate,
        execution=execution,
    )
