"""Trial runners: one attack attempt against freshly generated traffic.

A *trial* regenerates the background traffic (the paper re-randomises
"the network packets every time"), lets it run for the detection window,
then lets each attacker probe and decide.  Because probes perturb the
switch cache, attackers cannot share one network instance; instead every
attacker gets an identically seeded replica (same traffic schedule, same
latency noise stream), so they face exactly the same world and differ
only in their own actions.

Two fidelity levels share the same trial semantics:

* :func:`run_network_trial` -- the full packet-level discrete-event
  simulation (the Mininet stand-in): probes are real ICMP echoes timed
  against the 1 ms threshold.
* :func:`run_table_trial` -- a fast replay of the arrival schedule
  straight through an OVS-style :class:`~repro.simulator.flowtable.
  FlowTable` with idealised timing: probe outcomes read the table
  directly.  Orders of magnitude faster; used for large sweeps and
  model-agreement tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.attacker import Attacker
from repro.deprecation import keyword_only
from repro.faults import FaultInjector, FaultPlan
from repro.flows.arrival import Arrival, occurred_in_window, sample_schedule
from repro.flows.config import NetworkConfiguration
from repro.flows.rules import RuleTable
from repro.obs import get_instrumentation
from repro.simulator.flowtable import make_flow_table
from repro.simulator.network import Network
from repro.simulator.probing import Prober
from repro.simulator.timing import LatencyModel

if TYPE_CHECKING:
    from repro.core.adaptive import AdaptiveModelAttacker
    from repro.countermeasures.base import Defense

#: Zero-argument factory producing a fresh defense per attacker replica.
DefenseFactory = Callable[[], "Defense"]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial: ground truth and per-attacker verdicts.

    ``outcomes`` entries may contain ``None`` bits: probes that went
    unanswered under fault injection (docs/FAULTS.md).
    """

    ground_truth: int
    decisions: Dict[str, int]
    outcomes: Dict[str, Tuple[Optional[int], ...]]

    def correct(self, attacker_name: str) -> bool:
        """Whether the named attacker judged the trial correctly."""
        return self.decisions[attacker_name] == self.ground_truth


def _trial_schedule(
    config: NetworkConfiguration, seed: int
) -> List[Arrival]:
    rng = np.random.default_rng(seed)
    return sample_schedule(
        config.universe, horizon=config.window_seconds, rng=rng
    )


def _trial_injector(
    fault_plan: Optional[FaultPlan], seed: int
) -> Optional[FaultInjector]:
    """A fresh injector for one trial, or ``None`` with faults off.

    The fault stream is seeded from ``(plan.seed, trial seed)`` so that
    faults differ across a harness's trials while any single trial
    replays exactly.  Seeding from the plan alone would hand every
    trial the same stream -- with one probe per trial, a reply-loss
    rate below the stream's first draw would then *never* fire.
    """
    if fault_plan is None:
        return None
    return FaultInjector(
        fault_plan, rng=np.random.default_rng([fault_plan.seed, seed])
    )


def run_network_trial(
    config: NetworkConfiguration,
    attackers: Sequence[Attacker],
    seed: int,
    latency: Optional[LatencyModel] = None,
    defense_factory: Optional[DefenseFactory] = None,
    fault_plan: Optional[FaultPlan] = None,
    probe_retries: int = 0,
) -> TrialResult:
    """One packet-level trial.

    ``defense_factory``, when given, is called once per attacker replica
    to produce a fresh defense object attached to that network (defenses
    carry per-network state).  ``fault_plan``, when given, attaches a
    fresh :class:`~repro.faults.FaultInjector` to each replica, seeded
    from ``(plan.seed, trial seed)``: every attacker in a trial faces
    the same fault stream, a given trial replays exactly, and different
    trials draw independent faults (a plan-seed-only injector would
    repeat one identical fault pattern in every trial).
    """
    schedule = _trial_schedule(config, seed)
    truth = int(
        occurred_in_window(
            schedule, config.target_flow, 0.0, config.window_seconds
        )
    )
    decisions: Dict[str, int] = {}
    outcomes: Dict[str, Tuple[Optional[int], ...]] = {}
    for attacker in attackers:
        probes = attacker.plan()
        if not probes:
            decisions[attacker.name] = attacker.decide(())
            outcomes[attacker.name] = ()
            continue
        defense = defense_factory() if defense_factory is not None else None
        faults = _trial_injector(fault_plan, seed)
        network = Network(
            config.concrete_rules,
            config.universe,
            cache_size=config.cache_size,
            latency=latency,
            rng=np.random.default_rng(seed + 1),
            defense=defense,
            faults=faults,
        )
        network.schedule_arrivals(schedule)
        network.sim.run_until(config.window_seconds)
        prober = Prober(network, retries=probe_retries)
        flows = [config.universe.flows[f] for f in probes]
        bits = tuple(prober.outcomes(flows))
        decisions[attacker.name] = attacker.decide(bits)
        outcomes[attacker.name] = bits
    return TrialResult(ground_truth=truth, decisions=decisions, outcomes=outcomes)


class _TableWorld:
    """Minimal reactive-switch semantics over a bare flow table.

    ``faults`` maps the loss kinds onto table semantics: packet-in loss
    strands the miss (no install, no reply), flow-mod loss skips the
    install but still replies (an observed miss), probe-reply loss
    leaves the probe unobserved.  Controller jitter/outage faults are
    no-ops here -- table mode has idealised timing, so there is no
    latency for them to perturb.
    """

    def __init__(
        self,
        config: NetworkConfiguration,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config
        self.policy = RuleTable(config.concrete_rules)
        self.table = make_flow_table(config.cache_size)
        self.faults = faults
        metrics = get_instrumentation().metrics
        self._retry_counter = metrics.counter("attacker.probe.retries")
        self._unobserved_counter = metrics.counter("attacker.probe.unobserved")

    def _process(self, flow_index: int, time: float) -> Tuple[bool, bool]:
        """One packet through the table: ``(cache_hit, reply_returns)``."""
        flow = self.config.universe.flows[flow_index]
        entry = self.table.lookup(flow, time)
        if entry is not None:
            return True, True
        faults = self.faults
        if faults is not None and faults.drop_packet_in():
            # The miss notification is lost: no install, no packet-out.
            return False, False
        rule = self.policy.highest_covering(flow)
        if rule is not None and not (
            faults is not None and faults.drop_flow_mod()
        ):
            self.table.install(rule, out_port=0, now=time)
        return False, True

    def arrival(self, flow_index: int, time: float) -> bool:
        """Process one flow arrival; returns True on a cache hit."""
        hit, _ = self._process(flow_index, time)
        return hit

    def probe(
        self, flow_index: int, time: float, retries: int = 0
    ) -> Optional[int]:
        """Probe semantics: outcome bit plus the install perturbation.

        Returns ``None`` when every attempt went unanswered (only
        possible under fault injection).
        """
        faults = self.faults
        for attempt in range(int(retries) + 1):
            if attempt > 0:
                self._retry_counter.inc()
            hit, replied = self._process(flow_index, time)
            if replied and not (
                faults is not None and faults.drop_probe_reply()
            ):
                return int(hit)
        self._unobserved_counter.inc()
        return None


def run_table_trial(
    config: NetworkConfiguration,
    attackers: Sequence[Attacker],
    seed: int,
    probe_gap: float = 0.0005,
    fault_plan: Optional[FaultPlan] = None,
    probe_retries: int = 0,
) -> TrialResult:
    """One fast table-level trial (idealised timing, exact semantics)."""
    schedule = _trial_schedule(config, seed)
    truth = int(
        occurred_in_window(
            schedule, config.target_flow, 0.0, config.window_seconds
        )
    )
    decisions: Dict[str, int] = {}
    outcomes: Dict[str, Tuple[Optional[int], ...]] = {}
    for attacker in attackers:
        probes = attacker.plan()
        if not probes:
            decisions[attacker.name] = attacker.decide(())
            outcomes[attacker.name] = ()
            continue
        faults = _trial_injector(fault_plan, seed)
        world = _TableWorld(config, faults=faults)
        for arrival in schedule:
            world.arrival(arrival.flow_index, arrival.time)
        bits = tuple(
            world.probe(
                flow,
                config.window_seconds + index * probe_gap,
                retries=probe_retries,
            )
            for index, flow in enumerate(probes)
        )
        decisions[attacker.name] = attacker.decide(bits)
        outcomes[attacker.name] = bits
    return TrialResult(ground_truth=truth, decisions=decisions, outcomes=outcomes)


def run_adaptive_trial(
    config: NetworkConfiguration,
    adaptive_attacker: "AdaptiveModelAttacker",
    seed: int,
    mode: str = "table",
    baselines: Sequence[Attacker] = (),
    latency: Optional[LatencyModel] = None,
    probe_gap: float = 0.0005,
) -> TrialResult:
    """One trial driving an adaptive attacker (and optional baselines).

    The adaptive attacker interleaves probe selection and observation
    (:class:`repro.core.adaptive.AdaptiveModelAttacker`); each baseline
    runs against its own identically seeded replica, as in
    :func:`run_trial`.
    """
    schedule = _trial_schedule(config, seed)
    truth = int(
        occurred_in_window(
            schedule, config.target_flow, 0.0, config.window_seconds
        )
    )
    decisions: Dict[str, int] = {}
    outcomes: Dict[str, Tuple[int, ...]] = {}

    session = adaptive_attacker.start_session()
    if mode == "table":
        world = _TableWorld(config)
        for arrival in schedule:
            world.arrival(arrival.flow_index, arrival.time)
        probe_time = config.window_seconds
        while True:
            flow = session.next_probe()
            if flow is None:
                break
            session.observe(world.probe(flow, probe_time))
            probe_time += probe_gap
    elif mode == "network":
        network = Network(
            config.concrete_rules,
            config.universe,
            cache_size=config.cache_size,
            latency=latency,
            rng=np.random.default_rng(seed + 1),
        )
        network.schedule_arrivals(schedule)
        network.sim.run_until(config.window_seconds)
        prober = Prober(network)
        while True:
            flow = session.next_probe()
            if flow is None:
                break
            result = prober.measure(config.universe.flows[flow])
            session.observe(result.outcome)
    else:
        raise ValueError(f"unknown trial mode: {mode!r}")

    decisions[adaptive_attacker.name] = session.decide()
    outcomes[adaptive_attacker.name] = tuple(
        bit for _, bit in session.history
    )

    if baselines:
        baseline_trial = run_trial(
            config, baselines, seed, mode=mode, latency=latency
        )
        decisions.update(baseline_trial.decisions)
        outcomes.update(baseline_trial.outcomes)

    return TrialResult(
        ground_truth=truth, decisions=decisions, outcomes=outcomes
    )


@keyword_only
def run_trial(
    config: NetworkConfiguration,
    attackers: Sequence[Attacker],
    seed: int,
    *,
    mode: str = "network",
    latency: Optional[LatencyModel] = None,
    defense_factory: Optional[DefenseFactory] = None,
    fault_plan: Optional[FaultPlan] = None,
    probe_retries: int = 0,
) -> TrialResult:
    """Dispatch on trial mode."""
    if mode == "network":
        return run_network_trial(
            config, attackers, seed, latency=latency,
            defense_factory=defense_factory,
            fault_plan=fault_plan, probe_retries=probe_retries,
        )
    if mode == "table":
        if defense_factory is not None:
            raise ValueError("defenses require network-mode trials")
        return run_table_trial(
            config, attackers, seed,
            fault_plan=fault_plan, probe_retries=probe_retries,
        )
    raise ValueError(f"unknown trial mode: {mode!r}")
