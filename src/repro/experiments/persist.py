"""Persist experiment results as JSON for plotting and archival.

The figure objects (:class:`~repro.experiments.fig6.Fig6Result`,
:class:`~repro.experiments.fig7.Fig7Result`) carry live references to
configurations; this module flattens them into plain-JSON documents --
per-configuration rows plus the derived series -- so a full run's
numbers can be archived, diffed between runs, or plotted without
re-running hours of sampling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import Fig7Result
from repro.experiments.harness import ConfigResult
from repro.version import __version__

PathLike = Union[str, Path]


def _config_row(result: ConfigResult) -> Dict[str, object]:
    """One configuration's flattened record."""
    return {
        "prior_absent": result.prior_absent,
        "screened": result.screened,
        "optimal_probe": result.optimal_probe,
        "optimal_is_target": result.optimal_is_target,
        "target_flow": result.config.target_flow,
        "n_rules_covering_target": result.n_rules_covering_target,
        "target_install_exclusive": result.target_install_exclusive,
        "trials": result.trials,
        "accuracies": dict(result.accuracies),
        "improvement": result.improvement,
        "target_rate": result.config.universe.rates[
            result.config.target_flow
        ],
    }


def fig6_to_document(result: Fig6Result) -> Dict[str, object]:
    """A plain-JSON document for a Figure 6 run."""
    return {
        "artifact": "fig6",
        "version": __version__,
        "bins": [list(b) for b in result.bins],
        "bin_centers": result.bin_centers(),
        "accuracy_series": result.accuracy_series(),
        "improvement_cdf": [list(p) for p in result.improvement_cdf()],
        "headline": result.headline(),
        "configurations": [
            [_config_row(r) for r in bucket]
            for bucket in result.results_per_bin
        ],
    }


def fig7_to_document(result: Fig7Result) -> Dict[str, object]:
    """A plain-JSON document for a Figure 7 run."""
    return {
        "artifact": "fig7",
        "version": __version__,
        "bins": [list(b) for b in result.bins],
        "bin_centers": result.bin_centers(),
        "accuracy_series": result.accuracy_series(),
        "accuracy_by_covering_count": {
            str(count): row
            for count, row in result.accuracy_by_covering_count().items()
        },
        "summary": result.summary(),
        "configurations": [
            [_config_row(r) for r in bucket]
            for bucket in result.results_per_bin
        ],
    }


def save_result(
    result: Union[Fig6Result, Fig7Result], path: PathLike
) -> Path:
    """Serialise a figure result to ``path`` (JSON); returns the path."""
    if isinstance(result, Fig6Result):
        document = fig6_to_document(result)
    elif isinstance(result, Fig7Result):
        document = fig7_to_document(result)
    else:
        raise TypeError(f"unsupported result type: {type(result).__name__}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def load_document(path: PathLike) -> Dict[str, object]:
    """Load a previously saved experiment document."""
    document = json.loads(Path(path).read_text())
    if "artifact" not in document:
        raise ValueError(f"{path} is not an experiment document")
    return document


def compare_headlines(
    old: Dict[str, object], new: Dict[str, object]
) -> List[Dict[str, float]]:
    """Row-wise comparison of two fig6 documents' headline statistics.

    Useful for regression-tracking the reproduction between code
    changes: each row carries the metric, both values, and the delta.
    """
    if old.get("artifact") != "fig6" or new.get("artifact") != "fig6":
        raise ValueError("headline comparison requires fig6 documents")
    rows = []
    old_headline: Dict[str, float] = old["headline"]  # type: ignore[assignment]
    new_headline: Dict[str, float] = new["headline"]  # type: ignore[assignment]
    for metric in sorted(set(old_headline) | set(new_headline)):
        old_value = old_headline.get(metric)
        new_value = new_headline.get(metric)
        row = {"metric": metric, "old": old_value, "new": new_value}
        if old_value is not None and new_value is not None:
            row["delta"] = new_value - old_value
        rows.append(row)
    return rows
