"""Persist experiment results as JSON for plotting and archival.

The figure objects (:class:`~repro.experiments.fig6.Fig6Result`,
:class:`~repro.experiments.fig7.Fig7Result`) carry live references to
configurations; this module flattens them into plain-JSON documents so a
full run's numbers can be archived, diffed between runs, or plotted
without re-running hours of sampling.

Since schema version 2 every artifact shares one envelope, the
:class:`ResultDocument`:

* ``artifact`` / ``schema_version`` -- what this is and how to read it;
* ``job`` -- the full :class:`~repro.apispec.JobSpec` the run was
  submitted with (schema version 3; the unified job API);
* ``params`` -- the :class:`~repro.experiments.params.ExperimentParams`
  the run used (when known);
* ``metrics`` -- the artifact's headline numbers (``headline`` for
  fig6, ``summary`` for fig7);
* ``series`` -- the plottable series (bins, accuracy curves, CDFs);
* ``configurations`` -- per-configuration rows;
* ``provenance`` -- repro version, git commit, and seed.

For backward compatibility the legacy v1 top-level keys (``headline``,
``summary``, ``bins``, ``accuracy_series``, ...) are still mirrored at
the top level on save, and :func:`load_document` upgrades old files to
the current shape in memory via :func:`migrate_document`.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.deprecation import keyword_only

if TYPE_CHECKING:
    from repro.apispec import JobSpec
from repro.experiments.defend import DefendResult
from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import Fig7Result
from repro.experiments.harness import ConfigResult
from repro.experiments.params import ExperimentParams
from repro.experiments.robustness import RobustnessResult
from repro.version import __version__

PathLike = Union[str, Path]

#: Current result-document schema.  v1 (implicit, unversioned) had
#: per-artifact ad-hoc shapes; v2 is the unified envelope; v3 records
#: the full :class:`~repro.apispec.JobSpec` under ``job``.
SCHEMA_VERSION = 3

#: Where each artifact's v1 shape kept its headline metrics.
_LEGACY_METRICS_KEY = {"fig6": "headline", "fig7": "summary"}


@lru_cache(maxsize=1)
def _git_sha() -> Optional[str]:
    """The current git commit, if the repo and git are available.

    Cached for the life of the process: the service stamps every
    session checkpoint with provenance, and one ``git rev-parse``
    subprocess per document would dominate short sessions.
    """
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = output.stdout.strip()
    return sha if output.returncode == 0 and sha else None


@dataclass(frozen=True)
class ResultDocument:
    """The unified, versioned envelope every saved result uses."""

    artifact: str
    metrics: Dict[str, object]
    series: Dict[str, object]
    configurations: List[List[Dict[str, object]]]
    params: Optional[Dict[str, object]] = None
    provenance: Dict[str, object] = field(default_factory=dict)
    #: The full :class:`~repro.apispec.JobSpec` as a plain-JSON mapping
    #: (schema v3); ``None`` when the spec is unknown (migrated v1).
    job: Optional[Dict[str, object]] = None
    schema_version: int = SCHEMA_VERSION

    def to_json(self) -> Dict[str, object]:
        """Plain-JSON mapping, with the legacy v1 keys mirrored.

        Old consumers read ``document["headline"]`` (fig6),
        ``document["summary"]`` (fig7), and the series keys at the top
        level; those aliases are kept for one more schema generation.
        """
        document: Dict[str, object] = {
            "artifact": self.artifact,
            "schema_version": self.schema_version,
            "version": __version__,
            "job": self.job,
            "params": self.params,
            "metrics": dict(self.metrics),
            "series": dict(self.series),
            "provenance": dict(self.provenance),
            "configurations": self.configurations,
        }
        metrics_alias = _LEGACY_METRICS_KEY.get(self.artifact)
        if metrics_alias is not None:
            document[metrics_alias] = dict(self.metrics)
        for key, value in self.series.items():
            document[key] = value
        return document


def _config_row(result: ConfigResult) -> Dict[str, object]:
    """One configuration's flattened record."""
    return {
        "prior_absent": result.prior_absent,
        "screened": result.screened,
        "optimal_probe": result.optimal_probe,
        "optimal_is_target": result.optimal_is_target,
        "target_flow": result.config.target_flow,
        "n_rules_covering_target": result.n_rules_covering_target,
        "target_install_exclusive": result.target_install_exclusive,
        "trials": result.trials,
        "accuracies": dict(result.accuracies),
        "improvement": result.improvement,
        "target_rate": result.config.universe.rates[
            result.config.target_flow
        ],
    }


def _provenance(
    params: Optional[ExperimentParams],
    seed: Optional[int],
    result: Optional[object] = None,
) -> Dict[str, object]:
    if seed is None and params is not None:
        seed = params.seed
    provenance: Dict[str, object] = {
        "repro_version": __version__,
        "git_sha": _git_sha(),
        "seed": seed,
    }
    # Fan-out provenance (EXPERIMENTS.md, "Parallel execution"): the
    # numbers are identical for every jobs setting, but a document
    # should still record how it was produced -- and whether any pool
    # dispatch degraded to the serial fallback.
    execution = getattr(result, "execution", None)
    if params is not None:
        provenance["trial_jobs"] = params.trial_jobs
    elif execution is not None:
        provenance["trial_jobs"] = execution.n_jobs
    if execution is not None:
        provenance["pool_fallbacks"] = execution.pool_fallbacks
    # Kernel provenance: what was requested and what it resolved to on
    # this machine ("sparse" vs "sparse+numba" depends on the optional
    # `fast` extra).  Probabilities are kernel-independent; recording
    # the resolution documents how the run's compute was performed.
    if params is not None:
        from repro.core.kernels import resolve_kernel
        from repro.core.simpath import resolve_simpath

        provenance["kernel"] = params.kernel
        provenance["kernel_resolved"] = resolve_kernel(
            params.kernel
        ).describe()
        provenance["simpath"] = params.simpath
        provenance["simpath_resolved"] = resolve_simpath(
            params.simpath
        ).describe()
    return provenance


def _params_dict(
    params: Optional[ExperimentParams],
) -> Optional[Dict[str, object]]:
    return asdict(params) if params is not None else None


def _resolve_spec(
    artifact: str,
    spec: Optional["JobSpec"],
    params: Optional[ExperimentParams],
    seed: Optional[int],
) -> Tuple[Optional[Dict[str, object]], Optional[ExperimentParams]]:
    """``(job, params)`` from whichever of spec/params the caller gave.

    A spec is canonical: its ``to_params()`` view fills the legacy
    ``params`` section.  Legacy params-only calls still get a full
    ``job`` record by wrapping them into a :class:`~repro.apispec.JobSpec`.
    """
    if spec is not None:
        return spec.to_dict(), spec.to_params()
    if params is not None:
        from repro.apispec import JobSpec

        wrapped = JobSpec.from_params(params, experiment=artifact)
        if params.seed is None and seed is not None:
            wrapped = dataclasses.replace(wrapped, seed=seed)
        return wrapped.to_dict(), params
    return None, None


@keyword_only
def fig6_to_document(
    result: Fig6Result,
    *,
    params: Optional[ExperimentParams] = None,
    seed: Optional[int] = None,
    spec: Optional["JobSpec"] = None,
) -> Dict[str, object]:
    """A plain-JSON :class:`ResultDocument` for a Figure 6 run."""
    job, params = _resolve_spec("fig6", spec, params, seed)
    return ResultDocument(
        artifact="fig6",
        metrics=result.headline(),
        series={
            "bins": [list(b) for b in result.bins],
            "bin_centers": result.bin_centers(),
            "accuracy_series": result.accuracy_series(),
            "improvement_cdf": [list(p) for p in result.improvement_cdf()],
        },
        configurations=[
            [_config_row(r) for r in bucket]
            for bucket in result.results_per_bin
        ],
        params=_params_dict(params),
        provenance=_provenance(params, seed, result),
        job=job,
    ).to_json()


@keyword_only
def fig7_to_document(
    result: Fig7Result,
    *,
    params: Optional[ExperimentParams] = None,
    seed: Optional[int] = None,
    spec: Optional["JobSpec"] = None,
) -> Dict[str, object]:
    """A plain-JSON :class:`ResultDocument` for a Figure 7 run."""
    job, params = _resolve_spec("fig7", spec, params, seed)
    return ResultDocument(
        artifact="fig7",
        metrics=result.summary(),
        series={
            "bins": [list(b) for b in result.bins],
            "bin_centers": result.bin_centers(),
            "accuracy_series": result.accuracy_series(),
            "accuracy_by_covering_count": {
                str(count): row
                for count, row in result.accuracy_by_covering_count().items()
            },
        },
        configurations=[
            [_config_row(r) for r in bucket]
            for bucket in result.results_per_bin
        ],
        params=_params_dict(params),
        provenance=_provenance(params, seed, result),
        job=job,
    ).to_json()


@keyword_only
def robustness_to_document(
    result: RobustnessResult,
    *,
    params: Optional[ExperimentParams] = None,
    seed: Optional[int] = None,
    spec: Optional["JobSpec"] = None,
) -> Dict[str, object]:
    """A plain-JSON :class:`ResultDocument` for a robustness sweep."""
    job, params = _resolve_spec("robustness", spec, params, seed)
    return ResultDocument(
        artifact="robustness",
        metrics=result.summary(),
        series={
            "rates": list(result.rates),
            "kinds": list(result.kinds),
            "accuracy_series": result.accuracy_series(),
            "faults_injected": result.faults_injected(),
            "counters_per_rate": [
                dict(c) for c in result.counters_per_rate
            ],
        },
        configurations=[
            [_config_row(r) for r in bucket]
            for bucket in result.results_per_rate
        ],
        params=_params_dict(params),
        provenance=_provenance(params, seed, result),
        job=job,
    ).to_json()


@keyword_only
def defend_to_document(
    result: DefendResult,
    *,
    params: Optional[ExperimentParams] = None,
    seed: Optional[int] = None,
    spec: Optional["JobSpec"] = None,
) -> Dict[str, object]:
    """A plain-JSON :class:`ResultDocument` for a defend grid run.

    ``configurations`` carries the baseline buckets first (one per
    rate), then the grid cells in the result's (defense-major,
    rate-minor) order, mirroring ``series["cells"]``.
    """
    job, params = _resolve_spec("defend", spec, params, seed)
    return ResultDocument(
        artifact="defend",
        metrics=result.summary(),
        series={
            "defenses": list(result.defenses),
            "rates": list(result.rates),
            "kinds": list(result.kinds),
            "detector_method": result.detector_method,
            "structural_leakage_bits": result.structural_leakage_bits,
            "baseline": [cell.to_dict() for cell in result.baseline],
            "cells": [cell.to_dict() for cell in result.cells],
        },
        configurations=[
            [_config_row(r) for r in bucket]
            for bucket in result.baseline_results + result.results_per_cell
        ],
        params=_params_dict(params),
        provenance=_provenance(params, seed, result),
        job=job,
    ).to_json()


@keyword_only
def save_result(
    result: Union[Fig6Result, Fig7Result, RobustnessResult, DefendResult],
    path: PathLike,
    *,
    params: Optional[ExperimentParams] = None,
    seed: Optional[int] = None,
    spec: Optional["JobSpec"] = None,
) -> Path:
    """Serialise a figure result to ``path`` (JSON); returns the path.

    ``spec`` (canonical) or ``params``/``seed`` (legacy), when given,
    are recorded in the document's ``job``/``params``/``provenance``
    sections.
    """
    if isinstance(result, Fig6Result):
        document = fig6_to_document(result, params=params, seed=seed, spec=spec)
    elif isinstance(result, Fig7Result):
        document = fig7_to_document(result, params=params, seed=seed, spec=spec)
    elif isinstance(result, RobustnessResult):
        document = robustness_to_document(
            result, params=params, seed=seed, spec=spec
        )
    elif isinstance(result, DefendResult):
        document = defend_to_document(
            result, params=params, seed=seed, spec=spec
        )
    else:
        raise TypeError(f"unsupported result type: {type(result).__name__}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def _job_from_legacy_params(
    params: object, artifact: str, provenance: object
) -> Optional[Dict[str, object]]:
    """Reconstruct a v3 ``job`` record from a v2 ``params`` section.

    v2 documents recorded the flattened ``ExperimentParams`` (config
    nested as a dict, fault plan as a dict) plus a provenance seed; the
    migration lifts those back into a validated
    :class:`~repro.apispec.JobSpec`.  Malformed or hand-edited params
    migrate to ``job: None`` rather than failing the load.
    """
    if not isinstance(params, dict):
        return None
    from repro.apispec import EXPERIMENTS, JobSpec

    seed = params.get("seed")
    if seed is None and isinstance(provenance, dict):
        seed = provenance.get("seed")
    job_document: Dict[str, object] = {
        "experiment": artifact if artifact in EXPERIMENTS else "fig6",
        "seed": seed,
    }
    renamed = {"selection_n_jobs": "selection_jobs"}
    for key, value in params.items():
        if key == "seed":
            continue
        job_document[renamed.get(key, key)] = value
    try:
        return JobSpec.from_dict(job_document).to_dict()
    except (TypeError, ValueError):
        return None


def migrate_document(document: Dict[str, object]) -> Dict[str, object]:
    """Upgrade a result document to the current schema, in memory.

    v1 documents (no ``schema_version``) gain the unified envelope:
    ``metrics`` from the artifact's legacy headline key, ``series`` from
    the legacy top-level series keys, empty ``params``/``provenance``,
    and ``job: None`` (a v1 file recorded no parameters to lift).  v2
    documents gain ``job``: the full :class:`~repro.apispec.JobSpec`
    reconstructed from their ``params`` + ``provenance`` sections.
    Already-current documents are returned unchanged.
    """
    if document.get("schema_version") == SCHEMA_VERSION:
        return document
    artifact = document.get("artifact")
    if not isinstance(artifact, str):
        raise ValueError("not an experiment document: missing 'artifact'")
    upgraded = dict(document)
    upgraded["schema_version"] = SCHEMA_VERSION
    metrics_key = _LEGACY_METRICS_KEY.get(artifact)
    upgraded.setdefault(
        "metrics",
        dict(document.get(metrics_key, {})) if metrics_key else {},  # type: ignore[arg-type]
    )
    series_keys = (
        "bins",
        "bin_centers",
        "accuracy_series",
        "improvement_cdf",
        "accuracy_by_covering_count",
    )
    upgraded.setdefault(
        "series",
        {key: document[key] for key in series_keys if key in document},
    )
    upgraded.setdefault("params", None)
    upgraded.setdefault(
        "provenance",
        {"repro_version": document.get("version"), "git_sha": None, "seed": None},
    )
    if upgraded.get("job") is None:
        upgraded["job"] = _job_from_legacy_params(
            upgraded.get("params"), artifact, upgraded.get("provenance")
        )
    return upgraded


def load_document(path: PathLike) -> Dict[str, object]:
    """Load a previously saved experiment document (any schema version).

    Old (v1) files are upgraded in memory via :func:`migrate_document`;
    the file itself is never rewritten.
    """
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or "artifact" not in document:
        raise ValueError(f"{path} is not an experiment document")
    return migrate_document(document)


def _headline_metrics(document: Dict[str, object]) -> Dict[str, float]:
    """The fig6 headline mapping from a v1 or v2 document."""
    metrics = document.get("metrics")
    if isinstance(metrics, dict) and metrics:
        return metrics  # type: ignore[return-value]
    return document.get("headline", {})  # type: ignore[return-value]


def compare_headlines(
    old: Dict[str, object], new: Dict[str, object]
) -> List[Dict[str, float]]:
    """Row-wise comparison of two fig6 documents' headline statistics.

    Useful for regression-tracking the reproduction between code
    changes: each row carries the metric, both values, and the delta.
    Accepts v1 and v2 documents interchangeably.
    """
    if old.get("artifact") != "fig6" or new.get("artifact") != "fig6":
        raise ValueError("headline comparison requires fig6 documents")
    rows = []
    old_headline = _headline_metrics(old)
    new_headline = _headline_metrics(new)
    for metric in sorted(set(old_headline) | set(new_headline)):
        old_value = old_headline.get(metric)
        new_value = new_headline.get(metric)
        row = {"metric": metric, "old": old_value, "new": new_value}
        if old_value is not None and new_value is not None:
            row["delta"] = new_value - old_value
        rows.append(row)
    return rows
