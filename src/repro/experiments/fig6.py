"""Figure 6: model attacker vs naive attacker.

The paper's Figure 6 restricts attention to network configurations in
which (a) the optimal probe works as a detector (the viability screen)
and (b) the model-calculated optimal probe differs from the target flow
-- i.e. configurations where the model attacker and the naive attacker
actually behave differently.

* **Figure 6a**: average accuracy of each attacker, as a function of the
  target flow's probability of absence (we reproduce the x-axis by
  sampling configurations within successive absence bins).
* **Figure 6b**: the CDF, across configurations, of the additive
  improvement in average accuracy of the model attacker over the naive
  attacker.

Paper headlines this module's output should reproduce in shape: ~2%
mean improvement overall, >= 15% improvement for ~20% of configurations
and >= 35% for ~5%; accuracy gaps widen as the probability of absence
grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.cdf import empirical_cdf, survival_at
from repro.deprecation import keyword_only
from repro.experiments.harness import (
    ConfigResult,
    sample_screened_harnesses,
)
from repro.experiments.parallel import ExecutionStats
from repro.experiments.params import VIABLE_FIG6_BINS, ExperimentParams
from repro.obs import get_instrumentation

if TYPE_CHECKING:
    from repro.apispec import JobSpec


@dataclass
class Fig6Result:
    """Everything needed to print/plot Figures 6a and 6b."""

    bins: Tuple[Tuple[float, float], ...]
    results_per_bin: List[List[ConfigResult]] = field(repr=False)
    #: Fan-out accounting for the run (None on pre-parallel results).
    execution: Optional[ExecutionStats] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Figure 6a
    # ------------------------------------------------------------------
    def accuracy_series(self) -> Dict[str, List[Optional[float]]]:
        """Per-bin mean accuracy for the model and naive attackers."""
        series: Dict[str, List[Optional[float]]] = {"model": [], "naive": []}
        for bucket in self.results_per_bin:
            for name in series:
                if bucket:
                    series[name].append(
                        sum(r.accuracies[name] for r in bucket) / len(bucket)
                    )
                else:
                    series[name].append(None)
        return series

    def bin_centers(self) -> List[float]:
        """Midpoints of the absence-probability bins."""
        return [(low + high) / 2 for low, high in self.bins]

    # ------------------------------------------------------------------
    # Figure 6b
    # ------------------------------------------------------------------
    def improvements(self) -> List[float]:
        """Per-configuration additive improvements (all bins pooled)."""
        return [
            result.improvement
            for bucket in self.results_per_bin
            for result in bucket
        ]

    def improvement_cdf(self) -> List[Tuple[float, float]]:
        """Empirical CDF points of the improvements (Figure 6b)."""
        return empirical_cdf(self.improvements())

    # ------------------------------------------------------------------
    # Headline numbers (Sections I and VI)
    # ------------------------------------------------------------------
    def headline(self) -> Dict[str, float]:
        """The paper's summary statistics over these configurations."""
        improvements = self.improvements()
        all_results = [r for bucket in self.results_per_bin for r in bucket]
        mean_improvement = sum(improvements) / len(improvements)
        return {
            "mean_improvement": mean_improvement,
            "frac_configs_improving_15pct": survival_at(improvements, 0.15),
            "frac_configs_improving_35pct": survival_at(improvements, 0.35),
            "mean_model_accuracy": sum(
                r.accuracies["model"] for r in all_results
            )
            / len(all_results),
            "mean_naive_accuracy": sum(
                r.accuracies["naive"] for r in all_results
            )
            / len(all_results),
            "n_configs": float(len(all_results)),
        }


@keyword_only
def run_fig6(
    params: Union["JobSpec", ExperimentParams],
    *,
    bins: Sequence[Tuple[float, float]] = VIABLE_FIG6_BINS,
    configs_per_bin: Optional[int] = None,
    max_attempts_factor: int = 400,
) -> Fig6Result:
    """Run the Figure 6 experiment.

    The canonical input is a :class:`~repro.apispec.JobSpec`; a bare
    :class:`ExperimentParams` still works for one release (with a
    ``DeprecationWarning``).  ``params.n_configs`` configurations are
    split evenly across the absence bins unless ``configs_per_bin`` is
    given.  Each sampled configuration must pass the viability screen
    *and* have its optimal probe differ from the target -- a rare
    combination (a few percent of random configurations), hence the
    generous rejection-sampling budget ``max_attempts_factor``.
    """
    from repro.apispec import coerce_spec
    from repro.countermeasures.registry import single_defense_factory

    spec, params = coerce_spec(params, experiment="fig6", caller="run_fig6")
    defense_factory = single_defense_factory(
        spec.defense, caller="run_fig6"
    )
    bins = tuple(bins)
    per_bin = configs_per_bin or max(1, params.n_configs // len(bins))
    results: List[List[ConfigResult]] = []
    obs = get_instrumentation()
    execution = ExecutionStats(n_jobs=params.trial_jobs)
    for low, high in bins:
        bin_params = params.with_absence_range(low, high)
        with obs.span("experiment.fig6.bin", low=low, high=high):
            harnesses = sample_screened_harnesses(
                bin_params,
                per_bin,
                require_optimal_differs=True,
                max_attempts_factor=max_attempts_factor,
                execution=execution,
            )
            bucket = [
                harness.run_trials(
                    defense_factory=defense_factory, execution=execution
                )
                for harness in harnesses
            ]
        results.append(bucket)
    return Fig6Result(bins=bins, results_per_bin=results, execution=execution)
