"""Configuration screens (Section VI-B).

The paper restricts its evaluation to network configurations "for which
our calculated ``P(X̂=0 | Q_f=0) > 0.5`` and ``P(X̂=1 | Q_f=1) > 0.5``"
for the optimal probe ``f`` -- i.e. configurations where the probe's
raw outcome bit works as a detector on both sides.  ("An attacker would
presumably not use our detection method on a network configuration not
meeting this condition.")

This module names the screens explicitly so the harness, the figure
pipelines, and downstream users apply exactly the same criteria:

* :func:`paper_screen` -- the condition above (the library default);
* :func:`gain_screen` -- an alternative, threshold on the optimal
  probe's information gain (useful for sensitivity studies where the
  paper screen's hard 0.5 cut is too brittle);
* :func:`screen_report` -- all quantities a screen decision rests on,
  for logging and debugging rejected configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.inference import ReconInference
from repro.core.selection import best_single_probe


@dataclass(frozen=True)
class ScreenReport:
    """Everything the screens look at, for one configuration."""

    optimal_probe: int
    optimal_gain: float
    p_hit: float
    p_miss: float
    posterior_absent_given_miss: float
    posterior_present_given_hit: float

    @property
    def paper_accepted(self) -> bool:
        """The Section VI-B condition."""
        return (
            self.p_hit > 0.0
            and self.p_miss > 0.0
            and self.posterior_absent_given_miss > 0.5
            and self.posterior_present_given_hit > 0.5
        )


def screen_report(
    inference: ReconInference, probe: Optional[int] = None
) -> ScreenReport:
    """Compute the screen quantities for a fitted inference.

    ``probe`` defaults to the information-gain-optimal flow, matching
    the paper's procedure.
    """
    if probe is None:
        choice = best_single_probe(inference)
        probe = choice.probes[0]
        gain = choice.gain
    else:
        gain = inference.information_gain((probe,))
    table = inference.outcome_table((probe,))
    return ScreenReport(
        optimal_probe=int(probe),
        optimal_gain=gain,
        p_hit=table.outcome_probs.get((1,), 0.0),
        p_miss=table.outcome_probs.get((0,), 0.0),
        posterior_absent_given_miss=table.posterior_absent((0,)),
        posterior_present_given_hit=table.posterior_present((1,)),
    )


def paper_screen(
    inference: ReconInference, probe: Optional[int] = None
) -> bool:
    """The paper's detector-viability screen."""
    return screen_report(inference, probe).paper_accepted


def gain_screen(
    inference: ReconInference,
    min_gain_bits: float = 1e-3,
    probe: Optional[int] = None,
) -> bool:
    """Accept when the optimal probe carries at least ``min_gain_bits``."""
    return screen_report(inference, probe).optimal_gain >= min_gain_bits
