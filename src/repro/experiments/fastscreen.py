"""Margin-certified float32 screening pre-pass (the fast path).

The headline experiments are dominated by *rejected* candidates: the
fig6 pipeline samples ~940 configurations to accept 8, and every
rejection pays two ``window_steps``-long float64 transition chains plus
a full harness build just to learn that the paper's viability screen
(or the optimal-probe-differs restriction) says no.

This module decides most of those rejections from a float32 replica of
the screen computed with the native fused pair-chain kernel
(:mod:`repro.core.cnative`), certified by conservative error bounds:

* the float32 information gains, outcome probabilities, and posteriors
  are computed exactly as the engine computes them (same coverage
  products, same :func:`~repro.core.engine.gains_from_tables`, same
  clamping) but from float32 chain outputs;
* a candidate is rejected *only* when every flow that could plausibly
  be the exact optimal probe (the gain tie-set ``W`` below) provably
  fails the screen -- each member's posterior sits further than the
  certified error bound below the paper's 0.5 cut, the member's outcome
  probability is *exactly* zero by graph reachability (no float64 chain
  can put mass on states the transition graph cannot reach, an integer
  argument immune to rounding), or the member is the target flow while
  the caller requires the optimal probe to differ;
* anything short of that -- thin margins, tiny outcome probabilities,
  gain ties that cannot be separated at float32 precision -- falls back
  to the exact float64 screen, and *every accepted configuration* is
  re-confirmed exactly (the harness is built and its verdicts are the
  ones recorded), so accepted results are bit-identical to the
  reference path.

The error-bound constants are calibrated with a ~20x safety factor over
the worst float32 deviations observed across the headline candidate
streams (tests/experiments/test_fastscreen.py measures them afresh and
asserts the margins hold); the differential suite
(tests/experiments/test_simpath_diff.py) pins fastpath==reference over
the full pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import sparse

from repro.core import cnative
from repro.core.compact_model import CompactModel
from repro.core.engine import gains_from_tables
from repro.core.inference import PRUNE
from repro.core.kernels import resolve_kernel
from repro.core.simpath import resolve_simpath
from repro.experiments.params import ExperimentParams
from repro.flows.config import NetworkConfiguration
from repro.obs import get_instrumentation, sanitize

#: Bound on ``|float32 - exact|`` for any of the screen's probability
#: sums (outcome probabilities, joints, priors).  Worst observed on the
#: headline streams: ~2e-5.
SUM_TOL = 5e-4

#: Bound on ``|float32 - exact|`` for per-flow information gains.
#: Worst observed: ~5e-5.  The exact winner's gain is within TIE_EPS of
#: the exact maximum, so it always lands in the float32 tie-set
#: ``gains32 >= max(gains32) - GAIN_TOL``.
GAIN_TOL = 1e-3

#: Outcome probabilities below this cannot be certified positive (and
#: their posteriors divide by them, amplifying SUM_TOL): fall back.
PROB_TOL = 2 * SUM_TOL

#: Posterior error scales like ``2 * SUM_TOL / p`` for outcome
#: probability ``p`` (numerator and denominator each carry SUM_TOL).
POST_TOL_NUMERATOR = 2 * SUM_TOL


def supports(params: ExperimentParams) -> bool:
    """Whether the certified screen applies under ``params``.

    The replica covers the default single-probe selection over the
    sparse kernel with the independent estimator -- the configuration
    every headline pipeline runs.  Anything else (dense reference
    kernel, Monte-Carlo estimators, multi-probe selection) screens
    exactly, as does any machine where the native kernel is unavailable.
    """
    return (
        resolve_simpath(params.simpath).fast
        and params.n_probes == 1
        and params.estimator == "independent"
        and resolve_kernel(params.kernel).name == "sparse"
        and cnative.available()
    )


@dataclass
class FastScreenOutcome:
    """What the pre-pass learned about one candidate configuration."""

    #: Proven: the serial screening loop would reject this candidate.
    certified_reject: bool
    #: The compact model built for the screen, for reuse by the exact
    #: harness when the pre-pass could not certify a rejection.
    model: Optional[CompactModel] = None


@dataclass
class FastQuantities:
    """Float32 replicas of every quantity the paper screen consults."""

    gains: np.ndarray
    p_hit: np.ndarray
    p_miss: np.ndarray
    posterior_absent_given_miss: np.ndarray
    posterior_present_given_hit: np.ndarray


def reachable_states(model: CompactModel) -> np.ndarray:
    """Boolean mask of states reachable from the initial distribution.

    Fixpoint of one-step successor expansion over the positive-entry
    transition graph -- an over-approximation of the support of the
    chain's distribution at *any* horizon.  Pure index arithmetic: a
    state outside this set has exactly zero probability at every step,
    which is what lets the screen certify ``p_hit == 0`` (and hence a
    failed viability screen) without trusting float32 rounding.
    """
    rows, cols, _, _ = model._sorted_entries()
    reach = model.initial_distribution() > 0.0
    while True:
        successors = cols[reach[rows]]
        before = int(reach.sum())
        reach[successors] = True
        if int(reach.sum()) == before:
            return reach


def _transposed_csr_f32(
    rows: np.ndarray, cols: np.ndarray, probs: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:  # repro: noqa[STO001]
    """CSR pieces of the transposed matrix, in kernel dtypes.

    Mirrors ``CompactModel._assemble_csr`` (consecutive duplicate
    (row, col) runs summed left to right) but skips the float64 matrix
    cache, stochasticity validation, and buffer freezing the exact path
    performs -- the float32 product is consumed once, here.
    """
    boundary = np.empty(len(rows), dtype=bool)
    boundary[0] = True
    boundary[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    starts = np.flatnonzero(boundary)
    data = np.add.reduceat(probs, starts)
    indices = cols[starts].astype(np.int32, copy=False)
    indptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(
        np.bincount(rows[starts], minlength=n), out=indptr[1:], dtype=np.int32
    )
    matrix = sparse.csr_matrix((data, indices, indptr), shape=(n, n))
    transposed = matrix.T.tocsr()
    pieces = (
        np.ascontiguousarray(transposed.indptr, dtype=np.int32),
        np.ascontiguousarray(transposed.indices, dtype=np.uint16),
        np.ascontiguousarray(transposed.data, dtype=np.float32),
    )
    if sanitize.is_active():
        for piece in pieces:
            piece.setflags(write=False)
        sanitize.guard_array("fastscreen.transposed.data", pieces[2])
    return pieces


def fast_quantities(
    model: CompactModel, target: int, window_steps: int
) -> Optional[FastQuantities]:
    """The float32 screen quantities, or ``None`` when not computable."""
    if model.n_states > cnative.MAX_STATES:
        return None
    rows, cols, probs, tags = model._sorted_entries()
    if len(rows) == 0:
        return None
    n = model.n_states
    full = _transposed_csr_f32(rows, cols, probs, n)
    keep = tags != target
    excluded = _transposed_csr_f32(rows[keep], cols[keep], probs[keep], n)
    x0 = model.initial_distribution().astype(np.float32)
    dist_full32, dist_absent32 = cnative.pair_chain_f32(
        *full, *excluded, x0, window_steps
    )
    dist_full = dist_full32.astype(np.float64)
    dist_absent = dist_absent32.astype(np.float64)

    n_flows = model.context.n_flows
    coverage = model.coverage_matrix(tuple(range(n_flows)))
    base_full = np.where(dist_full > PRUNE, dist_full, 0.0)
    base_absent = np.where(dist_absent > PRUNE, dist_absent, 0.0)
    hit_full = coverage @ base_full
    miss_full = base_full.sum() - hit_full
    hit_absent = coverage @ base_absent
    miss_absent = base_absent.sum() - hit_absent
    outcome_probs = np.stack([miss_full, hit_full])
    joint_absent = np.stack([miss_absent, hit_absent])
    prior_absent = float(dist_absent.sum())
    gains = gains_from_tables(prior_absent, joint_absent, outcome_probs)

    # OutcomeTable.posterior_absent: clamp the joint into [0, p], divide;
    # 0.5 when the outcome probability is not positive.
    with np.errstate(divide="ignore", invalid="ignore"):
        post_miss = np.clip(miss_absent, 0.0, miss_full) / miss_full
        post_hit = np.clip(hit_absent, 0.0, hit_full) / hit_full
    post_miss = np.where(miss_full > 0.0, post_miss, 0.5)
    post_hit = np.where(hit_full > 0.0, post_hit, 0.5)
    return FastQuantities(
        gains=gains,
        p_hit=hit_full,
        p_miss=miss_full,
        posterior_absent_given_miss=post_miss,
        posterior_present_given_hit=1.0 - post_hit,
    )


class _Certifier:
    """Per-candidate certification state (reachability is lazy)."""

    def __init__(
        self,
        model: CompactModel,
        quantities: FastQuantities,
        target: int,
        screen: bool,
        require_optimal_differs: bool,
    ) -> None:
        self.model = model
        self.quantities = quantities
        self.target = target
        self.screen = screen
        self.require_optimal_differs = require_optimal_differs
        self._reach: Optional[np.ndarray] = None
        self._coverage: Optional[np.ndarray] = None

    def _covered_unreachable(self, flow: int, complement: bool) -> bool:
        """Whether the flow's (un)covered states carry provably no mass."""
        if self._reach is None:
            self._reach = reachable_states(self.model)
        if self._coverage is None:
            n_flows = self.model.context.n_flows
            self._coverage = self.model.coverage_matrix(
                tuple(range(n_flows))
            )
        covered = self._coverage[flow] > 0.0
        if complement:
            covered = ~covered
        return not bool((covered & self._reach).any())

    def member_rejected(self, flow: int) -> bool:
        """Would ``flow``, as the exact optimal probe, provably be rejected?"""
        if self.require_optimal_differs and flow == self.target:
            return True
        if not self.screen:
            return False
        quantities = self.quantities
        p_hit = quantities.p_hit[flow]
        p_miss = quantities.p_miss[flow]
        if p_hit <= PROB_TOL:
            # Either exactly zero (the probe can never hit: the covered
            # states are unreachable, so the screen's ``p_hit > 0``
            # conjunct fails exactly) or merely tiny, where the
            # posterior is a ratio of two sub-float32-noise sums and
            # nothing is certifiable.
            # Exact sentinel: reachability certifies only a true zero.
            return p_hit == 0.0 and self._covered_unreachable(  # repro: noqa[PY001]
                flow, complement=False
            )
        if p_miss <= PROB_TOL:
            return p_miss == 0.0 and self._covered_unreachable(  # repro: noqa[PY001]
                flow, complement=True
            )
        margin_miss = 0.5 - quantities.posterior_absent_given_miss[flow]
        margin_hit = 0.5 - quantities.posterior_present_given_hit[flow]
        return bool(
            margin_miss > POST_TOL_NUMERATOR / p_miss
            or margin_hit > POST_TOL_NUMERATOR / p_hit
        )


def screen_candidate(
    params: ExperimentParams,
    config: NetworkConfiguration,
    *,
    require_optimal_differs: bool,
) -> FastScreenOutcome:
    """Run the certified pre-pass on one sampled configuration.

    ``certified_reject=True`` is a proof obligation: the exact serial
    loop would reject this candidate.  Any uncertainty returns
    ``certified_reject=False`` together with the built model so the
    exact screen can reuse it.
    """
    obs = get_instrumentation()
    model = CompactModel(
        config.policy,
        config.universe,
        config.delta,
        config.cache_size,
        kernel=params.kernel,
    )
    if not (params.screen or require_optimal_differs):
        return FastScreenOutcome(False, model)
    with obs.phase("harness.fast_screen"), obs.span(
        "harness.fast_screen", n_flows=len(config.universe)
    ):
        quantities = fast_quantities(
            model, config.target_flow, config.window_steps
        )
        if quantities is None:
            obs.metrics.counter("experiment.fastscreen_unsupported").inc()
            return FastScreenOutcome(False, model)
        # Every flow whose float32 gain is within GAIN_TOL (+ the
        # engine's tie epsilon, absorbed by GAIN_TOL's safety factor) of
        # the float32 maximum could be the exact optimal probe; the
        # rejection must hold for all of them.
        tie_set = np.flatnonzero(
            quantities.gains >= quantities.gains.max() - GAIN_TOL
        )
        certifier = _Certifier(
            model,
            quantities,
            config.target_flow,
            params.screen,
            require_optimal_differs,
        )
        certified = all(
            certifier.member_rejected(int(flow)) for flow in tie_set
        )
    if certified:
        obs.metrics.counter("experiment.fastscreen_rejects").inc()
        return FastScreenOutcome(True, model)
    obs.metrics.counter("experiment.fastscreen_fallbacks").inc()
    return FastScreenOutcome(False, model)
