"""Per-configuration harness: model fit, probe choice, trial loop.

:class:`ConfigHarness` owns everything derived from one sampled network
configuration: the compact model, the fitted inference object, the
attacker lineup (naive / model / constrained / random), the paper's
detector-viability screen, and the trial loop producing accuracies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.attacker import (
    Attacker,
    ConstrainedModelAttacker,
    ModelAttacker,
    NaiveAttacker,
    RandomAttacker,
)
from repro.core.compact_model import CompactModel
from repro.core.engine import ScoringStats
from repro.core.inference import ReconInference
from repro.core.recency import make_estimator
from repro.deprecation import keyword_only
from repro.experiments.params import ExperimentParams
from repro.faults import FaultPlan
from repro.experiments.parallel import (
    ExecutionStats,
    plan_trials,
    run_planned_trials,
    screen_accepted_configs,
)
from repro.experiments.trials import DefenseFactory, TrialResult, run_trial
from repro.flows.config import ConfigGenerator, NetworkConfiguration
from repro.obs import get_instrumentation
from repro.simulator.timing import LatencyModel


@dataclass
class ConfigResult:
    """Aggregated trial results for one configuration."""

    config: NetworkConfiguration
    accuracies: Dict[str, float]
    trials: int
    screened: bool
    optimal_probe: int
    optimal_is_target: bool
    prior_absent: float
    n_rules_covering_target: int
    #: Whether the rule a target miss installs covers only the target
    #: (the regime where no sibling probe can see the target's tracks;
    #: see repro.analysis.structure).
    target_install_exclusive: bool = False
    trial_results: List[TrialResult] = field(default_factory=list, repr=False)

    @property
    def improvement(self) -> float:
        """Additive accuracy improvement of model over naive (Fig. 6b)."""
        return self.accuracies["model"] - self.accuracies["naive"]

    @property
    def constrained_improvement(self) -> float:
        """Constrained-model accuracy minus naive (Fig. 7 comparison)."""
        return self.accuracies["constrained"] - self.accuracies["naive"]


class ConfigHarness:
    """Everything derived from one network configuration."""

    @keyword_only
    def __init__(
        self,
        config: NetworkConfiguration,
        params: ExperimentParams,
        *,
        rng: Optional[np.random.Generator] = None,
        latency: Optional[LatencyModel] = None,
        model: Optional[CompactModel] = None,
    ) -> None:
        self.config = config
        self.params = params
        self.rng = rng if rng is not None else np.random.default_rng(params.seed)
        self.latency = latency
        obs = get_instrumentation()
        self._obs = obs

        with obs.phase("harness.model_build"), obs.span(
            "harness.model_build",
            n_flows=len(config.universe),
            cache_size=config.cache_size,
        ):
            # ``model`` lets the fast screen hand over the CompactModel
            # it already built for this configuration instead of paying
            # for a second identical build (repro.experiments.fastscreen).
            self.model = model if model is not None else CompactModel(
                config.policy,
                config.universe,
                config.delta,
                config.cache_size,
                kernel=params.kernel,
            )
            if params.estimator != "independent":
                self.model.estimator = make_estimator(
                    params.estimator, self.model.context
                )
            self.inference = ReconInference(
                self.model, config.target_flow, config.window_steps
            )

        self.naive_attacker = NaiveAttacker(config.target_flow)
        with obs.phase("harness.probe_selection"), obs.span(
            "harness.probe_selection", n_probes=params.n_probes
        ):
            self.model_attacker = ModelAttacker(
                self.inference,
                n_probes=params.n_probes,
                decision=params.decision,
                n_jobs=params.selection_n_jobs,
            )
        # Built on first use: the screens only consult the model
        # attacker's probe choice, so rejection-sampled candidates never
        # pay for the constrained selection.
        self._constrained_attacker: Optional[ConstrainedModelAttacker] = None
        self.random_attacker = RandomAttacker(
            prior_present=1.0 - self.inference.prior_absent(),
            rng=self.rng,
            mode=params.random_attacker_mode,
        )
        obs.metrics.counter("experiment.harnesses_built").inc()

    @property
    def constrained_attacker(self) -> ConstrainedModelAttacker:
        """The Figure 7 attacker, selected lazily on first use."""
        if self._constrained_attacker is None:
            with self._obs.phase("harness.probe_selection"), self._obs.span(
                "harness.probe_selection", n_probes=self.params.n_probes
            ):
                self._constrained_attacker = ConstrainedModelAttacker(
                    self.inference,
                    n_probes=self.params.n_probes,
                    decision=self.params.constrained_decision,
                    n_jobs=self.params.selection_n_jobs,
                )
        return self._constrained_attacker

    @property
    def scoring_stats(self) -> Optional[ScoringStats]:
        """Engine instrumentation from the model attacker's selection."""
        return self.model_attacker.choice.stats

    @classmethod
    def sample(
        cls,
        params: ExperimentParams,
        generator: Optional[ConfigGenerator] = None,
    ) -> "ConfigHarness":
        """Sample a fresh configuration under ``params`` and wrap it."""
        generator = generator or ConfigGenerator(params.config, seed=params.seed)
        config = generator.sample()
        return cls(config, params, rng=generator.rng)

    # ------------------------------------------------------------------
    # Paper screens
    # ------------------------------------------------------------------
    def is_screened_in(self) -> bool:
        """The Section VI-B viability screen, applied to the optimal probe."""
        from repro.experiments.screening import paper_screen

        return paper_screen(self.inference, self.model_attacker.probes[0])

    def optimal_differs_from_target(self) -> bool:
        """Figure 6's extra restriction: optimal probe != target flow."""
        return self.model_attacker.probes[0] != self.config.target_flow

    # ------------------------------------------------------------------
    # Trials
    # ------------------------------------------------------------------
    def attackers(self) -> Tuple[Attacker, ...]:
        """The standard lineup evaluated in every trial."""
        return (
            self.naive_attacker,
            self.model_attacker,
            self.constrained_attacker,
            self.random_attacker,
        )

    @keyword_only
    def run_trials(
        self,
        *,
        n_trials: Optional[int] = None,
        attackers: Optional[Sequence[Attacker]] = None,
        keep_trials: bool = False,
        defense_factory: Optional[DefenseFactory] = None,
        fault_plan: Optional[FaultPlan] = None,
        probe_retries: Optional[int] = None,
        trial_jobs: Optional[int] = None,
        execution: Optional[ExecutionStats] = None,
    ) -> ConfigResult:
        """Run the trial loop and aggregate accuracies.

        ``fault_plan`` / ``probe_retries`` override the values carried
        by ``self.params`` (used by the robustness sweep to reuse one
        set of screened harnesses across fault rates).  ``trial_jobs``
        overrides ``params.trial_jobs``; any value > 1 fans the trials
        out across a fork pool with bit-identical results
        (repro.experiments.parallel).
        """
        n_trials = n_trials if n_trials is not None else self.params.n_trials
        if fault_plan is None:
            fault_plan = self.params.fault_plan
        if probe_retries is None:
            probe_retries = self.params.probe_retries
        if trial_jobs is None:
            trial_jobs = self.params.trial_jobs
        lineup = tuple(attackers) if attackers is not None else self.attackers()
        names = [attacker.name for attacker in lineup]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                "duplicate attacker name(s) in lineup: "
                + ", ".join(duplicates)
            )
        correct = {name: 0 for name in names}
        kept: List[TrialResult] = []
        obs = self._obs
        trial_counter = obs.metrics.counter("experiment.trials")
        with obs.phase("harness.trials"):
            if trial_jobs > 1:
                with obs.span(
                    "experiment.trial_batch",
                    trials=n_trials,
                    jobs=trial_jobs,
                    mode=self.params.trial_mode,
                ):
                    plans = plan_trials(self.rng, lineup, n_trials)
                    results = run_planned_trials(
                        self.config,
                        lineup,
                        plans,
                        n_jobs=trial_jobs,
                        mode=self.params.trial_mode,
                        latency=self.latency,
                        defense_factory=defense_factory,
                        fault_plan=fault_plan,
                        probe_retries=probe_retries,
                        execution=execution,
                    )
                trial_counter.inc(n_trials)
                for trial in results:
                    for name in names:
                        if trial.correct(name):
                            correct[name] += 1
                if keep_trials:
                    kept.extend(results)
            else:
                for index in range(n_trials):
                    seed = int(self.rng.integers(2**63 - 1))
                    with obs.span(
                        "experiment.trial",
                        trial=index,
                        mode=self.params.trial_mode,
                    ):
                        trial = run_trial(
                            self.config,
                            lineup,
                            seed,
                            mode=self.params.trial_mode,
                            latency=self.latency,
                            defense_factory=defense_factory,
                            fault_plan=fault_plan,
                            probe_retries=probe_retries,
                        )
                    trial_counter.inc()
                    for name in names:
                        if trial.correct(name):
                            correct[name] += 1
                    if keep_trials:
                        kept.append(trial)
        accuracies = {
            name: count / n_trials for name, count in correct.items()
        }
        from repro.analysis.structure import target_structure

        structure = target_structure(
            self.config.policy, self.config.target_flow
        )
        return ConfigResult(
            config=self.config,
            accuracies=accuracies,
            trials=n_trials,
            screened=self.is_screened_in(),
            optimal_probe=self.model_attacker.probes[0],
            optimal_is_target=not self.optimal_differs_from_target(),
            prior_absent=self.inference.prior_absent(),
            n_rules_covering_target=len(self.config.rules_covering_target()),
            target_install_exclusive=structure.install_rule_is_exclusive,
            trial_results=kept,
        )


@keyword_only
def sample_screened_harnesses(
    params: ExperimentParams,
    n_configs: int,
    *,
    require_optimal_differs: bool = False,
    max_attempts_factor: int = 40,
    generator: Optional[ConfigGenerator] = None,
    trial_jobs: Optional[int] = None,
    execution: Optional[ExecutionStats] = None,
) -> List[ConfigHarness]:
    """Sample configurations until ``n_configs`` pass the screens.

    Mirrors the paper's procedure of restricting attention to
    configurations where the side channel can work at all
    (``screen=True`` in params), optionally also requiring the
    model-optimal probe to differ from the target (Figure 6's case
    split).  Raises ``RuntimeError`` if the acceptance rate is too low.

    With ``trial_jobs`` (or ``params.trial_jobs``) > 1 the candidate
    screening fans out across a fork pool; the accepted configurations,
    the generator's post-call state, and the exhaustion error are all
    identical to the serial loop (repro.experiments.parallel).
    """
    generator = generator or ConfigGenerator(params.config, seed=params.seed)
    if trial_jobs is None:
        trial_jobs = params.trial_jobs
    if trial_jobs > 1:
        configs = screen_accepted_configs(
            params,
            n_configs,
            require_optimal_differs=require_optimal_differs,
            max_attempts_factor=max_attempts_factor,
            generator=generator,
            n_jobs=trial_jobs,
            execution=execution,
        )
        harnesses = [
            ConfigHarness(config, params, rng=generator.rng)
            for config in configs
        ]
        if execution is not None:
            execution.harness_builds += len(harnesses)
        return harnesses
    from repro.experiments import fastscreen

    harnesses: List[ConfigHarness] = []
    attempts = 0
    max_attempts = max(1, n_configs) * max_attempts_factor
    obs = get_instrumentation()
    sampled = obs.metrics.counter("experiment.configs_sampled")
    screened_out = obs.metrics.counter("experiment.configs_screened_out")
    fast = fastscreen.supports(params)
    while len(harnesses) < n_configs:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"only {len(harnesses)}/{n_configs} configurations accepted "
                f"after {attempts} attempts; relax the screens or the "
                "absence range"
            )
        if fast:
            # Certified float32 pre-screen: rejects only when the
            # rejection is provable within calibrated error bounds, so
            # accepted harnesses (and the generator's RNG stream) are
            # bit-identical to the reference loop below.
            config = generator.sample()
            sampled.inc()
            outcome = fastscreen.screen_candidate(
                params, config, require_optimal_differs=require_optimal_differs
            )
            if outcome.certified_reject:
                screened_out.inc()
                continue
            harness = ConfigHarness(
                config, params, rng=generator.rng, model=outcome.model
            )
        else:
            harness = ConfigHarness.sample(params, generator=generator)
            sampled.inc()
        if params.screen and not harness.is_screened_in():
            screened_out.inc()
            continue
        if require_optimal_differs and not harness.optimal_differs_from_target():
            screened_out.inc()
            continue
        harnesses.append(harness)
    return harnesses
