"""Deterministic process-parallel experiment execution.

The figure pipelines aggregate hundreds of independent Monte Carlo
trials over dozens of sampled configurations; this module fans both
levels out across a fork pool while keeping every number **bit-identical
to the serial loops**:

* **trial-level** (:func:`plan_trials` + :func:`run_planned_trials`) --
  the per-trial randomness is pre-drawn in the parent from the harness
  generator in exactly the serial order (one seed integer, then one
  verdict per probeless attacker in lineup order), so the generator
  stream is untouched by the fan-out.  Workers replay the pre-drawn
  verdicts through :class:`_ScriptedAttacker` stand-ins and results are
  merged back in trial order.
* **config-level** (:func:`screen_accepted_configs`) -- the
  rejection-sampling screening loop samples candidate configurations in
  speculative batches, screens them across the pool, accepts in attempt
  order, and rewinds the generator's bit-generator state to just after
  the last *consumed* sample -- callers observe exactly the serial
  acceptance sequence and leave the generator exactly where the serial
  loop would have left it.

The plumbing reuses the scoring engine's proven patterns
(:mod:`repro.core.engine`): fork-inherited worker state (never pickled),
obs counters collected as per-worker deltas and re-emitted by the
parent (sums commute, so totals match serial), and a serial fallback on
pool death -- trials and screens are pure functions of their pre-drawn
inputs, so re-running them in the parent reproduces the identical
results.  Fallbacks are counted in :class:`ExecutionStats` and the
``experiment.pool.fallbacks`` metric.

See EXPERIMENTS.md ("Parallel execution") for the determinism contract
and the seed-stream layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.attacker import Attacker
from repro.core.engine import _fork_context
from repro.experiments.params import ExperimentParams
from repro.experiments.trials import DefenseFactory, TrialResult, run_trial
from repro.faults import FaultPlan
from repro.flows.config import ConfigGenerator, NetworkConfiguration
from repro.obs import Instrumentation, get_instrumentation, use_instrumentation
from repro.simulator.timing import LatencyModel

#: Trial chunks handed out per worker: small enough to balance load,
#: large enough to amortise task pickling.  Chunking never affects
#: results -- trials are merged back in trial order regardless.
TRIAL_CHUNKS_PER_WORKER = 4

#: Candidate configurations sampled per speculative screening batch,
#: as a multiple of the worker count.
SCREEN_BATCH_PER_WORKER = 2


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------
@dataclass
class ExecutionStats:
    """Counters and stage timings for one parallel experiment run.

    The experiment-layer sibling of
    :class:`~repro.core.engine.ScoringStats`: one instance threads
    through ``sample_screened_harnesses`` and ``run_trials`` calls and
    accumulates what the fan-out actually did.
    """

    #: Parallelism the run was configured with.
    n_jobs: int = 1
    #: Trials executed through :func:`run_planned_trials`.
    trials: int = 0
    #: Trial chunks dispatched to the pool.
    trial_chunks: int = 0
    #: Screening attempts consumed (accepted + rejected samples).
    screen_attempts: int = 0
    #: Speculative screening batches dispatched.
    screen_batches: int = 0
    #: Harnesses built in the parent from accepted configurations.
    harness_builds: int = 0
    #: Pool dispatches re-run serially after a fork-pool failure.
    pool_fallbacks: int = 0
    #: Wall-clock seconds per stage (``trials``, ``screen``).
    wall_times: Dict[str, float] = field(default_factory=dict)

    def add_time(self, stage: str, seconds: float) -> None:
        """Accumulate wall time for a named stage."""
        self.wall_times[stage] = self.wall_times.get(stage, 0.0) + seconds

    def rows(self) -> List[List[object]]:
        """``[name, value]`` rows for plain-text tables (CLI output)."""
        rows: List[List[object]] = [
            ["n_jobs", self.n_jobs],
            ["trials", self.trials],
            ["trial chunks", self.trial_chunks],
            ["screen attempts", self.screen_attempts],
            ["screen batches", self.screen_batches],
            ["harness builds", self.harness_builds],
            ["pool fallbacks", self.pool_fallbacks],
        ]
        for stage in sorted(self.wall_times):
            rows.append([f"{stage} time (s)", f"{self.wall_times[stage]:.6f}"])
        return rows


def counter_deltas(obs: Instrumentation) -> Dict[str, int]:
    """Non-zero counter totals of a worker-local backend.

    Workers install a fresh :class:`~repro.obs.Instrumentation`, so its
    totals *are* the deltas their chunk contributed; the parent re-emits
    them onto its own backend.  Counter sums commute, so the merged
    totals equal what the serial loop would have counted.
    """
    counters = obs.metrics.to_document()["counters"]
    return {name: value for name, value in counters.items() if value}  # type: ignore[union-attr]


# ----------------------------------------------------------------------
# Trial-level fan-out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialPlan:
    """Pre-drawn randomness for one trial.

    ``verdicts`` carries the scripted decision of every probeless
    attacker (``(name, verdict)`` in lineup order): those attackers may
    draw from the harness generator inside the trial, so their draws are
    made in the parent -- interleaved with the seed draws exactly as the
    serial loop interleaves them -- and replayed in the worker.
    """

    index: int
    seed: int
    verdicts: Tuple[Tuple[str, int], ...]


class _ScriptedAttacker(Attacker):
    """Replays a verdict pre-drawn by :func:`plan_trials` in the parent."""

    def __init__(self, name: str, verdict: int) -> None:
        self.name = name
        self._verdict = int(verdict)

    def plan(self) -> Tuple[int, ...]:
        return ()

    def decide(self, outcomes: Sequence[Optional[int]]) -> int:
        if outcomes:
            raise ValueError("scripted attacker sends no probes")
        return self._verdict


def plan_trials(
    rng: np.random.Generator,
    lineup: Sequence[Attacker],
    n_trials: int,
) -> List[TrialPlan]:
    """Pre-draw the randomness of ``n_trials`` trials from ``rng``.

    Consumes the generator stream exactly as the serial trial loop
    does: for each trial, one seed integer, then one ``decide(())``
    call per probeless attacker in lineup order (probing attackers
    never draw from the shared generator at trial time).  After this
    call the generator state equals the post-loop serial state, so
    later draws -- e.g. the next harness's trials -- are unaffected.
    """
    probeless = [attacker for attacker in lineup if not attacker.plan()]
    plans: List[TrialPlan] = []
    for index in range(int(n_trials)):
        seed = int(rng.integers(2**63 - 1))
        verdicts = tuple(
            (attacker.name, int(attacker.decide(())))
            for attacker in probeless
        )
        plans.append(TrialPlan(index=index, seed=seed, verdicts=verdicts))
    return plans


@dataclass
class _TrialContext:
    """Fork-inherited worker state for trial-level fan-out."""

    config: NetworkConfiguration
    lineup: Tuple[Attacker, ...]
    mode: str
    latency: Optional[LatencyModel]
    defense_factory: Optional[DefenseFactory]
    fault_plan: Optional[FaultPlan]
    probe_retries: int
    collect_counters: bool


def _scripted_lineup(
    lineup: Tuple[Attacker, ...], plan: TrialPlan
) -> Tuple[Attacker, ...]:
    verdicts = dict(plan.verdicts)
    return tuple(
        _ScriptedAttacker(attacker.name, verdicts[attacker.name])
        if attacker.name in verdicts
        else attacker
        for attacker in lineup
    )


def _run_planned_trial(context: _TrialContext, plan: TrialPlan) -> TrialResult:
    """One trial from its pre-drawn plan (worker and fallback path)."""
    return run_trial(
        context.config,
        _scripted_lineup(context.lineup, plan),
        plan.seed,
        mode=context.mode,
        latency=context.latency,
        defense_factory=context.defense_factory,
        fault_plan=context.fault_plan,
        probe_retries=context.probe_retries,
    )


_TRIAL_CONTEXT: Optional[_TrialContext] = None


def _init_trial_worker(context: _TrialContext) -> None:
    global _TRIAL_CONTEXT
    _TRIAL_CONTEXT = context


def _trial_chunk_work(
    chunk: Tuple[TrialPlan, ...],
) -> Tuple[List[TrialResult], Dict[str, int]]:
    context = _TRIAL_CONTEXT
    assert context is not None, "worker used before initialisation"
    if not context.collect_counters:
        return [_run_planned_trial(context, plan) for plan in chunk], {}
    worker_obs = Instrumentation()
    with use_instrumentation(worker_obs):
        results = [_run_planned_trial(context, plan) for plan in chunk]
    return results, counter_deltas(worker_obs)


def _trial_chunks(
    plans: Sequence[TrialPlan], n_jobs: int
) -> List[Tuple[TrialPlan, ...]]:
    size = max(1, -(-len(plans) // (n_jobs * TRIAL_CHUNKS_PER_WORKER)))
    return [
        tuple(plans[start:start + size])
        for start in range(0, len(plans), size)
    ]


def run_planned_trials(
    config: NetworkConfiguration,
    lineup: Sequence[Attacker],
    plans: Sequence[TrialPlan],
    *,
    n_jobs: int,
    mode: str = "network",
    latency: Optional[LatencyModel] = None,
    defense_factory: Optional[DefenseFactory] = None,
    fault_plan: Optional[FaultPlan] = None,
    probe_retries: int = 0,
    execution: Optional[ExecutionStats] = None,
) -> List[TrialResult]:
    """Run pre-planned trials across a fork pool, in trial order.

    Every trial is a pure function of its :class:`TrialPlan` (the
    scripted verdicts remove the only in-trial draw from the shared
    generator), so the returned ``TrialResult`` list is bit-identical
    to running the serial loop over the same plans.  If the pool dies
    -- fork failure, worker crash, an exception escaping the map -- the
    whole batch is re-run serially in the parent and counted in
    ``execution.pool_fallbacks`` / ``experiment.pool.fallbacks``.
    """
    obs = get_instrumentation()
    plans = list(plans)
    context = _TrialContext(
        config=config,
        lineup=tuple(lineup),
        mode=mode,
        latency=latency,
        defense_factory=defense_factory,
        fault_plan=fault_plan,
        probe_retries=int(probe_retries),
        collect_counters=obs.enabled,
    )
    chunks = _trial_chunks(plans, max(1, int(n_jobs)))
    if execution is not None:
        execution.trials += len(plans)
        execution.trial_chunks += len(chunks)
    started = time.perf_counter()
    try:
        jobs = min(int(n_jobs), len(chunks))
        fork = _fork_context() if jobs > 1 else None
        if fork is None:
            return [_run_planned_trial(context, plan) for plan in plans]
        try:
            with fork.Pool(
                jobs, initializer=_init_trial_worker, initargs=(context,)
            ) as pool:
                outputs = pool.map(_trial_chunk_work, chunks)
        except Exception:
            # Trials are pure given their plans; the serial re-run
            # below reproduces exactly what the pool would have
            # returned (and its counters land directly on the parent
            # backend, so totals still match serial).
            if execution is not None:
                execution.pool_fallbacks += 1
            obs.metrics.counter("experiment.pool.fallbacks").inc()
            return [_run_planned_trial(context, plan) for plan in plans]
        results: List[TrialResult] = []
        merged: Dict[str, int] = {}
        for chunk_results, deltas in outputs:
            results.extend(chunk_results)
            for name, value in deltas.items():
                merged[name] = merged.get(name, 0) + value
        if obs.enabled:
            for name in sorted(merged):
                obs.metrics.counter(name).inc(merged[name])
        return results
    finally:
        if execution is not None:
            execution.add_time("trials", time.perf_counter() - started)


# ----------------------------------------------------------------------
# Config-level fan-out (screened rejection sampling)
# ----------------------------------------------------------------------
@dataclass
class _ScreenContext:
    """Fork-inherited worker state for config-level screening."""

    params: ExperimentParams
    require_optimal_differs: bool
    collect_counters: bool


def screening_verdicts(
    params: ExperimentParams,
    config: NetworkConfiguration,
    require_optimal_differs: bool = False,
) -> Tuple[bool, bool]:
    """``(screened_in, optimal_differs)`` for one candidate configuration.

    Builds the harness with serial probe selection (a daemonic pool
    worker cannot fork children of its own; the engine's selection is
    bit-identical for every ``n_jobs``) and a throwaway seeded
    generator -- screening never draws from the harness generator.

    When the certified float32 fast screen applies
    (repro.experiments.fastscreen) and proves the candidate rejected,
    the exact harness is skipped and the verdict reports the rejection
    through whichever of the two checks is active (``(False, True)``
    under ``params.screen``, else ``(True, False)``).  The acceptance
    loop takes exactly one rejection branch either way, so accepted
    configurations, counters, and the generator stream are identical;
    only the unevaluated tuple component is conventional.
    """
    from repro.experiments import fastscreen
    from repro.experiments.harness import ConfigHarness

    model = None
    if fastscreen.supports(params):
        outcome = fastscreen.screen_candidate(
            params, config, require_optimal_differs=require_optimal_differs
        )
        if outcome.certified_reject:
            return (False, True) if params.screen else (True, False)
        model = outcome.model
    harness = ConfigHarness(
        config,
        replace(params, selection_n_jobs=1),
        rng=np.random.default_rng(0),
        model=model,
    )
    return harness.is_screened_in(), harness.optimal_differs_from_target()


_SCREEN_CONTEXT: Optional[_ScreenContext] = None


def _init_screen_worker(context: _ScreenContext) -> None:
    global _SCREEN_CONTEXT
    _SCREEN_CONTEXT = context


def _screen_work(
    config: NetworkConfiguration,
) -> Tuple[bool, bool, Dict[str, int]]:
    context = _SCREEN_CONTEXT
    assert context is not None, "worker used before initialisation"
    if not context.collect_counters:
        screened, differs = screening_verdicts(
            context.params, config, context.require_optimal_differs
        )
        return screened, differs, {}
    worker_obs = Instrumentation()
    with use_instrumentation(worker_obs):
        screened, differs = screening_verdicts(
            context.params, config, context.require_optimal_differs
        )
    return screened, differs, counter_deltas(worker_obs)


def screen_accepted_configs(
    params: ExperimentParams,
    n_configs: int,
    *,
    require_optimal_differs: bool,
    max_attempts_factor: int,
    generator: ConfigGenerator,
    n_jobs: int,
    execution: Optional[ExecutionStats] = None,
) -> List[NetworkConfiguration]:
    """The screening acceptance loop, with the screens fanned out.

    Candidates are sampled from ``generator`` in the parent (the only
    place its stream is consumed) in speculative batches; each sample's
    post-draw bit-generator state is recorded so that once the
    acceptance quota is met mid-batch, the generator is rewound to just
    after the last consumed sample.  Acceptance runs in attempt order,
    so the returned configurations -- and the generator state handed
    back to the caller -- are exactly the serial loop's.  Exhaustion
    raises the same ``RuntimeError`` the serial loop raises.

    A dead pool degrades to screening in the parent (counted once in
    ``pool_fallbacks``); already-sampled candidates keep their place in
    the attempt order, so the fallback changes nothing but wall clock.
    """
    obs = get_instrumentation()
    max_attempts = max(1, n_configs) * max_attempts_factor
    sampled = obs.metrics.counter("experiment.configs_sampled")
    screened_out = obs.metrics.counter("experiment.configs_screened_out")
    accepted: List[NetworkConfiguration] = []
    attempts = 0
    batch_size = max(SCREEN_BATCH_PER_WORKER * int(n_jobs), 4)
    started = time.perf_counter()
    pool = None
    fork = _fork_context()
    try:
        if fork is not None:
            context = _ScreenContext(
                params=params,
                require_optimal_differs=require_optimal_differs,
                collect_counters=obs.enabled,
            )
            try:
                pool = fork.Pool(
                    int(n_jobs),
                    initializer=_init_screen_worker,
                    initargs=(context,),
                )
            except Exception:
                pool = None
                if execution is not None:
                    execution.pool_fallbacks += 1
                obs.metrics.counter("experiment.pool.fallbacks").inc()
        while len(accepted) < n_configs:
            remaining = max_attempts - attempts
            if remaining <= 0:
                # Same message the serial loop raises on its
                # (max_attempts + 1)-th attempt.
                raise RuntimeError(
                    f"only {len(accepted)}/{n_configs} configurations "
                    f"accepted after {max_attempts + 1} attempts; relax "
                    "the screens or the absence range"
                )
            batch: List[NetworkConfiguration] = []
            states: List[dict] = []
            for _ in range(min(batch_size, remaining)):
                batch.append(generator.sample())
                states.append(generator.rng.bit_generator.state)
            if execution is not None:
                execution.screen_batches += 1
            verdicts: Optional[List[Tuple[bool, bool, Dict[str, int]]]] = None
            if pool is not None:
                try:
                    verdicts = pool.map(_screen_work, batch)
                except Exception:
                    pool.terminate()
                    pool = None
                    if execution is not None:
                        execution.pool_fallbacks += 1
                    obs.metrics.counter("experiment.pool.fallbacks").inc()
            if verdicts is None:
                # Parent-side screening: counters land directly on the
                # parent backend, exactly like the serial loop.
                verdicts = [
                    screening_verdicts(params, config, require_optimal_differs)
                    + ({},)
                    for config in batch
                ]
            else:
                merged: Dict[str, int] = {}
                for _, _, deltas in verdicts:
                    for name, value in deltas.items():
                        merged[name] = merged.get(name, 0) + value
                if obs.enabled:
                    for name in sorted(merged):
                        obs.metrics.counter(name).inc(merged[name])
            for position, (screened, differs, _) in enumerate(verdicts):
                attempts += 1
                sampled.inc()
                if params.screen and not screened:
                    screened_out.inc()
                    continue
                if require_optimal_differs and not differs:
                    screened_out.inc()
                    continue
                accepted.append(batch[position])
                if len(accepted) == n_configs:
                    # Rewind past the speculative tail: the generator
                    # resumes exactly where the serial loop stopped.
                    generator.rng.bit_generator.state = states[position]
                    return accepted
        return accepted
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
        if execution is not None:
            execution.screen_attempts += attempts
            execution.add_time("screen", time.perf_counter() - started)
