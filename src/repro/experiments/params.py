"""Experiment parameters (defaults = the paper's Section VI-A setup).

``ExperimentParams`` wraps the configuration-sampling parameters
(:class:`~repro.flows.config.ConfigParams`) with evaluation knobs: how
many configurations and trials, which recency estimator, whether trials
run on the full packet-level network simulation or the fast table-level
replay, and the attackers' probe budgets.

The paper runs 100 configurations x 100 trials per figure; that takes
tens of minutes here (it took a 128 GB server there), so the scale is a
parameter and the benchmark suite defaults to a reduced scale unless
``REPRO_FULL=1`` is exported.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.faults import FaultPlan
from repro.flows.config import ConfigParams


@dataclass(frozen=True)
class ExperimentParams:
    """Evaluation knobs on top of the configuration sampler."""

    config: ConfigParams = field(default_factory=ConfigParams)
    n_configs: int = 100
    n_trials: int = 100
    seed: Optional[int] = None
    #: Recency estimator: "independent", "montecarlo", or "exact".
    estimator: str = "independent"
    #: "network" = packet-level DES; "table" = fast flow-table replay.
    trial_mode: str = "network"
    n_probes: int = 1
    #: Attacker decision rule for single probes: "query" or "map".
    #: The paper's model attacker returns the query bit directly, which
    #: the viability screen makes sound for the *optimal* probe.
    decision: str = "query"
    #: Decision rule for the constrained (Figure 7) attacker.  Its probe
    #: may fail the query-viability condition (the viable probe being
    #: exactly the forbidden one), so it classifies via the posterior.
    constrained_decision: str = "map"
    #: Apply the paper's detector-viability screen to configurations.
    screen: bool = True
    random_attacker_mode: str = "sample"
    #: Processes for the probe-scoring engine's candidate fan-out
    #: (1 = in-process; results are identical for every setting).
    selection_n_jobs: int = 1
    #: Seeded fault injection applied to every trial (docs/FAULTS.md);
    #: ``None`` (and an all-zero plan) leaves trials bit-identical to
    #: the fault-free pipeline.
    fault_plan: Optional[FaultPlan] = None
    #: Probe retransmissions after an unanswered probe (``Prober``).
    probe_retries: int = 0
    #: Processes for the experiment layer's trial/config fan-out
    #: (repro.experiments.parallel; 1 = the serial loops).  Results are
    #: bit-identical for every setting -- see EXPERIMENTS.md.
    trial_jobs: int = 1
    #: Probability kernel for the compact model: "dense", "sparse", or
    #: "auto" (sparse + compiled matvecs when the ``fast`` extra is
    #: installed).  All kernels compute identical probabilities.
    kernel: str = "auto"
    #: Simulation/screening path: "reference", "fastpath", or "auto"
    #: (the fast path).  Both paths produce bit-identical experiment
    #: results -- see repro.core.simpath and DESIGN.md.
    simpath: str = "auto"

    def __post_init__(self) -> None:
        if self.n_configs < 1 or self.n_trials < 1:
            raise ValueError("n_configs and n_trials must be >= 1")
        if self.trial_mode not in ("network", "table"):
            raise ValueError(f"unknown trial mode: {self.trial_mode!r}")
        if self.n_probes < 1:
            raise ValueError("n_probes must be >= 1")
        if self.selection_n_jobs < 1:
            raise ValueError("selection_n_jobs must be >= 1")
        if self.probe_retries < 0:
            raise ValueError("probe_retries must be >= 0")
        if self.trial_jobs < 1:
            raise ValueError("trial_jobs must be >= 1")
        from repro.core.kernels import KERNEL_CHOICES
        from repro.core.simpath import SIMPATH_CHOICES

        if self.kernel not in KERNEL_CHOICES:
            raise ValueError(f"unknown kernel: {self.kernel!r}")
        if self.simpath not in SIMPATH_CHOICES:
            raise ValueError(f"unknown simpath: {self.simpath!r}")

    def with_absence_range(
        self, low: float, high: float
    ) -> "ExperimentParams":
        """Copy with the target-flow absence range replaced."""
        return replace(self, config=replace(self.config, absence_range=(low, high)))

    def scaled(self, factor: float) -> "ExperimentParams":
        """Copy with configuration and trial counts scaled down/up."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            n_configs=max(1, int(self.n_configs * factor)),
            n_trials=max(1, int(self.n_trials * factor)),
        )


def bench_scale() -> float:
    """Benchmark scale factor from the environment.

    ``REPRO_FULL=1`` runs the paper-scale experiments; ``REPRO_SCALE``
    overrides the factor directly; the default keeps each benchmark in
    the tens of seconds.
    """
    if os.environ.get("REPRO_FULL") == "1":
        return 1.0
    override = os.environ.get("REPRO_SCALE")
    if override:
        return float(override)
    return 0.08


#: Absence-probability bins for Figures 6a and 7b.  The paper samples
#: targets "for which the probability of absence is within a specific
#: range (defined by the experiment parameters)"; these ranges span the
#: x-axes of those figures.
ABSENCE_BINS: Tuple[Tuple[float, float], ...] = (
    (0.05, 0.2),
    (0.2, 0.35),
    (0.35, 0.5),
    (0.5, 0.65),
    (0.65, 0.8),
    (0.8, 0.95),
)

#: Bins where the paper's viability screen actually accepts
#: configurations at a workable rate.  With rule TTLs <= 1 s and a 15 s
#: window, `P(X̂=0 | Q=0) > 0.5` is unsatisfiable for frequent targets
#: (cache evidence decays within the TTL), so the low-absence bins of
#: :data:`ABSENCE_BINS` reject essentially everything; see
#: EXPERIMENTS.md.  The figure pipelines and CLI default to these.
VIABLE_FIG6_BINS: Tuple[Tuple[float, float], ...] = (
    (0.35, 0.65),
    (0.65, 0.95),
)
VIABLE_FIG7_BINS: Tuple[Tuple[float, float], ...] = (
    (0.35, 0.55),
    (0.55, 0.75),
    (0.75, 0.95),
)
