"""The countermeasure evaluation grid (``repro-sdn defend``).

The paper closes by *proposing* timing-channel defenses (Section
VII-B) without quantifying them.  This sweep does: one set of screened
configurations is sampled once, then every countermeasure x fault-rate
cell re-runs the full reconnaissance pipeline over **exactly the same
worlds** -- the shared config generator's bit-generator state is
snapshotted after sampling and restored before every cell, so cells
differ only in the attached defense (and the injected faults), never
in the sampled schedules or trial seeds.  That is also what makes the
grid's two contracts testable:

* the ``none`` cell (a :class:`~repro.countermeasures.noop.NoDefense`
  attached through the full factory path) is bit-identical to the
  undefended baseline (no defense object at all);
* the whole grid is bit-identical for any ``--trial-jobs N`` (the
  PR 5 parallel layer plans trial seeds from the same restored state).

Each cell reports four things:

* **attacker accuracy** per attacker in the standard lineup;
* **channel distinguishability**: hit/miss RTT populations sampled
  from fresh defended replicas, their rank AUC, a threshold ROC sweep,
  and the *effective* leakage -- the structural leakage of the rule
  set (:mod:`repro.analysis.leakage`, defense-independent) scaled by
  the binary-symmetric-channel capacity of the best threshold's error
  rate under the defense;
* **online detection**: benign and probed counter-window streams under
  the cell's defense, scored by the seeded :class:`~repro.detect.
  ReconDetector` (calibrated on the same labelled windows -- a
  supervised upper bound, docs/DEFENSES.md);
* **benign cost**: a probe-free background simulation whose defense
  object lives in the parent process (worker-side defenses are
  invisible under ``--trial-jobs``), read out as added delay seconds,
  delayed packet counts and proactively installed rules.

All auxiliary sampling (RTT pairs, detector streams, benign cost) is
keyed by ``(seed, stage, ...)`` sequence seeds with *no* cell index:
every cell, the baseline included, faces the same replica worlds, so
the only thing that varies across a row of the grid is the attached
defense itself.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.analysis.leakage import leakage_map
from repro.analysis.roc import (
    ThresholdPoint,
    roc_points,
    score_auc,
)
from repro.countermeasures.registry import DEFENSE_CHOICES, make_defense
from repro.deprecation import keyword_only
from repro.detect import CounterWindow, ReconDetector, WindowRecorder
from repro.experiments.harness import (
    ConfigHarness,
    ConfigResult,
    sample_screened_harnesses,
)
from repro.experiments.parallel import ExecutionStats
from repro.experiments.params import ExperimentParams
from repro.experiments.robustness import DEFAULT_KINDS, _VIABLE_ABSENCE
from repro.faults import FAULT_KINDS, FaultPlan
from repro.flows.arrival import sample_schedule
from repro.flows.config import NetworkConfiguration
from repro.obs import Instrumentation, get_instrumentation, use_instrumentation
from repro.simulator.network import Network
from repro.simulator.probing import Prober

if TYPE_CHECKING:
    from repro.apispec import JobSpec

#: The cell label used for the undefended control column (no defense
#: object at all -- distinct from the ``none`` defense, which attaches
#: a real :class:`~repro.countermeasures.noop.NoDefense`).
BASELINE = "baseline"

#: Defense names swept by default: the full registry.
DEFAULT_DEFENSES: Tuple[str, ...] = DEFENSE_CHOICES

#: Fault-rate grid swept by default (clean channel only; pass --rates
#: to cross defenses with faults).
DEFAULT_RATES: Tuple[float, ...] = (0.0,)

#: RTT sample pairs drawn per configuration for the ROC/leakage stage.
RTT_SAMPLES_PER_CONFIG = 4

#: Thresholds in each cell's persisted ROC sweep.
ROC_CANDIDATES = 21

#: Detector stream shape: windows per class and probes per attack
#: window (the committed fixture scenario; docs/DEFENSES.md).
DETECTOR_WINDOWS = 12
DETECTOR_WINDOW_SECONDS = 1.0
DETECTOR_PROBES_PER_WINDOW = 3

#: Metric names snapshotted per cell from the inner instrumentation.
_CELL_COUNTERS: Tuple[str, ...] = tuple(
    f"faults.injected.{kind}" for kind in FAULT_KINDS
) + (
    "attacker.probe.retries",
    "attacker.probe.unobserved",
    "engine.pool.fallbacks",
    "experiment.pool.fallbacks",
    # defense.packets_observed is deliberately NOT snapshotted: a
    # NoDefense observes packets the bare baseline never counts, and
    # the none-cell == baseline contract is exact equality.  It still
    # reaches --metrics output via the outer backend.
    "defense.packets_delayed",
    "detector.windows.scored",
    "detector.alerts",
)


@dataclass
class DefendCell:
    """One countermeasure x fault-rate evaluation."""

    defense: str
    rate: float
    #: Mean accuracy per attacker over the shared configurations.
    accuracies: Dict[str, float]
    #: P(miss RTT > hit RTT) under the defense: 1.0 = channel wide
    #: open, 0.5 = hit and miss indistinguishable by timing.
    rtt_auc: float
    #: Threshold sweep over the sampled RTT populations.
    roc: List[ThresholdPoint] = field(repr=False)
    #: Accuracy of the best threshold in the sweep.
    best_accuracy: float = 0.5
    #: Structural leakage x BSC capacity of the best threshold.
    effective_leakage_bits: float = 0.0
    #: Rank AUC of the online detector (attack vs benign windows).
    detector_auc: float = 0.5
    #: Fraction of attack windows scoring above the alert threshold.
    detector_alert_rate: float = 0.0
    #: Benign-traffic cost of the defense (probe-free simulation).
    benign_delay_seconds: float = 0.0
    benign_packets_delayed: int = 0
    benign_delay_per_packet: float = 0.0
    rules_installed: int = 0
    #: Fault/defense/detector counter totals for the cell.
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON view (tuples and dataclasses flattened)."""
        return {
            "defense": self.defense,
            "rate": self.rate,
            "accuracies": dict(self.accuracies),
            "rtt_auc": self.rtt_auc,
            "roc": [
                {
                    "threshold": point.threshold,
                    "true_hit_rate": point.true_hit_rate,
                    "false_hit_rate": point.false_hit_rate,
                    "accuracy": point.accuracy,
                }
                for point in self.roc
            ],
            "best_accuracy": self.best_accuracy,
            "effective_leakage_bits": self.effective_leakage_bits,
            "detector_auc": self.detector_auc,
            "detector_alert_rate": self.detector_alert_rate,
            "benign_delay_seconds": self.benign_delay_seconds,
            "benign_packets_delayed": self.benign_packets_delayed,
            "benign_delay_per_packet": self.benign_delay_per_packet,
            "rules_installed": self.rules_installed,
            "counters": dict(self.counters),
        }


@dataclass
class DefendResult:
    """The full grid plus the undefended baseline column."""

    defenses: Tuple[str, ...]
    rates: Tuple[float, ...]
    kinds: Tuple[str, ...]
    detector_method: str
    probe_retries: int
    #: Mean structural leakage of the sampled rule sets, in bits
    #: (defense-independent; the ceiling every cell's effective
    #: leakage is scaled from).
    structural_leakage_bits: float
    #: Grid cells in (defense-major, rate-minor) order.
    cells: List[DefendCell]
    #: Undefended control cells, one per rate.
    baseline: List[DefendCell]
    #: Per-cell trial results aligned with ``cells`` (for persistence).
    results_per_cell: List[List[ConfigResult]] = field(repr=False)
    #: Baseline trial results aligned with ``baseline``.
    baseline_results: List[List[ConfigResult]] = field(repr=False)
    #: Fan-out accounting for the run.
    execution: Optional[ExecutionStats] = field(default=None, repr=False)

    def cell(self, defense: str, rate: float) -> DefendCell:
        """The grid cell for this defense name and fault rate."""
        for candidate in self.cells:
            if candidate.defense == defense and candidate.rate == rate:
                return candidate
        raise KeyError(f"no cell for defense={defense!r} rate={rate!r}")

    def summary(self) -> Dict[str, float]:
        """Headline numbers: the clean-channel column of the grid."""
        clean = self.rates[0]
        base = self.baseline[0]
        summary: Dict[str, float] = {
            "n_defenses": float(len(self.defenses)),
            "n_rates": float(len(self.rates)),
            "n_configs": float(
                len(self.results_per_cell[0]) if self.results_per_cell else 0
            ),
            "probe_retries": float(self.probe_retries),
            "structural_leakage_bits": self.structural_leakage_bits,
            "baseline_model_accuracy": base.accuracies.get(
                "model", float("nan")
            ),
            "baseline_rtt_auc": base.rtt_auc,
            "baseline_detector_auc": base.detector_auc,
        }
        for name in self.defenses:
            cell = self.cell(name, clean)
            summary[f"model_accuracy[{name}]"] = cell.accuracies.get(
                "model", float("nan")
            )
            summary[f"rtt_auc[{name}]"] = cell.rtt_auc
            summary[f"effective_leakage_bits[{name}]"] = (
                cell.effective_leakage_bits
            )
            summary[f"detector_auc[{name}]"] = cell.detector_auc
            summary[f"benign_delay_seconds[{name}]"] = (
                cell.benign_delay_seconds
            )
        return summary


# ----------------------------------------------------------------------
# World identity: restore the shared generator between cells
# ----------------------------------------------------------------------
def _shared_generators(
    harnesses: Sequence[ConfigHarness],
) -> List[np.random.Generator]:
    """The distinct generator objects the harnesses draw trials from.

    ``sample_screened_harnesses`` hands every harness (and its random
    attacker) the *same* generator, so this is normally a one-element
    list -- but identity-dedup keeps the restore correct even if that
    sharing ever changes.
    """
    generators: List[np.random.Generator] = []
    for harness in harnesses:
        for generator in (harness.rng, harness.random_attacker._rng):
            if not any(generator is seen for seen in generators):
                generators.append(generator)
    return generators


def _snapshot_states(
    generators: Sequence[np.random.Generator],
) -> List[Dict[str, object]]:
    return [copy.deepcopy(g.bit_generator.state) for g in generators]


def _restore_states(
    generators: Sequence[np.random.Generator],
    states: Sequence[Dict[str, object]],
) -> None:
    for generator, state in zip(generators, states):
        generator.bit_generator.state = copy.deepcopy(state)


# ----------------------------------------------------------------------
# Cell metrics
# ----------------------------------------------------------------------
def _structural_leakage(harnesses: Sequence[ConfigHarness]) -> float:
    """Mean best-probe leakage at the target across the sampled worlds."""
    total = 0.0
    for harness in harnesses:
        config = harness.config
        leaks = leakage_map(
            config.policy,
            config.universe,
            config.delta,
            config.cache_size,
            config.window_steps,
            targets=(config.target_flow,),
        )
        total += leaks.get(config.target_flow, 0.0)
    return total / len(harnesses) if harnesses else 0.0


def _binary_capacity(accuracy: float) -> float:
    """Capacity of a binary symmetric channel with this accuracy.

    The best threshold turns the timing channel into one hit/miss bit
    flipped with probability ``1 - accuracy``; the usable fraction of
    the structural leakage is ``1 - H2(error)``.
    """
    error = min(max(1.0 - accuracy, 0.0), 1.0)
    if error <= 0.0 or error >= 1.0:
        return 1.0
    entropy = -(
        error * math.log2(error) + (1.0 - error) * math.log2(1.0 - error)
    )
    return max(0.0, 1.0 - entropy)


def _cell_network(
    config: NetworkConfiguration,
    defense_name: Optional[str],
    seed_parts: Sequence[int],
) -> Network:
    """A fresh defended replica keyed by a sequence seed."""
    defense = make_defense(defense_name) if defense_name is not None else None
    return Network(
        config.concrete_rules,
        config.universe,
        cache_size=config.cache_size,
        rng=np.random.default_rng(list(seed_parts)),
        defense=defense,
    )


def _sample_rtt_populations(
    harnesses: Sequence[ConfigHarness],
    defense_name: Optional[str],
    seed_parts: Sequence[int],
) -> Tuple[List[float], List[float]]:
    """Hit/miss RTT populations under this defense.

    Each sample pair runs on a fresh replica (per-burst defense budgets
    reset): a cold probe of the target takes the setup path (miss), an
    immediate second probe rides the cached rule (hit).
    """
    hit_rtts: List[float] = []
    miss_rtts: List[float] = []
    for config_index, harness in enumerate(harnesses):
        config = harness.config
        flow = config.universe.flows[config.target_flow]
        for sample in range(RTT_SAMPLES_PER_CONFIG):
            network = _cell_network(
                config,
                defense_name,
                list(seed_parts) + [config_index, sample],
            )
            prober = Prober(network)
            first = prober.measure(flow)
            second = prober.measure(flow)
            if first.observed:
                miss_rtts.append(first.rtt)
            if second.observed:
                hit_rtts.append(second.rtt)
    return hit_rtts, miss_rtts


def _rtt_roc(
    hit_rtts: Sequence[float], miss_rtts: Sequence[float]
) -> Tuple[float, List[ThresholdPoint], float]:
    """Rank AUC, threshold sweep, and best accuracy for the samples."""
    rtt_auc = score_auc(miss_rtts, hit_rtts)
    if not hit_rtts or not miss_rtts:
        return rtt_auc, [], 0.5
    low = min(min(hit_rtts), min(miss_rtts))
    high = max(max(hit_rtts), max(miss_rtts))
    if low <= 0 or high <= low:
        return rtt_auc, [], 0.5
    ratio = (high / low) ** (1.0 / (ROC_CANDIDATES - 1))
    thresholds = [low * ratio**i for i in range(ROC_CANDIDATES)]
    points = roc_points(hit_rtts, miss_rtts, thresholds)
    best = max(point.accuracy for point in points)
    return rtt_auc, points, best


def _stream_windows(
    config: NetworkConfiguration,
    defense_name: Optional[str],
    seed_parts: Sequence[int],
    probing: bool,
) -> Tuple[List[CounterWindow], float]:
    """One counter-window stream: background traffic, plus probes.

    Runs on a private obs backend so the switch/controller counters the
    :class:`WindowRecorder` reads belong to this stream alone.  The
    attack stream cycles its probes across the whole flow universe --
    with a cache smaller than the universe this thrashes the flow
    table, the probing pattern that actually works against an idle-
    timeout cache (and the one a detector must catch).  Returns the
    windows and the defense's added benign+probe delay for the stream.
    """
    window_obs = Instrumentation()
    with use_instrumentation(window_obs):
        defense = (
            make_defense(defense_name) if defense_name is not None else None
        )
        rng_schedule = np.random.default_rng(list(seed_parts) + [0])
        network = Network(
            config.concrete_rules,
            config.universe,
            cache_size=config.cache_size,
            rng=np.random.default_rng(list(seed_parts) + [1]),
            defense=defense,
        )
        horizon = DETECTOR_WINDOWS * DETECTOR_WINDOW_SECONDS
        schedule = sample_schedule(
            config.universe, horizon=horizon, rng=rng_schedule
        )
        network.schedule_arrivals(schedule)
        recorder = WindowRecorder(window_obs)
        prober = Prober(network) if probing else None
        n_flows = len(config.universe.flows)
        probe_cursor = 0
        windows: List[CounterWindow] = []
        for index in range(DETECTOR_WINDOWS):
            start = index * DETECTOR_WINDOW_SECONDS
            if prober is not None:
                step = DETECTOR_WINDOW_SECONDS / DETECTOR_PROBES_PER_WINDOW
                for probe in range(DETECTOR_PROBES_PER_WINDOW):
                    at = start + (probe + 0.5) * step
                    if network.sim.now < at:
                        network.sim.run_until(at)
                    flow = config.universe.flows[probe_cursor % n_flows]
                    probe_cursor += 1
                    prober.measure(flow)
            network.sim.run_until(start + DETECTOR_WINDOW_SECONDS)
            windows.append(recorder.cut(DETECTOR_WINDOW_SECONDS))
    added = float(getattr(defense, "delays_added", 0.0)) if defense else 0.0
    return windows, added


def _detector_metrics(
    config: NetworkConfiguration,
    defense_name: Optional[str],
    detector_method: str,
    seed_parts: Sequence[int],
    detector_seed: int,
) -> Tuple[float, float]:
    """Detector AUC and alert rate for this cell's defense.

    The detector is calibrated on the very windows it scores -- a
    deliberate supervised upper bound: if even a fully informed
    detector cannot separate the streams (AUC ~0.5), the defense has
    closed the control-channel signature, not just beaten one training
    split.
    """
    benign, _ = _stream_windows(
        config, defense_name, list(seed_parts) + [0], probing=False
    )
    attack, _ = _stream_windows(
        config, defense_name, list(seed_parts) + [1], probing=True
    )
    detector = ReconDetector(method=detector_method, seed=detector_seed)
    detector.fit(benign, attack)
    benign_scores = detector.scores(benign)
    attack_scores = detector.scores(attack)
    alert_rate = sum(
        1 for score in attack_scores if score > detector.alert_threshold
    ) / len(attack_scores)
    return score_auc(attack_scores, benign_scores), alert_rate


def _benign_cost(
    harnesses: Sequence[ConfigHarness],
    defense_name: Optional[str],
    seed_parts: Sequence[int],
) -> Tuple[float, int, float, int]:
    """Defense cost on probe-free background traffic.

    A dedicated simulation (rather than reading the trial loop's
    defenses) for two reasons: trial defenses live in worker processes
    under ``--trial-jobs``, and trial traffic includes the attacker's
    probes -- neither is the benign cost the paper talks about.
    """
    total_delay = 0.0
    total_delayed = 0
    total_rules = 0
    total_packets = 0
    for config_index, harness in enumerate(harnesses):
        config = harness.config
        network = _cell_network(
            config, defense_name, list(seed_parts) + [config_index]
        )
        schedule = sample_schedule(
            config.universe,
            horizon=config.window_seconds,
            rng=np.random.default_rng(
                list(seed_parts) + [config_index, 1]
            ),
        )
        network.schedule_arrivals(schedule)
        network.sim.run_until(config.window_seconds)
        defense = network.defense
        total_delay += float(getattr(defense, "delays_added", 0.0) or 0.0)
        total_delayed += int(getattr(defense, "packets_delayed", 0) or 0)
        total_rules += int(getattr(defense, "rules_installed", 0) or 0)
        total_packets += len(schedule)
    per_packet = total_delay / total_packets if total_packets else 0.0
    return total_delay, total_delayed, per_packet, total_rules


def _snapshot_counters(instrumentation: Instrumentation) -> Dict[str, int]:
    """Totals of the cell counters accumulated on one backend."""
    return {
        name: int(instrumentation.metrics.counter(name).value)
        for name in _CELL_COUNTERS
    }


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
@keyword_only
def run_defend(
    params: Union["JobSpec", ExperimentParams],
    *,
    defenses: Optional[Sequence[str]] = None,
    rates: Optional[Sequence[float]] = None,
    kinds: Optional[Sequence[str]] = None,
    detector: Optional[str] = None,
    configs: Optional[int] = None,
    max_attempts_factor: int = 400,
) -> DefendResult:
    """Run the countermeasure x attacker x fault-plan grid.

    The canonical input is a :class:`~repro.apispec.JobSpec` (its
    ``defense``/``detector``/``rates``/``kinds`` fields supply the grid
    unless overridden here).  Network-mode trials are required: a
    defense only exists at a simulated switch.  The screened
    configurations are sampled once and every cell -- including the
    undefended baseline -- re-trials exactly the same worlds.
    """
    from repro.apispec import coerce_spec

    spec, params = coerce_spec(
        params, experiment="defend", caller="run_defend"
    )
    if params.trial_mode != "network":
        raise ValueError(
            "the defend grid requires network-mode trials "
            f"(got trial_mode={params.trial_mode!r}); pass --mode network"
        )
    if defenses is None:
        defenses = (
            spec.defense if spec.defense is not None else DEFAULT_DEFENSES
        )
    defenses = tuple(str(name) for name in defenses)
    if not defenses:
        raise ValueError("defenses must be non-empty")
    for name in defenses:
        make_defense(name)  # validate every name eagerly
    if rates is None:
        rates = spec.rates if spec.rates is not None else DEFAULT_RATES
    rates = tuple(float(rate) for rate in rates)
    if not rates:
        raise ValueError("rates must be non-empty")
    if kinds is None:
        kinds = spec.kinds if spec.kinds is not None else DEFAULT_KINDS
    kinds = tuple(kinds)
    detector_method = (
        detector
        if detector is not None
        else (spec.detector if spec.detector is not None else "logistic")
    )
    ReconDetector(method=detector_method)  # validate eagerly
    base_plan = params.fault_plan or FaultPlan()
    base_plan.with_rate(kinds, 0.0)  # validate the kinds eagerly
    if params.config.absence_range == (0.0, 1.0):
        params = params.with_absence_range(*_VIABLE_ABSENCE)
    base_seed = params.seed if params.seed is not None else 0

    outer = get_instrumentation()
    with outer.span(
        "experiment.defend",
        defenses=",".join(defenses),
        rates=len(rates),
        detector=detector_method,
    ):
        execution = ExecutionStats(n_jobs=params.trial_jobs)
        harnesses = sample_screened_harnesses(
            params,
            configs if configs is not None else params.n_configs,
            require_optimal_differs=False,
            max_attempts_factor=max_attempts_factor,
            execution=execution,
        )
        generators = _shared_generators(harnesses)
        states = _snapshot_states(generators)
        structural = _structural_leakage(harnesses)
        detector_config = harnesses[0].config

        def run_cell(
            defense_name: Optional[str],
            label: str,
            rate: float,
        ) -> Tuple[DefendCell, List[ConfigResult]]:
            plan = base_plan.with_rate(kinds, rate)
            factory: Optional[Callable[[], object]] = None
            if defense_name is not None:
                factory = lambda: make_defense(defense_name)  # noqa: E731
            inner = Instrumentation()
            with outer.span(
                "experiment.defend.cell", defense=label, rate=rate
            ):
                _restore_states(generators, states)
                with use_instrumentation(inner):
                    bucket = [
                        harness.run_trials(
                            defense_factory=factory,
                            fault_plan=plan,
                            probe_retries=params.probe_retries,
                            execution=execution,
                        )
                        for harness in harnesses
                    ]
                    # The auxiliary stages are keyed by (seed, stage)
                    # alone -- every cell, the baseline included, faces
                    # the same replica worlds, so cells differ only in
                    # the attached defense.  (These stages attach no
                    # fault injector; the fault rate axis acts on the
                    # trial loop above.)
                    hit_rtts, miss_rtts = _sample_rtt_populations(
                        harnesses, defense_name, [base_seed, 11]
                    )
                    rtt_auc, roc, best = _rtt_roc(hit_rtts, miss_rtts)
                    detector_auc, alert_rate = _detector_metrics(
                        detector_config,
                        defense_name,
                        detector_method,
                        [base_seed, 13],
                        detector_seed=base_seed,
                    )
                    delay, delayed, per_packet, rules = _benign_cost(
                        harnesses, defense_name, [base_seed, 17]
                    )
            counters = _snapshot_counters(inner)
            observed = int(
                inner.metrics.counter("defense.packets_observed").value
            )
            if outer.enabled:
                if observed > 0:
                    outer.metrics.counter(
                        "defense.packets_observed"
                    ).inc(observed)
                for name, value in counters.items():
                    if value > 0:
                        outer.metrics.counter(name).inc(value)
            accuracies: Dict[str, float] = {}
            names = sorted(
                {name for result in bucket for name in result.accuracies}
            )
            for name in names:
                values = [
                    r.accuracies[name]
                    for r in bucket
                    if name in r.accuracies
                ]
                accuracies[name] = sum(values) / len(values)
            cell = DefendCell(
                defense=label,
                rate=rate,
                accuracies=accuracies,
                rtt_auc=rtt_auc,
                roc=roc,
                best_accuracy=best,
                effective_leakage_bits=structural
                * _binary_capacity(best),
                detector_auc=detector_auc,
                detector_alert_rate=alert_rate,
                benign_delay_seconds=delay,
                benign_packets_delayed=delayed,
                benign_delay_per_packet=per_packet,
                rules_installed=rules,
                counters=counters,
            )
            return cell, bucket

        baseline_cells: List[DefendCell] = []
        baseline_results: List[List[ConfigResult]] = []
        for rate in rates:
            cell, bucket = run_cell(None, BASELINE, rate)
            baseline_cells.append(cell)
            baseline_results.append(bucket)

        cells: List[DefendCell] = []
        results_per_cell: List[List[ConfigResult]] = []
        for defense_name in defenses:
            for rate in rates:
                cell, bucket = run_cell(defense_name, defense_name, rate)
                cells.append(cell)
                results_per_cell.append(bucket)

    return DefendResult(
        defenses=defenses,
        rates=rates,
        kinds=kinds,
        detector_method=detector_method,
        probe_retries=params.probe_retries,
        structural_leakage_bits=structural,
        cells=cells,
        baseline=baseline_cells,
        results_per_cell=results_per_cell,
        baseline_results=baseline_results,
        execution=execution,
    )
