"""The Section VI evaluation harness.

Reproduces every evaluation artifact in the paper:

* :mod:`repro.experiments.fig6` -- Figures 6a/6b (model vs naive
  attacker on configurations where the optimal probe differs from the
  target flow).
* :mod:`repro.experiments.fig7` -- Figures 7a/7b (the constrained model
  attacker vs naive and random).
* :mod:`repro.experiments.tables` -- the Section VI-A timing
  measurements and the Section IV state-count comparison.
* :mod:`repro.experiments.harness` / :mod:`repro.experiments.trials` --
  the per-configuration machinery shared by all of the above.
"""

from repro.experiments.params import ExperimentParams
from repro.experiments.harness import ConfigHarness, ConfigResult
from repro.experiments.trials import TrialResult, run_network_trial, run_table_trial
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.robustness import RobustnessResult, run_robustness
from repro.experiments.tables import timing_table, statecount_report

__all__ = [
    "ExperimentParams",
    "ConfigHarness",
    "ConfigResult",
    "TrialResult",
    "run_network_trial",
    "run_table_trial",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "RobustnessResult",
    "run_robustness",
    "timing_table",
    "statecount_report",
]
