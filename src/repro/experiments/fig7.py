"""Figure 7: the constrained model attacker.

Figure 7 drops Figure 6's "optimal probe differs from target"
restriction and instead *forbids* the model attacker from probing the
target flow even when it is the optimal choice -- the scenario where
forging the target would raise alerts or the attacker sits at the wrong
vantage point.  The attack is considered effective if it does as well
as probing the target would have (the naive attacker), and it should
beat the random attacker comfortably.

* **Figure 7a**: average accuracy vs the number of rules covering the
  target flow.
* **Figure 7b**: average accuracy vs the target's probability of
  absence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.deprecation import keyword_only
from repro.experiments.harness import (
    ConfigResult,
    sample_screened_harnesses,
)
from repro.experiments.parallel import ExecutionStats
from repro.experiments.params import VIABLE_FIG7_BINS, ExperimentParams
from repro.obs import get_instrumentation

if TYPE_CHECKING:
    from repro.apispec import JobSpec

#: Attackers plotted in Figure 7.
FIG7_ATTACKERS: Tuple[str, ...] = ("constrained", "naive", "random")


@dataclass
class Fig7Result:
    """Everything needed to print/plot Figures 7a and 7b."""

    bins: Tuple[Tuple[float, float], ...]
    results_per_bin: List[List[ConfigResult]] = field(repr=False)
    #: Fan-out accounting for the run (None on pre-parallel results).
    execution: Optional[ExecutionStats] = field(default=None, repr=False)

    def _all_results(self) -> List[ConfigResult]:
        return [r for bucket in self.results_per_bin for r in bucket]

    # ------------------------------------------------------------------
    # Figure 7a: accuracy vs number of rules covering the target
    # ------------------------------------------------------------------
    def accuracy_by_covering_count(
        self,
    ) -> Dict[int, Dict[str, float]]:
        """Mean accuracies grouped by #rules covering the target."""
        groups: Dict[int, List[ConfigResult]] = {}
        for result in self._all_results():
            groups.setdefault(result.n_rules_covering_target, []).append(result)
        table: Dict[int, Dict[str, float]] = {}
        for count, bucket in sorted(groups.items()):
            table[count] = {
                name: sum(r.accuracies[name] for r in bucket) / len(bucket)
                for name in FIG7_ATTACKERS
            }
            table[count]["n_configs"] = float(len(bucket))
        return table

    # ------------------------------------------------------------------
    # Figure 7b: accuracy vs probability of absence
    # ------------------------------------------------------------------
    def accuracy_series(self) -> Dict[str, List[Optional[float]]]:
        """Per-absence-bin mean accuracy for the three attackers."""
        series: Dict[str, List[Optional[float]]] = {
            name: [] for name in FIG7_ATTACKERS
        }
        for bucket in self.results_per_bin:
            for name in series:
                if bucket:
                    series[name].append(
                        sum(r.accuracies[name] for r in bucket) / len(bucket)
                    )
                else:
                    series[name].append(None)
        return series

    def bin_centers(self) -> List[float]:
        """Midpoints of the absence-probability bins."""
        return [(low + high) / 2 for low, high in self.bins]

    # ------------------------------------------------------------------
    # Sharing-structure split (explains the constrained-naive gap)
    # ------------------------------------------------------------------
    def accuracy_by_sharing(self) -> Dict[str, Dict[str, float]]:
        """Mean accuracies split by the target's rule-sharing regime.

        ``"shared"``: the target's install rule also covers other flows,
        so sibling probes carry its cache signal -- the constrained
        attacker can match naive.  ``"exclusive"``: the install rule is
        a microflow; no admissible probe sees the target's tracks and
        the constrained attacker falls back to the prior.
        """
        groups: Dict[str, List[ConfigResult]] = {"shared": [], "exclusive": []}
        for result in self._all_results():
            key = (
                "exclusive" if result.target_install_exclusive else "shared"
            )
            groups[key].append(result)
        table: Dict[str, Dict[str, float]] = {}
        for key, bucket in groups.items():
            if not bucket:
                continue
            table[key] = {
                name: sum(r.accuracies[name] for r in bucket) / len(bucket)
                for name in FIG7_ATTACKERS
            }
            table[key]["n_configs"] = float(len(bucket))
        return table

    def summary(self) -> Dict[str, float]:
        """Mean accuracies pooled over all configurations."""
        results = self._all_results()
        summary = {
            name: sum(r.accuracies[name] for r in results) / len(results)
            for name in FIG7_ATTACKERS
        }
        summary["n_configs"] = float(len(results))
        summary["constrained_minus_naive"] = (
            summary["constrained"] - summary["naive"]
        )
        return summary


@keyword_only
def run_fig7(
    params: Union["JobSpec", ExperimentParams],
    *,
    bins: Sequence[Tuple[float, float]] = VIABLE_FIG7_BINS,
    configs_per_bin: Optional[int] = None,
    max_attempts_factor: int = 150,
) -> Fig7Result:
    """Run the Figure 7 experiment (viability screen only).

    The canonical input is a :class:`~repro.apispec.JobSpec`; a bare
    :class:`ExperimentParams` still works for one release (with a
    ``DeprecationWarning``).
    """
    from repro.apispec import coerce_spec
    from repro.countermeasures.registry import single_defense_factory

    spec, params = coerce_spec(params, experiment="fig7", caller="run_fig7")
    defense_factory = single_defense_factory(
        spec.defense, caller="run_fig7"
    )
    bins = tuple(bins)
    per_bin = configs_per_bin or max(1, params.n_configs // len(bins))
    results: List[List[ConfigResult]] = []
    obs = get_instrumentation()
    execution = ExecutionStats(n_jobs=params.trial_jobs)
    for low, high in bins:
        bin_params = params.with_absence_range(low, high)
        with obs.span("experiment.fig7.bin", low=low, high=high):
            harnesses = sample_screened_harnesses(
                bin_params,
                per_bin,
                require_optimal_differs=False,
                max_attempts_factor=max_attempts_factor,
                execution=execution,
            )
            bucket = [
                harness.run_trials(
                    defense_factory=defense_factory, execution=execution
                )
                for harness in harnesses
            ]
        results.append(bucket)
    return Fig7Result(bins=bins, results_per_bin=results, execution=execution)
