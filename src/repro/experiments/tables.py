"""The paper's tabular measurements.

* :func:`timing_table` -- the Section VI-A latency characterisation:
  mean and standard deviation of the attacker's observed response time
  with and without a covering rule cached, versus the paper's measured
  values, plus the achievable threshold-classification accuracy.
* :func:`statecount_report` -- the Section IV-A2 / IV-B state-space
  comparison, including the paper's worked example.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.statecount import (
    basic_state_count_uniform,
    compact_state_count,
)
from repro.flows.config import enumerate_mask_rules
from repro.flows.flowid import FlowId, str_to_ip
from repro.flows.universe import FlowUniverse
from repro.simulator.network import Network
from repro.simulator.probing import Prober
from repro.simulator.timing import (
    DEFAULT_THRESHOLD_SECONDS,
    PAPER_HIT_MEAN,
    PAPER_HIT_STD,
    PAPER_MISS_MEAN,
    PAPER_MISS_STD,
    LatencyModel,
)


@dataclass(frozen=True)
class TimingRow:
    """One latency population: measured vs paper statistics (seconds)."""

    label: str
    mean: float
    std: float
    paper_mean: float
    paper_std: float
    samples: int


def timing_table(
    n_samples: int = 300,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    threshold: float = DEFAULT_THRESHOLD_SECONDS,
) -> Dict[str, object]:
    """Measure the hit/miss latency populations on the simulator.

    Reproduces the Section VI-A measurement: a single reactive rule is
    repeatedly allowed to expire, probed cold (miss, controller round
    trip) and immediately probed again warm (hit).  Returns the two
    :class:`TimingRow` populations and the threshold-classification
    accuracy at the paper's 1 ms cut.
    """
    base_rule = next(
        rule for rule in enumerate_mask_rules() if rule.name == "r_m0_000"
    )
    rules = [replace(base_rule, priority=1000, idle_timeout=1.0)]
    flows = tuple(
        FlowId(src=str_to_ip("10.0.1.0") + i, dst=str_to_ip("10.0.1.16"))
        for i in range(16)
    )
    universe = FlowUniverse(flows, tuple([0.0] * 16))
    network = Network(
        rules,
        universe,
        cache_size=6,
        latency=latency,
        rng=np.random.default_rng(seed),
    )
    prober = Prober(network, threshold=threshold)
    probe_flow = flows[0]

    miss_rtts: List[float] = []
    hit_rtts: List[float] = []
    for _ in range(n_samples):
        network.sim.run_until(network.sim.now + 2.0)  # let the rule expire
        miss = prober.measure(probe_flow)
        hit = prober.measure(probe_flow)
        if miss.rtt is not None:
            miss_rtts.append(miss.rtt)
        if hit.rtt is not None:
            hit_rtts.append(hit.rtt)

    correct = sum(1 for rtt in hit_rtts if rtt < threshold) + sum(
        1 for rtt in miss_rtts if rtt >= threshold
    )
    total = len(hit_rtts) + len(miss_rtts)

    return {
        "hit": TimingRow(
            label="covering rule cached",
            mean=statistics.mean(hit_rtts),
            std=statistics.pstdev(hit_rtts),
            paper_mean=PAPER_HIT_MEAN,
            paper_std=PAPER_HIT_STD,
            samples=len(hit_rtts),
        ),
        "miss": TimingRow(
            label="rule setup required",
            mean=statistics.mean(miss_rtts),
            std=statistics.pstdev(miss_rtts),
            paper_mean=PAPER_MISS_MEAN,
            paper_std=PAPER_MISS_STD,
            samples=len(miss_rtts),
        ),
        "threshold": threshold,
        "threshold_accuracy": correct / total if total else 0.0,
    }


def statecount_report(
    n_rules: int = 12,
    timeout: int = 10,
    cache_size: int = 6,
) -> Dict[str, object]:
    """The basic-vs-compact state-space comparison.

    Defaults are the evaluation's parameters (12 rules, cache 6, the
    largest TTL in the menu at ``Delta = 0.1``); also includes the
    paper's Section IV-A2 worked example (10 rules, t=100, n=8) with
    both the formula's value and the figure the paper quotes.
    """
    return {
        "experiment": {
            "n_rules": n_rules,
            "timeout": timeout,
            "cache_size": cache_size,
            "basic": basic_state_count_uniform(n_rules, timeout, cache_size),
            "compact": compact_state_count(n_rules, cache_size),
        },
        "paper_example": {
            "n_rules": 10,
            "timeout": 100,
            "cache_size": 8,
            "basic_formula": basic_state_count_uniform(10, 100, 8),
            "paper_quoted": 5.9e7,
        },
    }
