"""Plain-text rendering of experiment results.

Every benchmark prints its figure/table through these helpers so the
output reads like the paper's artifacts: labelled series for figures,
aligned columns for tables, and explicit paper-vs-measured rows where
the paper reports absolute numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def format_series(
    x_label: str,
    x_values: Sequence[Number],
    series: Dict[str, Sequence[Optional[Number]]],
    title: Optional[str] = None,
) -> str:
    """Render figure series as a table with one row per x value."""
    headers = [x_label] + list(series.keys())
    rows = []
    for index, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            row.append(series[name][index])
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_cdf(
    points: Sequence[Tuple[float, float]],
    title: Optional[str] = None,
    max_points: int = 25,
) -> str:
    """Render CDF step points, thinned to at most ``max_points`` rows."""
    if len(points) > max_points:
        stride = len(points) / max_points
        thinned = [points[int(i * stride)] for i in range(max_points)]
        if thinned[-1] != points[-1]:
            thinned.append(points[-1])
        points = thinned
    return format_table(
        ["value", "P(X <= value)"], [list(p) for p in points], title=title
    )


def paper_vs_measured(
    rows: Sequence[Tuple[str, Number, Number]],
    title: Optional[str] = None,
) -> str:
    """Three-column comparison: metric, paper value, measured value."""
    table_rows = []
    for label, paper, measured in rows:
        ratio: object
        try:
            ratio = measured / paper if paper else None
        except TypeError:  # non-numeric placeholder
            ratio = None
        table_rows.append([label, paper, measured, ratio])
    return format_table(
        ["metric", "paper", "measured", "ratio"], table_rows, title=title
    )
