"""Rule-structure transformation (Section VII-B3).

"Another defense might transform the rule structure by merging or
splitting rules, increasing the uncertainty that the adversary faces
after probing (our Markov model can serve as a tool to measure the
information leakage of the rule structure), while maintaining the same
functionality as the original rule policies."

In the paper's setting every rule forwards to the same server, so any
merge or split of the covered flow sets preserves functionality; what
changes is how much a probe's hit/miss bit reveals.  This module
provides the transformations and the leakage metric:

* :func:`split_to_microflows` -- the finest structure: one rule per
  covered flow (maximum leakage: each probe pinpoints one flow).
* :func:`merge_rule_pair` / :func:`merge_to_coarse` -- coarsen the
  structure by merging rules, sharing one cache entry among more flows.
* :func:`policy_leakage` -- the attacker's best single-probe
  information gain about a target flow under a given structure; the
  quantity a defender would minimise subject to rule-count budgets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.compact_model import CompactModel
from repro.core.inference import ReconInference
from repro.core.selection import best_single_probe
from repro.flows.policy import ModelRule, Policy
from repro.flows.universe import FlowUniverse


def _reindex(rules: Sequence[ModelRule]) -> Policy:
    """Rebuild a policy from rules, re-ranking priorities densely."""
    ordered = sorted(rules, key=lambda r: -r.priority)
    rebuilt = [
        ModelRule(
            index=rank,
            name=rule.name,
            flows=rule.flows,
            timeout_steps=rule.timeout_steps,
            priority=1000 - rank,
            hard=rule.hard,
        )
        for rank, rule in enumerate(ordered)
    ]
    return Policy(rebuilt)


def split_to_microflows(policy: Policy) -> Policy:
    """One rule per covered flow (the finest-grained structure).

    Each microflow rule inherits the timeout of the rule that would have
    been installed for that flow (the highest-priority covering rule),
    so cache pressure stays comparable.
    """
    rules: List[ModelRule] = []
    for flow in sorted(policy.covered_flows()):
        source = policy[policy.highest_covering(flow)]
        rules.append(
            ModelRule(
                index=len(rules),
                name=f"micro_f{flow}",
                flows=frozenset({flow}),
                timeout_steps=source.timeout_steps,
                priority=1000 - len(rules),
                hard=source.hard,
            )
        )
    return Policy(rules)


def merge_rule_pair(policy: Policy, first: int, second: int) -> Policy:
    """Merge two rules into one covering the union of their flows.

    The merged rule takes the higher of the two priorities and the
    longer timeout (so no previously covered flow loses residency), and
    keeps a combined name for traceability.
    """
    if first == second:
        raise ValueError("cannot merge a rule with itself")
    rule_a, rule_b = policy[first], policy[second]
    merged = ModelRule(
        index=0,  # re-ranked below
        name=f"{rule_a.name}+{rule_b.name}",
        flows=rule_a.flows | rule_b.flows,
        timeout_steps=max(rule_a.timeout_steps, rule_b.timeout_steps),
        priority=max(rule_a.priority, rule_b.priority),
        hard=rule_a.hard and rule_b.hard,
    )
    remaining = [
        rule for rule in policy if rule.index not in (first, second)
    ]
    return _reindex(remaining + [merged])


def merge_to_coarse(policy: Policy, target_rules: int) -> Policy:
    """Greedily merge the most-overlapping rule pairs down to a budget.

    At each step the pair sharing the most flows (ties: smallest union,
    then lowest indices) is merged; with no overlapping pairs left, the
    two smallest rules merge.  Stops at ``target_rules`` rules.
    """
    if target_rules < 1:
        raise ValueError("target_rules must be >= 1")
    current = policy
    while len(current) > target_rules:
        best_pair = None
        best_key = None
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                overlap = len(current[i].flows & current[j].flows)
                union = len(current[i].flows | current[j].flows)
                key = (-overlap, union, i, j)
                if best_key is None or key < best_key:
                    best_key = key
                    best_pair = (i, j)
        assert best_pair is not None
        current = merge_rule_pair(current, *best_pair)
    return current


def policy_leakage(
    policy: Policy,
    universe: FlowUniverse,
    delta: float,
    cache_size: int,
    target_flow: int,
    window_steps: int,
    candidates: Optional[Sequence[int]] = None,
) -> float:
    """Best single-probe information gain under a rule structure.

    This is the paper's suggested use of the model as a defensive
    leakage meter: the defender computes, for a sensitive target flow,
    how many bits the optimal probe would reveal, and compares rule
    structures on that number.
    """
    model = CompactModel(policy, universe, delta, cache_size)
    inference = ReconInference(model, target_flow, window_steps)
    return best_single_probe(inference, candidates=candidates).gain
