"""The null countermeasure: a defense that defends nothing.

``NoDefense`` exists so the defend grid (``repro-sdn defend``) can
carry an explicit "undefended" cell through exactly the same code path
as every real defense -- same factory, same attach call, same hooks --
which is what makes the grid's bit-identity contract testable: a
network with ``NoDefense`` attached must produce byte-for-byte the same
trial results as a network with no defense at all.  Both hooks are the
:class:`~repro.countermeasures.base.Defense` defaults (observe is a
no-op, ``forward_delay`` returns 0.0), and attach stores nothing, so
the simulator's RNG draw sequence is untouched.
"""

from __future__ import annotations

from repro.countermeasures.base import Defense


class NoDefense(Defense):
    """Attachable no-op: the grid's undefended control cell."""

    name = "none"
