"""Defense registry: names accepted by ``--defenses`` and ``JobSpec``.

One constructor per named defense, all zero-argument (grid cells must
be reconstructible from the name alone so a :class:`~repro.apispec.
JobSpec` stays the complete provenance record).  Structural transforms
(:mod:`repro.countermeasures.transform`) operate on policies, not live
networks, so they are not registered here.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.countermeasures.base import Defense
from repro.countermeasures.delay import DelayDefense
from repro.countermeasures.noop import NoDefense
from repro.countermeasures.proactive import ProactiveDefense

_FACTORIES: Dict[str, Callable[[], Defense]] = {
    "none": NoDefense,
    "delay": DelayDefense,
    "proactive": ProactiveDefense,
}

#: Valid ``--defenses`` / ``JobSpec.defense`` names, in grid order.
DEFENSE_CHOICES: Tuple[str, ...] = tuple(_FACTORIES)


def make_defense(name: str) -> Defense:
    """A fresh defense instance for this registered name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown defense {name!r}; choose from "
            f"{', '.join(DEFENSE_CHOICES)}"
        ) from None
    return factory()


def single_defense_factory(
    defense: Optional[Sequence[str]], *, caller: str
) -> Optional[Callable[[], Defense]]:
    """A per-trial factory for a spec carrying one defense name.

    The non-grid runners (fig6/fig7/reproduce) evaluate a single
    defense per run; the defend grid is the place for several at once.
    ``None`` stays ``None`` -- the undefended legacy path, not even a
    :class:`~repro.countermeasures.noop.NoDefense` attach.
    """
    if defense is None:
        return None
    names = tuple(defense)
    if len(names) != 1:
        raise ValueError(
            f"{caller} runs one defense at a time, got {len(names)} "
            f"({', '.join(names)}); use `repro-sdn defend` for a grid"
        )
    name = names[0]
    make_defense(name)  # validate the name eagerly, not per trial
    return lambda: make_defense(name)
