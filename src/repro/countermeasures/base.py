"""Defense interface used by the network simulator.

A defense is attached to exactly one :class:`~repro.simulator.network.
Network` (defenses carry per-network state such as per-flow packet
counters) and may hook two points:

* :meth:`Defense.attach` -- one-time setup when the network is built
  (e.g. proactively installing rules);
* :meth:`Defense.forward_delay` -- extra delay added on the cache-hit
  fast path (the miss path is already slow, so delaying hits is what
  hides the side channel).
"""

from __future__ import annotations

from abc import ABC
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.messages import Packet
    from repro.simulator.network import Network
    from repro.simulator.switch import Switch


class Defense(ABC):
    """Base class for switch-side defenses."""

    #: Short identifier used in result tables.
    name: str = "defense"

    def attach(self, network: "Network") -> None:
        """One-time setup hook; default does nothing."""

    def observe(self, switch: "Switch", packet: "Packet") -> None:
        """Called for every packet entering a switch; default no-op.

        Lets defenses track per-flow state (e.g. packet counts) across
        both the hit and the miss path.
        """

    def forward_delay(self, switch: "Switch", packet: "Packet") -> float:
        """Extra hit-path delay in seconds; default none."""
        return 0.0
