"""Defenses against the reconnaissance attack (Section VII-B).

Three countermeasures the paper proposes, each implemented and
measurable against the full attack pipeline:

* :mod:`repro.countermeasures.delay` -- delay the first packets of every
  flow even on a cache hit, hiding the hit/miss latency gap (Cui et
  al.'s mitigation).
* :mod:`repro.countermeasures.proactive` -- install the whole policy
  proactively so probes never observe a setup round trip.
* :mod:`repro.countermeasures.transform` -- restructure the rule set
  (merge toward coarse rules, split toward microflows) and quantify the
  leakage of each structure with the paper's own model, "a tool to
  measure the information leakage of the rule structure".
"""

from repro.countermeasures.base import Defense
from repro.countermeasures.delay import DelayDefense
from repro.countermeasures.noop import NoDefense
from repro.countermeasures.proactive import ProactiveDefense
from repro.countermeasures.registry import DEFENSE_CHOICES, make_defense
from repro.countermeasures.transform import (
    merge_rule_pair,
    merge_to_coarse,
    policy_leakage,
    split_to_microflows,
)

__all__ = [
    "DEFENSE_CHOICES",
    "Defense",
    "DelayDefense",
    "NoDefense",
    "ProactiveDefense",
    "make_defense",
    "merge_rule_pair",
    "merge_to_coarse",
    "split_to_microflows",
    "policy_leakage",
]
