"""The first-packets delay defense (Section VII-B1).

"Switches can delay the first few packets of each flow, even if the flow
matches an existing rule in the switch, to hide that it did so" (after
Cui et al. [9]).  The defense tracks, per flow identifier at the
reactive switch, how many packets have been seen since the flow was last
quiet; the first ``first_k`` packets of each burst are delayed by a
sample from the same distribution as the controller setup time, making
hit and miss timings indistinguishable to the prober.

The cost the paper notes -- added buffering and delay for legitimate
first packets -- is directly measurable here via
:attr:`DelayDefense.delays_added`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.countermeasures.base import Defense
from repro.flows.flowid import FlowId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.messages import Packet
    from repro.simulator.network import Network
    from repro.simulator.switch import Switch


class DelayDefense(Defense):
    """Delay the first ``first_k`` packets of each flow on hits."""

    name = "delay"

    def __init__(
        self,
        first_k: int = 2,
        delay_mean: float = 3.6e-3,
        delay_std: float = 1.8e-3,
        quiet_reset: float = 1.0,
    ) -> None:
        if first_k < 1:
            raise ValueError("first_k must be >= 1")
        if delay_mean < 0 or delay_std < 0 or quiet_reset <= 0:
            raise ValueError("delays must be non-negative, reset positive")
        self.first_k = first_k
        self.delay_mean = delay_mean
        self.delay_std = delay_std
        self.quiet_reset = quiet_reset
        #: flow -> (packets seen in current burst, last packet time).
        self._seen: Dict[FlowId, Tuple[int, float]] = {}
        #: flow -> {packet identity -> burst position}.  A retransmitted
        #: probe keeps its probe id, so it must keep its burst position:
        #: an in-budget packet is padded on *every* attempt, and a
        #: retransmission never consumes fresh budget.
        self._burst_slots: Dict[FlowId, Dict[Tuple[str, int], int]] = {}
        #: Total artificial delay added (the defense's cost metric).
        self.delays_added = 0.0
        self.packets_delayed = 0
        self._network: "Network" = None  # type: ignore[assignment]
        #: Own stream, spawned off the network's seed tree at attach:
        #: drawing from ``network.rng`` directly would interleave the
        #: defense's samples with the simulator's (SEED102).
        self._rng: Optional[np.random.Generator] = None

    def attach(self, network: "Network") -> None:
        self._network = network
        self._rng = network.rng.spawn(1)[0]

    def _participates(self, switch: "Switch", packet: "Packet") -> bool:
        """Only reactively handled flows at the ingress are defended.

        The side channel exists only for traffic that can trigger rule
        setup; delaying reply/transit traffic carried by permanent rules
        would be pure cost with no leakage to hide.
        """
        return (
            switch.reactive
            and packet.flow.dst in self._network.monitored_dsts
        )

    def observe(self, switch: "Switch", packet: "Packet") -> None:
        # Count every packet of the flow at the reactive switch -- the
        # miss packet that triggers rule setup is the flow's first
        # packet and consumes part of the first_k budget (it is already
        # slow, so it needs no artificial delay).
        if not self._participates(switch, packet):
            return
        now = self._network.sim.now
        count, last = self._seen.get(packet.flow, (0, -float("inf")))
        slots = self._burst_slots.setdefault(packet.flow, {})
        if now - last > self.quiet_reset:
            count = 0  # the flow went quiet; its next packets are "first"
            slots.clear()
        identity = self._packet_identity(packet)
        if identity in slots:
            # A retransmission of a packet already counted this burst:
            # refresh the burst clock, but consume no fresh budget.
            self._seen[packet.flow] = (count, now)
            return
        count += 1
        slots[identity] = count
        self._seen[packet.flow] = (count, now)

    @staticmethod
    def _packet_identity(packet: "Packet") -> Tuple[str, int]:
        """Stable identity across retransmissions of the same probe.

        Probe ids and packet ids are separate counters, so the two
        namespaces are kept apart to avoid accidental slot sharing.
        """
        if packet.probe_id is not None:
            return ("probe", int(packet.probe_id))
        return ("data", int(packet.packet_id))

    def forward_delay(self, switch: "Switch", packet: "Packet") -> float:
        if not self._participates(switch, packet):
            return 0.0
        count, _ = self._seen.get(packet.flow, (1, 0.0))
        slots = self._burst_slots.get(packet.flow, {})
        position = slots.get(self._packet_identity(packet), count)
        if position > self.first_k:
            return 0.0
        assert self._rng is not None, "attach() must run before forwarding"
        delay = float(self._rng.normal(self.delay_mean, self.delay_std))
        delay = max(delay, self.delay_mean * 0.1)
        self.delays_added += delay
        self.packets_delayed += 1
        return delay
