"""The proactive rule-setup defense (Section VII-B2).

"The controller can proactively install all rules on the switch during
the setup phase (if there is capacity).  Since the matching rules are
always in the switch, the attacker cannot infer any information through
probing."

Attaching :class:`ProactiveDefense` enlarges the reactive switch's table
to fit the whole policy, installs every rule permanently, and marks the
network so the controller never installs reactively.  Every probe then
measures a hit, so ``Q_f = 1`` always and the side channel carries zero
information -- the outcome the countermeasure benchmark verifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.countermeasures.base import Defense

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.network import Network


class ProactiveDefense(Defense):
    """Install the full policy permanently at network setup."""

    name = "proactive"

    def __init__(self) -> None:
        self.rules_installed = 0

    def attach(self, network: "Network") -> None:
        switch = network.ingress_switch
        # Make room: the defense presumes the table has capacity for the
        # whole policy (the paper's explicit precondition).
        switch.table.capacity += len(network.policy_rules)
        self.rules_installed = network.controller.proactive_install_all(
            switch.name
        )
        network.proactive_defense_active = True
