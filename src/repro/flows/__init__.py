"""Flow identifiers, wildcard rules, policies, and traffic models.

This subpackage provides the vocabulary shared by the analytic Markov
models (:mod:`repro.core`) and the discrete-event network simulator
(:mod:`repro.simulator`):

* :mod:`repro.flows.flowid` -- 5-tuple flow identifiers and IPv4 helpers.
* :mod:`repro.flows.rules` -- concrete OpenFlow-style match rules with
  value/mask wildcards, priorities, and timeouts.
* :mod:`repro.flows.policy` -- abstract policies: rules viewed purely as
  sets of flow identifiers with a priority total order, as in Section IV
  of the paper.
* :mod:`repro.flows.universe` -- the finite flow universe with Poisson
  rates known (or estimated) by the attacker.
* :mod:`repro.flows.arrival` -- Poisson arrival schedule generation.
* :mod:`repro.flows.config` -- the Section VI-A "network configuration"
  generator (random rules, rates, TTLs, and target flow).
"""

from repro.flows.flowid import FlowId, ip_to_str, str_to_ip
from repro.flows.rules import Match, Rule, RuleTable
from repro.flows.policy import ModelRule, Policy
from repro.flows.universe import FlowUniverse
from repro.flows.arrival import PoissonArrivalProcess, merge_schedules
from repro.flows.config import (
    NetworkConfiguration,
    ConfigGenerator,
    enumerate_mask_rules,
)

__all__ = [
    "FlowId",
    "ip_to_str",
    "str_to_ip",
    "Match",
    "Rule",
    "RuleTable",
    "ModelRule",
    "Policy",
    "FlowUniverse",
    "PoissonArrivalProcess",
    "merge_schedules",
    "NetworkConfiguration",
    "ConfigGenerator",
    "enumerate_mask_rules",
]
