"""The finite flow universe and the attacker's rate knowledge.

The paper's threat model (Section III-C) grants the attacker estimates of
the Poisson parameter ``lambda_f`` for every flow ``f`` in the network (or
flow *class* -- see footnote 3 of the paper).  :class:`FlowUniverse`
bundles the finite list of flow identifiers with those rates and provides
the per-step arrival probabilities the Markov models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.flows.flowid import FlowId


@dataclass(frozen=True)
class FlowUniverse:
    """A finite set of flows with Poisson arrival rates.

    ``rates[i]`` is ``lambda_f`` (arrivals per second) for ``flows[i]``.
    The models reference flows by index throughout.
    """

    flows: Tuple[FlowId, ...]
    rates: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.flows) != len(self.rates):
            raise ValueError("flows and rates must have equal length")
        if len(set(self.flows)) != len(self.flows):
            raise ValueError("duplicate flow identifiers in universe")
        for rate in self.rates:
            if rate < 0:
                raise ValueError(f"negative Poisson rate: {rate}")

    @classmethod
    def create(
        cls, pairs: Iterable[Tuple[FlowId, float]]
    ) -> "FlowUniverse":
        """Build a universe from ``(flow, rate)`` pairs."""
        pair_list = list(pairs)
        return cls(
            flows=tuple(flow for flow, _ in pair_list),
            rates=tuple(rate for _, rate in pair_list),
        )

    def __len__(self) -> int:
        return len(self.flows)

    def index_of(self, flow: FlowId) -> int:
        """Index of ``flow`` in the universe (raises ``ValueError`` if absent)."""
        return self.flows.index(flow)

    def rate_of(self, flow: FlowId) -> float:
        """Poisson rate of a flow identified by its :class:`FlowId`."""
        return self.rates[self.index_of(flow)]

    @property
    def total_rate(self) -> float:
        """Aggregate arrival rate ``Lambda`` across all flows."""
        return float(sum(self.rates))

    def step_rates(self, delta: float) -> List[float]:
        """Per-step expected arrivals ``lambda_f * Delta`` for each flow."""
        if delta <= 0:
            raise ValueError("delta must be positive")
        return [rate * delta for rate in self.rates]

    def rate_map(self) -> Dict[FlowId, float]:
        """Mapping from flow identifier to rate."""
        return dict(zip(self.flows, self.rates))

    def with_rates(self, rates: Sequence[float]) -> "FlowUniverse":
        """A copy of this universe with replaced rates (same flows)."""
        return FlowUniverse(self.flows, tuple(rates))
