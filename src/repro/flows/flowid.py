"""Flow identifiers.

The paper (Section IV) identifies a flow by its IP header 5-tuple: source
and destination addresses and ports, plus the transport protocol.  The
evaluation (Section VI-A) then distinguishes flows by source address only
(16 hosts, one server, ICMP echo), but the library keeps the general
5-tuple form so that rules can match on any combination of fields.

IPv4 addresses are carried as plain ``int`` (host byte order) for cheap
mask arithmetic; :func:`ip_to_str` / :func:`str_to_ip` convert to and from
dotted-quad notation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Conventional IANA protocol numbers used throughout the library.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_PROTO_NAMES = {PROTO_ICMP: "icmp", PROTO_TCP: "tcp", PROTO_UDP: "udp"}


def str_to_ip(dotted: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    >>> str_to_ip("10.0.1.5")
    167772421
    """
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def ip_to_str(value: int) -> str:
    """Render an integer IPv4 address as a dotted quad.

    >>> ip_to_str(167772421)
    '10.0.1.5'
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class FlowId:
    """An immutable IP 5-tuple identifying a flow.

    Ports are 0 for protocols without ports (e.g. ICMP); this matches how
    OpenFlow match fields treat absent L4 fields.
    """

    src: int
    dst: int
    proto: int = PROTO_ICMP
    sport: int = 0
    dport: int = 0

    def __post_init__(self) -> None:
        for field_name in ("src", "dst"):
            value = getattr(self, field_name)
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"{field_name} out of IPv4 range: {value}")
        if not 0 <= self.proto <= 255:
            raise ValueError(f"proto out of range: {self.proto}")
        for field_name in ("sport", "dport"):
            value = getattr(self, field_name)
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"{field_name} out of range: {value}")

    @classmethod
    def from_strs(
        cls,
        src: str,
        dst: str,
        proto: int = PROTO_ICMP,
        sport: int = 0,
        dport: int = 0,
    ) -> "FlowId":
        """Build a :class:`FlowId` from dotted-quad address strings."""
        return cls(str_to_ip(src), str_to_ip(dst), proto, sport, dport)

    def reversed(self) -> "FlowId":
        """The reverse flow (responses travelling back to the source)."""
        return FlowId(self.dst, self.src, self.proto, self.dport, self.sport)

    def describe(self) -> str:
        """Human-readable one-line rendering used in logs and reports."""
        proto = _PROTO_NAMES.get(self.proto, str(self.proto))
        if self.sport or self.dport:
            return (
                f"{ip_to_str(self.src)}:{self.sport} -> "
                f"{ip_to_str(self.dst)}:{self.dport} ({proto})"
            )
        return f"{ip_to_str(self.src)} -> {ip_to_str(self.dst)} ({proto})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
