"""Poisson arrival processes and traffic schedules.

In the paper's evaluation, each source host runs a script that picks
packet send times from a Poisson process with the flow's parameter
``lambda_f`` (Section VI-A).  :class:`PoissonArrivalProcess` reproduces
that: it draws exponential inter-arrival gaps and yields absolute send
times inside a horizon.  :func:`merge_schedules` interleaves per-flow
schedules into one time-ordered trace for the simulator and for the fast
table-level trial runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.flows.universe import FlowUniverse


@dataclass(frozen=True)
class Arrival:
    """One flow arrival: ``flow_index`` arrives at absolute ``time`` (s)."""

    time: float
    flow_index: int


class PoissonArrivalProcess:
    """Homogeneous Poisson process for a single flow.

    ``rate`` is ``lambda_f`` in arrivals per second.  A rate of zero
    yields no arrivals.
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if rate < 0:
            raise ValueError(f"negative rate: {rate}")
        self.rate = rate
        self._rng = rng

    def sample(self, horizon: float, start: float = 0.0) -> List[float]:
        """Arrival times in ``[start, start + horizon)``.

        Uses the standard conditional-uniform construction: draw the count
        from Poisson(rate * horizon), then place the points uniformly.
        This is exact and vectorises well.
        """
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        if self.rate <= 0.0 or horizon <= 0.0:
            return []
        count = int(self._rng.poisson(self.rate * horizon))
        times = self._rng.uniform(start, start + horizon, size=count)
        times.sort()
        return [float(t) for t in times]

    def iter_gaps(self) -> Iterator[float]:
        """Unbounded stream of exponential inter-arrival gaps."""
        while True:
            yield float(self._rng.exponential(1.0 / self.rate))


def sample_schedule(
    universe: FlowUniverse,
    horizon: float,
    rng: np.random.Generator,
    start: float = 0.0,
) -> List[Arrival]:
    """Sample a full multi-flow arrival schedule over ``[start, start+horizon)``.

    Returns time-ordered :class:`Arrival` records covering every flow in
    the universe, each drawn from its own independent Poisson process --
    exactly the traffic the paper's background scripts generate.
    """
    arrivals: List[Arrival] = []
    for index, rate in enumerate(universe.rates):
        process = PoissonArrivalProcess(rate, rng)
        arrivals.extend(
            Arrival(time, index) for time in process.sample(horizon, start)
        )
    arrivals.sort(key=lambda a: a.time)
    return arrivals


class PiecewiseRateProfile:
    """A piecewise-constant time-varying rate multiplier.

    The Markov model assumes homogeneous Poisson arrivals; real traffic
    has diurnal (or bursty) structure.  A profile scales every flow's
    base rate by ``factor(t)``; the reproduction uses it to measure how
    the attack degrades when the attacker's stationary model meets
    non-stationary reality (an extension beyond the paper).

    ``breakpoints`` are segment start times (the first must be 0.0);
    ``factors`` the per-segment multipliers.  Beyond the last
    breakpoint the final factor holds.
    """

    def __init__(self, breakpoints: Sequence[float], factors: Sequence[float]) -> None:
        if len(breakpoints) != len(factors):
            raise ValueError("breakpoints and factors must align")
        # Exact sentinel: a profile's first breakpoint is 0.0 by contract.
        if not breakpoints or breakpoints[0] != 0.0:  # repro: noqa[PY001]
            raise ValueError("profile must start at time 0.0")
        if list(breakpoints) != sorted(breakpoints):
            raise ValueError("breakpoints must be increasing")
        if any(f < 0 for f in factors):
            raise ValueError("factors must be non-negative")
        self.breakpoints = tuple(float(b) for b in breakpoints)
        self.factors = tuple(float(f) for f in factors)

    def factor_at(self, time: float) -> float:
        """The multiplier in effect at ``time``."""
        if time < 0:
            raise ValueError("time must be non-negative")
        current = self.factors[0]
        for start, factor in zip(self.breakpoints, self.factors):
            if time >= start:
                current = factor
            else:
                break
        return current

    def mean_factor(self, horizon: float) -> float:
        """Time-average of the multiplier over ``[0, horizon]``.

        An attacker estimating stationary rates from long observation
        would arrive at ``base_rate * mean_factor``.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        total = 0.0
        for index, (start, factor) in enumerate(
            zip(self.breakpoints, self.factors)
        ):
            if start >= horizon:
                break
            end = (
                self.breakpoints[index + 1]
                if index + 1 < len(self.breakpoints)
                else horizon
            )
            total += factor * (min(end, horizon) - start)
        return total / horizon

    def segments(self, horizon: float) -> List[Tuple[float, float, float]]:
        """(start, end, factor) segments clipped to ``[0, horizon]``."""
        out: List[Tuple[float, float, float]] = []
        for index, (start, factor) in enumerate(
            zip(self.breakpoints, self.factors)
        ):
            if start >= horizon:
                break
            end = (
                self.breakpoints[index + 1]
                if index + 1 < len(self.breakpoints)
                else horizon
            )
            out.append((start, min(end, horizon), factor))
        return out


def sample_schedule_with_profile(
    universe: FlowUniverse,
    profile: PiecewiseRateProfile,
    horizon: float,
    rng: np.random.Generator,
) -> List[Arrival]:
    """Sample a schedule under a time-varying rate profile.

    Each flow's instantaneous rate is ``base_rate * profile.factor(t)``;
    segments are sampled independently (exact for piecewise-constant
    intensities).
    """
    arrivals: List[Arrival] = []
    for start, end, factor in profile.segments(horizon):
        if factor <= 0.0 or end <= start:
            continue
        for index, rate in enumerate(universe.rates):
            process = PoissonArrivalProcess(rate * factor, rng)
            arrivals.extend(
                Arrival(time, index)
                for time in process.sample(end - start, start=start)
            )
    arrivals.sort(key=lambda a: a.time)
    return arrivals


def merge_schedules(
    schedules: Iterable[Sequence[Arrival]],
) -> List[Arrival]:
    """Merge several time-ordered schedules into one ordered schedule."""
    merged: List[Arrival] = []
    for schedule in schedules:
        merged.extend(schedule)
    merged.sort(key=lambda a: a.time)
    return merged


def occurred_in_window(
    schedule: Sequence[Arrival],
    flow_index: int,
    window_start: float,
    window_end: float,
) -> bool:
    """Ground truth for a trial: did ``flow_index`` arrive in the window?

    This is the indicator ``X̂`` of Section V evaluated on an actual
    trace: 1 iff the target flow occurred in ``[window_start, window_end]``.
    """
    return any(
        a.flow_index == flow_index and window_start <= a.time <= window_end
        for a in schedule
    )


def arrivals_to_steps(
    schedule: Sequence[Arrival], delta: float
) -> List[Tuple[int, int]]:
    """Quantise a schedule to model steps.

    Returns ``(step, flow_index)`` pairs where ``step = floor(time/delta)``;
    used when cross-checking the Markov models against sampled traces.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    return [(int(a.time // delta), a.flow_index) for a in schedule]
