"""Random "network configurations" (Section VI-A).

The paper evaluates over randomly drawn *network configurations*: the
Poisson parameters, the flow-rule relation, the rule TTLs, and the target
flow.  Its concrete setup:

* 16 flows, one per source host ``10.0.1.0`` .. ``10.0.1.15``, all sending
  ICMP echo to the server ``10.0.1.16``;
* the 81 possible wildcard rules over those 16 contiguous addresses
  ("involving up to 4-bit masks"): every value/mask combination on the low
  4 address bits -- each bit is pinned-0, pinned-1, or wildcarded, giving
  exactly ``3^4 = 81`` rules;
* 12 rules drawn uniformly from the 81, with distinct priorities
  (more-specific rules higher, matching common controller practice);
* ``lambda_f ~ U[0, 1]`` per flow, rule TTL ``t_j`` uniform over
  ``{ceil(1/(10*Delta)), ceil(2/(10*Delta)), ..., ceil(1/Delta)}`` steps
  (i.e. roughly 0.1 s .. 1.0 s);
* a cache of size ``n = 6``;
* a target flow drawn uniformly among flows whose probability of absence
  over the detection window falls inside an experiment-defined range.

:class:`ConfigGenerator` reproduces this sampling procedure;
:class:`NetworkConfiguration` is the resulting bundle consumed by both
the analytic models and the simulator-driven trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.flows.flowid import PROTO_ICMP, FlowId, str_to_ip
from repro.flows.policy import ModelRule, Policy
from repro.flows.rules import ACTION_FORWARD, Match, Rule
from repro.flows.universe import FlowUniverse

#: Default base address of the 16 source hosts (``10.0.1.0``).
DEFAULT_BASE_ADDRESS = str_to_ip("10.0.1.0")
#: Default server address (``10.0.1.16``).
DEFAULT_SERVER_ADDRESS = str_to_ip("10.0.1.16")


def enumerate_mask_rules(
    base_address: int = DEFAULT_BASE_ADDRESS,
    mask_bits: int = 4,
    server_address: int = DEFAULT_SERVER_ADDRESS,
    proto: Optional[int] = PROTO_ICMP,
) -> List[Rule]:
    """Enumerate all value/mask source rules over ``2**mask_bits`` hosts.

    Each of the low ``mask_bits`` address bits is independently pinned to
    0, pinned to 1, or wildcarded, giving ``3**mask_bits`` rules (81 for
    the paper's 4 bits).  The high address bits are always pinned to the
    base address.  Rules are returned without priorities (priority 0);
    callers assign distinct priorities, e.g. via
    :func:`repro.flows.policy.specificity_priorities`.
    """
    if mask_bits < 0 or mask_bits > 16:
        raise ValueError(f"unreasonable mask_bits: {mask_bits}")
    high_mask = 0xFFFFFFFF ^ ((1 << mask_bits) - 1)
    rules: List[Rule] = []
    # Iterate over ternary digit strings: for each low bit, 0 = pinned-0,
    # 1 = pinned-1, 2 = wildcard.
    for code in range(3**mask_bits):
        value_bits = 0
        mask_low = 0
        remaining = code
        for bit in range(mask_bits):
            digit = remaining % 3
            remaining //= 3
            if digit == 0:
                mask_low |= 1 << bit
            elif digit == 1:
                mask_low |= 1 << bit
                value_bits |= 1 << bit
            # digit == 2: wildcard, bit left out of the mask
        src = Match(
            value=(base_address & high_mask) | value_bits,
            mask=high_mask | mask_low,
        )
        pinned = bin(mask_low).count("1")
        wildcards = mask_bits - pinned
        rules.append(
            Rule(
                name=f"r_m{wildcards}_{code:03d}",
                src=src,
                dst=Match.exact(server_address),
                proto=proto,
                priority=0,
                action=ACTION_FORWARD,
            )
        )
    return rules


@dataclass(frozen=True)
class ConfigParams:
    """Sampling parameters for :class:`ConfigGenerator`.

    Defaults reproduce Section VI-A.  ``absence_range`` bounds the target
    flow's prior probability of absence over the detection window,
    ``P(X̂=0) = exp(-lambda * window)``; the paper selects targets
    "uniformly from all flows for which the probability of absence is
    within a specific range (defined by the experiment parameters)".
    """

    n_flows: int = 16
    n_rules: int = 12
    cache_size: int = 6
    #: Step duration in seconds.  Must be small enough that multiple
    #: arrivals per step are negligible (the paper's assumption): with
    #: 16 flows at lambda ~ U[0,1], Lambda * Delta = 0.08 at the default.
    delta: float = 0.01
    window_seconds: float = 15.0
    lambda_low: float = 0.0
    lambda_high: float = 1.0
    timeout_choices: int = 10
    absence_range: Tuple[float, float] = (0.0, 1.0)
    mask_bits: int = 4
    base_address: int = DEFAULT_BASE_ADDRESS
    server_address: int = DEFAULT_SERVER_ADDRESS
    require_target_covered: bool = True

    def __post_init__(self) -> None:
        if self.n_flows != 1 << self.mask_bits:
            raise ValueError(
                "n_flows must equal 2**mask_bits "
                f"({self.n_flows} != 2**{self.mask_bits})"
            )
        if self.delta <= 0 or self.window_seconds <= 0:
            raise ValueError("delta and window_seconds must be positive")
        if not 0 <= self.absence_range[0] <= self.absence_range[1] <= 1:
            raise ValueError(f"bad absence_range: {self.absence_range}")
        if self.cache_size < 1:
            raise ValueError("cache_size must be >= 1")

    @property
    def window_steps(self) -> int:
        """Detection window ``T = ceil(window_seconds / delta)`` in steps."""
        return int(math.ceil(self.window_seconds / self.delta))

    def timeout_steps_menu(self) -> List[int]:
        """The paper's TTL menu ``{ceil(k/(10*Delta))}`` for k = 1..10."""
        return [
            int(math.ceil(k / (self.timeout_choices * self.delta)))
            for k in range(1, self.timeout_choices + 1)
        ]


@dataclass(frozen=True)
class NetworkConfiguration:
    """One sampled network configuration.

    Bundles everything a trial needs: the flow universe with rates, the
    concrete prioritised rules (for the simulator), the abstract policy
    (for the models), the cache size, step duration, detection window and
    the target flow.
    """

    universe: FlowUniverse
    concrete_rules: Tuple[Rule, ...]
    policy: Policy
    cache_size: int
    delta: float
    window_steps: int
    target_flow: int
    params: ConfigParams = field(default=None)  # type: ignore[assignment]

    @property
    def window_seconds(self) -> float:
        """Detection window length in seconds."""
        return self.window_steps * self.delta

    def absence_probability(self, flow_index: Optional[int] = None) -> float:
        """Prior ``P(X̂=0) = exp(-lambda_f * T * Delta)`` for a flow.

        Defaults to the target flow.  This is the paper's closed-form
        prior (Section V-A).
        """
        if flow_index is None:
            flow_index = self.target_flow
        rate = self.universe.rates[flow_index]
        return math.exp(-rate * self.window_steps * self.delta)

    def rules_covering_target(self) -> Tuple[int, ...]:
        """Policy rule indices covering the target flow (Figure 7a x-axis)."""
        return self.policy.covering(self.target_flow)

    def describe(self) -> str:
        """Multi-line summary for logs and reports."""
        lines = [
            f"flows={len(self.universe)} rules={len(self.policy)} "
            f"cache={self.cache_size} delta={self.delta:g}s "
            f"T={self.window_steps} steps",
            f"target flow #{self.target_flow} "
            f"({self.universe.flows[self.target_flow].describe()}) "
            f"lambda={self.universe.rates[self.target_flow]:.3f}/s "
            f"P(absent)={self.absence_probability():.3f}",
            self.policy.describe(self.universe),
        ]
        return "\n".join(lines)


class ConfigGenerator:
    """Samples :class:`NetworkConfiguration` objects per Section VI-A."""

    def __init__(self, params: ConfigParams = ConfigParams(), seed: Optional[int] = None) -> None:
        self.params = params
        self._rng = np.random.default_rng(seed)
        self._all_rules = enumerate_mask_rules(
            base_address=params.base_address,
            mask_bits=params.mask_bits,
            server_address=params.server_address,
        )

    @property
    def rng(self) -> np.random.Generator:
        """The generator's random source (shared with callers for trials)."""
        return self._rng

    def _sample_universe(self) -> FlowUniverse:
        params = self.params
        flows = tuple(
            FlowId(
                src=params.base_address + i,
                dst=params.server_address,
                proto=PROTO_ICMP,
            )
            for i in range(params.n_flows)
        )
        rates = tuple(
            float(self._rng.uniform(params.lambda_low, params.lambda_high))
            for _ in range(params.n_flows)
        )
        return FlowUniverse(flows, rates)

    def _sample_rules(self, universe: FlowUniverse) -> Tuple[Tuple[Rule, ...], Policy]:
        """Draw ``n_rules`` of the 81, prioritise, attach TTLs, abstract."""
        from dataclasses import replace

        params = self.params
        menu = params.timeout_steps_menu()
        chosen_positions = self._rng.choice(
            len(self._all_rules), size=params.n_rules, replace=False
        )
        chosen = [self._all_rules[int(pos)] for pos in chosen_positions]
        # Specificity-ranked distinct priorities (most specific highest).
        chosen.sort(
            key=lambda r: (r.src.specificity(), r.name), reverse=True
        )
        concrete: List[Rule] = []
        model_rules: List[ModelRule] = []
        for rank, rule in enumerate(chosen):
            timeout_steps = int(menu[int(self._rng.integers(len(menu)))])
            timeout_seconds = timeout_steps * params.delta
            priority = 1000 - rank  # rank 0 = most specific = highest
            concrete_rule = replace(
                rule,
                priority=priority,
                idle_timeout=timeout_seconds,
            )
            flow_set = frozenset(
                i
                for i, flow in enumerate(universe.flows)
                if concrete_rule.covers(flow)
            )
            if not flow_set:
                # Cannot happen for mask rules over the full host range,
                # but guard anyway: resample by widening to wildcard-free.
                raise RuntimeError(f"rule {rule.name} covers no flows")
            concrete.append(concrete_rule)
            model_rules.append(
                ModelRule(
                    index=rank,
                    name=concrete_rule.name,
                    flows=flow_set,
                    timeout_steps=timeout_steps,
                    priority=priority,
                )
            )
        return tuple(concrete), Policy(model_rules)

    def _pick_target(
        self, universe: FlowUniverse, policy: Policy
    ) -> Optional[int]:
        params = self.params
        low, high = params.absence_range
        window = params.window_steps * params.delta
        candidates = []
        for index, rate in enumerate(universe.rates):
            absence = math.exp(-rate * window)
            if not low <= absence <= high:
                continue
            if params.require_target_covered and not policy.covering(index):
                continue
            candidates.append(index)
        if not candidates:
            return None
        return int(candidates[int(self._rng.integers(len(candidates)))])

    def sample(self, max_attempts: int = 200) -> NetworkConfiguration:
        """Draw one configuration; retries until a valid target exists."""
        for _ in range(max_attempts):
            universe = self._sample_universe()
            concrete, policy = self._sample_rules(universe)
            target = self._pick_target(universe, policy)
            if target is None:
                continue
            return NetworkConfiguration(
                universe=universe,
                concrete_rules=concrete,
                policy=policy,
                cache_size=self.params.cache_size,
                delta=self.params.delta,
                window_steps=self.params.window_steps,
                target_flow=target,
                params=self.params,
            )
        raise RuntimeError(
            "could not sample a configuration with a valid target flow in "
            f"{max_attempts} attempts (absence_range={self.params.absence_range})"
        )

    def sample_many(self, count: int) -> List[NetworkConfiguration]:
        """Draw ``count`` independent configurations."""
        return [self.sample() for _ in range(count)]
