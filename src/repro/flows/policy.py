"""Abstract policies: rules as sets of flow identifiers.

Section IV of the paper abstracts each rule to the set of flow identifiers
it covers, together with a priority total order and a timeout measured in
model steps of duration ``Delta``.  :class:`ModelRule` and :class:`Policy`
are that abstraction; :meth:`Policy.from_rule_table` derives it from the
concrete wildcard rules over a finite flow universe.

Throughout :mod:`repro.core`, flows are referenced by their integer index
into the :class:`~repro.flows.universe.FlowUniverse`, and rules by their
integer index into the policy (0-based, in *descending* priority order, so
``rule 0`` is the highest-priority rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.flows.rules import Rule, RuleTable
from repro.flows.universe import FlowUniverse


@dataclass(frozen=True)
class ModelRule:
    """A rule abstracted to its covered flow-index set.

    ``timeout_steps`` is the rule TTL ``t_j`` in model steps; the model
    treats every reactive rule as idle-timeout based unless ``hard`` is
    set (Section IV-A handles both; OVS reactive rules in the paper's
    setup use idle timeouts).
    """

    index: int
    name: str
    flows: FrozenSet[int]
    timeout_steps: int
    priority: int
    hard: bool = False

    def __post_init__(self) -> None:
        if self.timeout_steps < 1:
            raise ValueError(f"rule {self.name}: timeout_steps must be >= 1")

    def covers(self, flow_index: int) -> bool:
        """Whether this rule covers the flow with the given index."""
        return flow_index in self.flows


class Policy:
    """The abstract rule set ``Rules`` with priority total order.

    Rules are stored highest-priority-first; ``policy[j]`` is the rule
    with priority rank ``j`` (rank 0 = highest).  Validation enforces the
    paper's requirement that overlapping rules have distinct priorities
    (guaranteed here by the strict ordering) and that every rule covers at
    least one flow in the universe (rules covering nothing are inert and
    would silently distort state-space sizes).
    """

    def __init__(self, rules: Sequence[ModelRule], validate: bool = True) -> None:
        self._rules: Tuple[ModelRule, ...] = tuple(rules)
        if validate:
            self._validate()
        self._covering_cache: Dict[int, Tuple[int, ...]] = {}

    def _validate(self) -> None:
        priorities = [rule.priority for rule in self._rules]
        if sorted(priorities, reverse=True) != priorities:
            raise ValueError("rules must be ordered by descending priority")
        if len(set(priorities)) != len(priorities):
            raise ValueError("rule priorities must be distinct")
        for expected, rule in enumerate(self._rules):
            if rule.index != expected:
                raise ValueError(
                    f"rule {rule.name} has index {rule.index}, expected {expected}"
                )
            if not rule.flows:
                raise ValueError(f"rule {rule.name} covers no flows")

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[ModelRule]:
        return iter(self._rules)

    def __getitem__(self, index: int) -> ModelRule:
        return self._rules[index]

    @property
    def rules(self) -> Tuple[ModelRule, ...]:
        """All rules, highest priority (rank 0) first."""
        return self._rules

    def covering(self, flow_index: int) -> Tuple[int, ...]:
        """Indices of rules covering ``flow_index``, highest priority first."""
        cached = self._covering_cache.get(flow_index)
        if cached is None:
            cached = tuple(
                rule.index for rule in self._rules if flow_index in rule.flows
            )
            self._covering_cache[flow_index] = cached
        return cached

    def highest_covering(self, flow_index: int) -> Optional[int]:
        """Index of the highest-priority rule covering the flow, if any."""
        covering = self.covering(flow_index)
        return covering[0] if covering else None

    def covered_flows(self) -> FrozenSet[int]:
        """Union of all rules' flow sets."""
        covered: set = set()
        for rule in self._rules:
            covered |= rule.flows
        return frozenset(covered)

    def match_in_cache(
        self, flow_index: int, cached: FrozenSet[int]
    ) -> Optional[int]:
        """Switch lookup semantics: highest-priority *cached* covering rule.

        Returns the matched rule index, or ``None`` on a table miss.  Note
        that a lower-priority cached rule matches even when a higher-
        priority *uncached* rule also covers the flow -- the switch only
        consults its cache (Section III-B2).
        """
        for rule_index in self.covering(flow_index):
            if rule_index in cached:
                return rule_index
        return None

    def install_on_miss(self, flow_index: int) -> Optional[int]:
        """Rule the controller installs on a miss for ``flow_index``.

        The controller responds with the highest-priority covering rule in
        the full policy; ``None`` when the policy does not cover the flow
        (the controller then just forwards the packet without installing).
        """
        return self.highest_covering(flow_index)

    @classmethod
    def from_rule_table(
        cls,
        table: RuleTable,
        universe: FlowUniverse,
        delta: float,
    ) -> "Policy":
        """Abstract a concrete :class:`~repro.flows.rules.RuleTable`.

        ``delta`` is the model step duration in seconds; concrete rule
        timeouts (seconds) are converted to steps with ceiling rounding so
        a rule never expires earlier in the model than in reality.
        Permanent rules (no timeout) are excluded: the paper's
        pre-installed helper rules are invisible to the reconnaissance
        model because they are never installed reactively.
        """
        if delta <= 0:
            raise ValueError("delta must be positive")
        model_rules: List[ModelRule] = []
        for rule in table:
            if rule.is_permanent():
                continue
            flow_indices = frozenset(
                index
                for index, flow in enumerate(universe.flows)
                if rule.covers(flow)
            )
            if not flow_indices:
                continue
            timeout = rule.idle_timeout or rule.hard_timeout
            steps = max(1, int(-(-timeout // delta)))  # ceiling division
            model_rules.append(
                ModelRule(
                    index=len(model_rules),
                    name=rule.name,
                    flows=flow_indices,
                    timeout_steps=steps,
                    priority=rule.priority,
                    # 0.0 is the exact "timeout disabled" sentinel.
                    hard=rule.idle_timeout == 0.0  # repro: noqa[PY001]
                    and rule.hard_timeout > 0.0,
                )
            )
        return cls(model_rules)

    def describe(self, universe: Optional[FlowUniverse] = None) -> str:
        """Multi-line human-readable policy dump."""
        lines = []
        for rule in self._rules:
            flows = ",".join(str(f) for f in sorted(rule.flows))
            lines.append(
                f"  #{rule.index} {rule.name} prio={rule.priority} "
                f"t={rule.timeout_steps} flows={{{flows}}}"
            )
        return "\n".join(lines)


def specificity_priorities(
    rules: Iterable[Rule], base: int = 100
) -> List[Rule]:
    """Assign distinct priorities, more-specific rules higher.

    Utility for building valid rule tables from generated wildcard rules:
    rules are ranked by total pinned bits (descending) with a stable
    arbitrary tie-break, and re-created with distinct priorities starting
    at ``base`` going up.  This mirrors the usual longest-prefix-first
    convention and satisfies the distinct-priority requirement for
    overlapping rules.
    """
    from dataclasses import replace

    ordered = sorted(
        rules,
        key=lambda r: (
            r.src.specificity()
            + r.dst.specificity()
            + r.sport.specificity()
            + r.dport.specificity(),
            r.name,
        ),
    )
    return [
        replace(rule, priority=base + rank) for rank, rule in enumerate(ordered)
    ]
