"""Concrete OpenFlow-style match rules.

A :class:`Rule` matches packets on the 5-tuple fields through value/mask
pairs (:class:`Match`), carries a priority for matching precedence, the
idle/hard timeout pair defined by the OpenFlow specification the paper
cites, and an opaque action.  :class:`RuleTable` is a priority-ordered
collection with the lookup semantics of a switch flow table *policy*
(which rule covers which flow); the stateful cached table lives in
:mod:`repro.simulator.flowtable`.

The paper's evaluation builds rules whose source-address match uses an
arbitrary bitmask on the low 4 address bits ("up to 4-bit masks", giving
the 81 possible rules for 16 contiguous addresses); arbitrary masks --
not just prefixes -- are therefore supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterable, Iterator, Optional, Tuple

from repro.flows.flowid import FlowId, ip_to_str

#: Sentinel action meaning "forward along the computed route".
ACTION_FORWARD = "forward"
#: Sentinel action meaning "send to the controller" (table-miss helper).
ACTION_CONTROLLER = "controller"
#: Sentinel action meaning "flood on all ports" (the paper's default rule).
ACTION_FLOOD = "flood"


@dataclass(frozen=True)
class Match:
    """A single value/mask match field.

    A key ``k`` matches iff ``k & mask == value & mask``.  ``mask == 0``
    is the full wildcard; for IPv4 fields ``mask == 0xFFFFFFFF`` is an
    exact match.
    """

    value: int
    mask: int

    #: Full-wildcard IPv4 match (assigned after class creation).
    ANY: ClassVar["Match"]

    def matches(self, key: int) -> bool:
        """Whether ``key`` falls inside this value/mask set."""
        return (key & self.mask) == (self.value & self.mask)

    def is_wildcard(self) -> bool:
        """True when the field matches every key."""
        return self.mask == 0

    def is_exact(self, width: int = 32) -> bool:
        """True when the field pins all ``width`` bits."""
        return self.mask == (1 << width) - 1

    def specificity(self) -> int:
        """Number of pinned bits; used for specificity-based priorities."""
        return bin(self.mask).count("1")

    def overlaps(self, other: "Match") -> bool:
        """Whether some key matches both fields.

        Two value/mask sets intersect iff the values agree on the bits
        pinned by *both* masks.
        """
        common = self.mask & other.mask
        return (self.value & common) == (other.value & common)

    def subsumes(self, other: "Match") -> bool:
        """Whether every key matched by ``other`` is matched by ``self``."""
        if (self.mask & other.mask) != self.mask:
            return False
        return (self.value & self.mask) == (other.value & self.mask)

    @classmethod
    def exact(cls, value: int, width: int = 32) -> "Match":
        """Exact match on a ``width``-bit key."""
        return cls(value, (1 << width) - 1)

    @classmethod
    def prefix(cls, value: int, prefix_len: int, width: int = 32) -> "Match":
        """Classic CIDR prefix match."""
        if not 0 <= prefix_len <= width:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        mask = ((1 << width) - 1) ^ ((1 << (width - prefix_len)) - 1)
        return cls(value & mask, mask)

    def describe_ip(self) -> str:
        """Render an IPv4 field as address/mask (or ``*``)."""
        if self.is_wildcard():
            return "*"
        if self.is_exact():
            return ip_to_str(self.value)
        return f"{ip_to_str(self.value & self.mask)}/{ip_to_str(self.mask)}"


Match.ANY = Match(0, 0)


@dataclass(frozen=True)
class Rule:
    """A concrete flow rule.

    ``priority`` follows OpenFlow: larger numbers take precedence.
    ``idle_timeout`` / ``hard_timeout`` are seconds; ``0`` disables the
    respective timeout (a rule with both zero is permanent, like the
    paper's pre-installed rules).
    """

    name: str
    src: Match = Match.ANY
    dst: Match = Match.ANY
    proto: Optional[int] = None
    sport: Match = Match.ANY
    dport: Match = Match.ANY
    priority: int = 0
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    action: str = ACTION_FORWARD

    def __post_init__(self) -> None:
        if self.idle_timeout < 0 or self.hard_timeout < 0:
            raise ValueError("timeouts must be non-negative")

    def covers(self, flow: FlowId) -> bool:
        """Whether this rule matches packets of ``flow``."""
        if self.proto is not None and self.proto != flow.proto:
            return False
        return (
            self.src.matches(flow.src)
            and self.dst.matches(flow.dst)
            and self.sport.matches(flow.sport)
            and self.dport.matches(flow.dport)
        )

    def overlaps(self, other: "Rule") -> bool:
        """Whether some flow is covered by both rules."""
        if (
            self.proto is not None
            and other.proto is not None
            and self.proto != other.proto
        ):
            return False
        return (
            self.src.overlaps(other.src)
            and self.dst.overlaps(other.dst)
            and self.sport.overlaps(other.sport)
            and self.dport.overlaps(other.dport)
        )

    def is_permanent(self) -> bool:
        """True for rules with no timeout (never expire, never evicted)."""
        # 0.0 is the exact "timeout disabled" sentinel, never computed.
        return self.idle_timeout == 0.0 and self.hard_timeout == 0.0  # repro: noqa[PY001]

    def describe(self) -> str:
        """Human-readable rendering used in logs and reports."""
        parts = [f"src={self.src.describe_ip()}", f"dst={self.dst.describe_ip()}"]
        if self.proto is not None:
            parts.append(f"proto={self.proto}")
        parts.append(f"prio={self.priority}")
        if self.idle_timeout:
            parts.append(f"idle={self.idle_timeout:g}s")
        if self.hard_timeout:
            parts.append(f"hard={self.hard_timeout:g}s")
        return f"{self.name}[{' '.join(parts)}]"


class RuleTable:
    """A priority-ordered set of rules (a *policy*, not a cache).

    This is the rule set ``Rules`` of the paper: the collection from which
    the controller picks the highest-priority covering rule on a miss.
    Construction validates the paper's well-formedness requirement that
    overlapping rules have distinct priorities (so that matching is a
    total order on every flow's covering set).
    """

    def __init__(self, rules: Iterable[Rule], validate: bool = True) -> None:
        self._rules: Tuple[Rule, ...] = tuple(
            sorted(rules, key=lambda r: (-r.priority, r.name))
        )
        names = [rule.name for rule in self._rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate rule names in table")
        if validate:
            self._check_overlap_priorities()

    def _check_overlap_priorities(self) -> None:
        rules = self._rules
        for i, first in enumerate(rules):
            for second in rules[i + 1 :]:
                if first.priority != second.priority:
                    continue
                if first.overlaps(second):
                    raise ValueError(
                        "overlapping rules must have distinct priorities: "
                        f"{first.name} and {second.name}"
                    )

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._rules

    @property
    def rules(self) -> Tuple[Rule, ...]:
        """All rules, highest priority first."""
        return self._rules

    def by_name(self, name: str) -> Rule:
        """Look a rule up by its unique name."""
        for rule in self._rules:
            if rule.name == name:
                return rule
        raise KeyError(name)

    def highest_covering(self, flow: FlowId) -> Optional[Rule]:
        """The highest-priority rule covering ``flow``, or ``None``.

        This is the rule the controller installs on a table miss for
        ``flow`` (Section III-B2 of the paper).
        """
        for rule in self._rules:  # sorted highest priority first
            if rule.covers(flow):
                return rule
        return None

    def covering(self, flow: FlowId) -> Tuple[Rule, ...]:
        """All rules covering ``flow``, highest priority first."""
        return tuple(rule for rule in self._rules if rule.covers(flow))
