"""The unified public job API: :class:`JobSpec`.

Before this module every entry point took a different slice of the same
knobs: ``ExperimentParams`` covered the figure pipelines, while the
fault plan, probe retries, kernel choice, fan-out widths, and seed
arrived as loose CLI flags or keyword arguments.  :class:`JobSpec`
subsumes all of them in one frozen, validated, JSON-round-trippable
dataclass -- the single submission type shared by the batch CLI
(``repro-sdn fig6a ... --out``), the programmatic runners
(:func:`~repro.experiments.fig6.run_fig6` and friends), and the
reconnaissance session service (:mod:`repro.service`).

Round trips::

    spec = JobSpec.from_args(args, "fig6")      # CLI namespace
    spec == JobSpec.from_dict(spec.to_dict())   # JSON documents
    params = spec.to_params()                    # experiment layer

The old entry-point shapes stay alive for one release:
:func:`coerce_spec` lets the runners keep accepting a bare
``ExperimentParams`` (with a ``DeprecationWarning``), mirroring the
``repro.deprecation.keyword_only`` migration pattern.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional, Tuple

from repro.experiments.params import ExperimentParams
from repro.faults import FaultPlan
from repro.flows.config import ConfigParams

#: Experiments a job can request.  ``recon`` is the service's native
#: many-target session workload (docs/SERVICE.md); the rest map onto
#: the batch runners.
EXPERIMENTS: Tuple[str, ...] = (
    "fig6",
    "fig7",
    "robustness",
    "reproduce",
    "select",
    "recon",
    "defend",
)

#: CLI subcommands that share a runner (``JobSpec.from_args`` callers
#: pass the subcommand name; the spec stores the canonical experiment).
_EXPERIMENT_ALIASES: Dict[str, str] = {
    "fig6a": "fig6",
    "fig6b": "fig6",
    "headline": "fig6",
    "fig7a": "fig7",
    "fig7b": "fig7",
}


@dataclass(frozen=True)
class JobSpec:
    """One validated reconnaissance job: every knob in one place.

    The experiment layer's :class:`ExperimentParams` remains the
    internal currency (``to_params()``); ``JobSpec`` adds what used to
    live outside it -- the experiment kind, the probe-selection method,
    the robustness sweep grid, the reproduction scale, and the service
    session fields (``targets``/``n_targets``/``shards``/``job_id``).
    """

    experiment: str = "fig6"
    config: ConfigParams = field(default_factory=ConfigParams)
    n_configs: int = 12
    n_trials: int = 30
    seed: Optional[int] = None
    estimator: str = "independent"
    trial_mode: str = "network"
    n_probes: int = 1
    decision: str = "query"
    constrained_decision: str = "map"
    screen: bool = True
    random_attacker_mode: str = "sample"
    #: Probe-scoring engine fan-out (``ExperimentParams.selection_n_jobs``).
    selection_jobs: int = 1
    #: Probe-set search: "exhaustive" or "greedy" (``repro-sdn select``).
    selection_method: str = "exhaustive"
    fault_plan: Optional[FaultPlan] = None
    probe_retries: int = 0
    trial_jobs: int = 1
    kernel: str = "auto"
    #: Simulation/screening path (``repro.core.simpath``): "reference",
    #: "fastpath", or "auto".  Both paths yield identical results.
    simpath: str = "auto"
    #: Robustness sweep grid (``None`` = the sweep's defaults).
    rates: Optional[Tuple[float, ...]] = None
    kinds: Optional[Tuple[str, ...]] = None
    #: Defend grid axes (``None`` = the grid's defaults): countermeasure
    #: names from :data:`repro.countermeasures.DEFENSE_CHOICES`, and the
    #: online detector method from :data:`repro.detect.DETECTOR_CHOICES`.
    defense: Optional[Tuple[str, ...]] = None
    detector: Optional[str] = None
    #: Reproduction scale (``None`` = the runner's default 0.1).
    scale: Optional[float] = None
    #: Service fields (docs/SERVICE.md): explicit target flow indices,
    #: or how many eligible targets to enumerate; worker shards; the
    #: job's identity (defaults to a digest prefix at submission).
    targets: Optional[Tuple[int, ...]] = None
    n_targets: int = 4
    shards: int = 1
    job_id: Optional[str] = None

    def __post_init__(self) -> None:
        # Tolerate JSON-shaped inputs (lists where tuples belong).
        for name in ("rates", "kinds", "targets", "defense"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if self.experiment not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment: {self.experiment!r} "
                f"(expected one of {', '.join(EXPERIMENTS)})"
            )
        if self.selection_method not in ("exhaustive", "greedy"):
            raise ValueError(
                f"unknown selection_method: {self.selection_method!r}"
            )
        if self.n_targets < 1:
            raise ValueError("n_targets must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.targets is not None:
            if not self.targets:
                raise ValueError("targets must be non-empty when given")
            object.__setattr__(
                self, "targets", tuple(int(t) for t in self.targets)
            )
            if any(t < 0 for t in self.targets):
                raise ValueError("targets must be non-negative flow indices")
        if self.scale is not None and self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.rates is not None:
            object.__setattr__(
                self, "rates", tuple(float(r) for r in self.rates)
            )
        if self.defense is not None:
            from repro.countermeasures.registry import DEFENSE_CHOICES

            object.__setattr__(
                self, "defense", tuple(str(d) for d in self.defense)
            )
            if not self.defense:
                raise ValueError("defense must be non-empty when given")
            unknown = sorted(set(self.defense) - set(DEFENSE_CHOICES))
            if unknown:
                raise ValueError(
                    f"unknown defense(s): {', '.join(unknown)} "
                    f"(expected from {', '.join(DEFENSE_CHOICES)})"
                )
            if self.trial_mode != "network":
                raise ValueError(
                    "defenses require network-mode trials "
                    f"(got trial_mode={self.trial_mode!r})"
                )
        if self.detector is not None:
            from repro.detect.detector import DETECTOR_CHOICES

            if self.detector not in DETECTOR_CHOICES:
                raise ValueError(
                    f"unknown detector: {self.detector!r} "
                    f"(expected one of {', '.join(DETECTOR_CHOICES)})"
                )
        # Everything ExperimentParams validates is validated here too.
        self.to_params()

    # ------------------------------------------------------------------
    # Experiment-layer bridge
    # ------------------------------------------------------------------
    def to_params(self) -> ExperimentParams:
        """The :class:`ExperimentParams` equivalent of this job."""
        return ExperimentParams(
            config=self.config,
            n_configs=self.n_configs,
            n_trials=self.n_trials,
            seed=self.seed,
            estimator=self.estimator,
            trial_mode=self.trial_mode,
            n_probes=self.n_probes,
            decision=self.decision,
            constrained_decision=self.constrained_decision,
            screen=self.screen,
            random_attacker_mode=self.random_attacker_mode,
            selection_n_jobs=self.selection_jobs,
            fault_plan=self.fault_plan,
            probe_retries=self.probe_retries,
            trial_jobs=self.trial_jobs,
            kernel=self.kernel,
            simpath=self.simpath,
        )

    @classmethod
    def from_params(
        cls, params: ExperimentParams, *, experiment: str = "fig6", **extra: object
    ) -> "JobSpec":
        """Wrap legacy :class:`ExperimentParams` into a job spec."""
        return cls(
            experiment=experiment,
            config=params.config,
            n_configs=params.n_configs,
            n_trials=params.n_trials,
            seed=params.seed,
            estimator=params.estimator,
            trial_mode=params.trial_mode,
            n_probes=params.n_probes,
            decision=params.decision,
            constrained_decision=params.constrained_decision,
            screen=params.screen,
            random_attacker_mode=params.random_attacker_mode,
            selection_jobs=params.selection_n_jobs,
            fault_plan=params.fault_plan,
            probe_retries=params.probe_retries,
            trial_jobs=params.trial_jobs,
            kernel=params.kernel,
            simpath=params.simpath,
            **extra,  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON mapping; ``from_dict(to_dict())`` is the identity."""
        document: Dict[str, object] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "config":
                config = dict(value.__dict__)
                config["absence_range"] = list(value.absence_range)
                document["config"] = config
            elif spec_field.name == "fault_plan":
                document["fault_plan"] = (
                    value.to_dict() if value is not None else None
                )
            elif isinstance(value, tuple):
                document[spec_field.name] = list(value)
            else:
                document[spec_field.name] = value
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` output (JSON-safe)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ValueError(f"unknown JobSpec field(s): {', '.join(unknown)}")
        values = dict(document)
        config = values.get("config")
        if isinstance(config, dict):
            config = dict(config)
            if "absence_range" in config:
                config["absence_range"] = tuple(config["absence_range"])
            values["config"] = ConfigParams(**config)
        plan = values.get("fault_plan")
        if isinstance(plan, dict):
            values["fault_plan"] = FaultPlan.from_dict(plan)
        return cls(**values)  # type: ignore[arg-type]

    def digest(self) -> str:
        """A stable content digest of the job (identity-field free).

        ``job_id`` is excluded: two submissions of the same work share a
        digest regardless of what the submitter named them, which is how
        the service tells a resume (same digest) from an id collision.
        """
        document = self.to_dict()
        document.pop("job_id", None)
        canonical = json.dumps(document, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def with_job_id(self, job_id: str) -> "JobSpec":
        """Copy with the job identity set (service submission)."""
        return replace(self, job_id=str(job_id))

    # ------------------------------------------------------------------
    # CLI bridge
    # ------------------------------------------------------------------
    @classmethod
    def from_args(
        cls, args: argparse.Namespace, experiment: str
    ) -> "JobSpec":
        """Build a spec from a parsed CLI namespace.

        ``experiment`` is the subcommand name (figure variants collapse
        onto their runner).  Only flags the subcommand actually declares
        are consulted, so one constructor serves every subparser.
        """
        experiment = _EXPERIMENT_ALIASES.get(experiment, experiment)
        seed = getattr(args, "seed", None)
        if seed is None:
            seed = getattr(args, "seed_fallback", None)
        plan_spec = getattr(args, "fault_plan", None)
        fault_plan = FaultPlan.parse(plan_spec) if plan_spec else None
        flows = getattr(args, "flows", None)
        if flows is not None:
            config = ConfigParams(
                n_flows=flows,
                mask_bits=flows.bit_length() - 1,
                n_rules=getattr(args, "rules", 12),
                cache_size=getattr(args, "cache", 6),
            )
        else:
            config = ConfigParams()
        rates = getattr(args, "rates", None)
        kinds = getattr(args, "kinds", None)
        targets = getattr(args, "targets", None)
        defense = getattr(args, "defense", None)
        return cls(
            experiment=experiment,
            config=config,
            n_configs=getattr(args, "configs", 12),
            n_trials=getattr(args, "trials", 30),
            seed=int(seed) if seed is not None else None,
            trial_mode=getattr(args, "mode", "network"),
            n_probes=getattr(args, "probes", 1),
            selection_jobs=getattr(args, "jobs", 1),
            selection_method=getattr(args, "method", "exhaustive"),
            fault_plan=fault_plan,
            probe_retries=getattr(args, "probe_retries", 0),
            trial_jobs=getattr(args, "trial_jobs", 1),
            kernel=getattr(args, "kernel", "auto"),
            simpath=getattr(args, "simpath", "auto"),
            rates=(
                tuple(float(part) for part in rates.split(","))
                if isinstance(rates, str)
                else rates
            ),
            kinds=(
                tuple(part.strip() for part in kinds.split(","))
                if isinstance(kinds, str)
                else kinds
            ),
            defense=(
                tuple(part.strip() for part in defense.split(","))
                if isinstance(defense, str)
                else defense
            ),
            detector=getattr(args, "detector", None),
            scale=getattr(args, "scale", None),
            targets=(
                tuple(int(part) for part in targets.split(","))
                if isinstance(targets, str)
                else targets
            ),
            n_targets=getattr(args, "n_targets", 4),
            shards=getattr(args, "shards", 1),
            job_id=getattr(args, "job_id", None),
        )


def coerce_spec(
    value: object, *, experiment: str, caller: str
) -> Tuple[JobSpec, ExperimentParams]:
    """Accept the canonical :class:`JobSpec` or a legacy ``ExperimentParams``.

    The runners' first parameter used to be ``ExperimentParams``; that
    form keeps working for one release but warns.  Returns both views
    so callers need not re-derive either.
    """
    if isinstance(value, JobSpec):
        return value, value.to_params()
    if isinstance(value, ExperimentParams):
        warnings.warn(
            f"{caller}: passing ExperimentParams is deprecated and will "
            "stop working in a future release; pass a repro.apispec.JobSpec "
            "(JobSpec.from_params wraps existing params)",
            DeprecationWarning,
            stacklevel=3,
        )
        return JobSpec.from_params(value, experiment=experiment), value
    raise TypeError(
        f"{caller}: expected JobSpec or ExperimentParams, "
        f"got {type(value).__name__}"
    )
