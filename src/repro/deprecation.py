"""Deprecation shims for the keyword-only public API.

The public entry points (harness construction, trial loops, selection
helpers) take keyword-only arguments for everything beyond their one or
two obvious leading parameters.  To migrate without breaking existing
call sites overnight, :func:`keyword_only` wraps such a function and
keeps accepting the old positional form for one release: extra
positional arguments are remapped onto the keyword-only parameters in
declaration order (which matches the old positional order) and a
``DeprecationWarning`` names the arguments to move.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


def keyword_only(func: F) -> F:
    """Accept legacy positional args for keyword-only params, with a warning.

    The wrapped function's own signature is the source of truth: its
    keyword-only parameters, in declaration order, are the parameters
    that used to be positional.  Calls within the allowed positional
    arity pass straight through; longer calls are remapped and warned.
    """
    signature = inspect.signature(func)
    parameters = list(signature.parameters.values())
    max_positional = sum(
        1
        for parameter in parameters
        if parameter.kind
        in (parameter.POSITIONAL_ONLY, parameter.POSITIONAL_OR_KEYWORD)
    )
    keyword_names = [
        parameter.name
        for parameter in parameters
        if parameter.kind == parameter.KEYWORD_ONLY
    ]

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if len(args) > max_positional:
            extra = args[max_positional:]
            if len(extra) > len(keyword_names):
                raise TypeError(
                    f"{func.__qualname__}() takes at most "
                    f"{max_positional + len(keyword_names)} arguments "
                    f"({len(args)} given)"
                )
            moved = keyword_names[: len(extra)]
            warnings.warn(
                f"{func.__qualname__}: passing {', '.join(moved)} "
                "positionally is deprecated and will stop working in a "
                "future release; pass by keyword",
                DeprecationWarning,
                stacklevel=2,
            )
            for name, value in zip(moved, extra):
                if name in kwargs:
                    raise TypeError(
                        f"{func.__qualname__}() got multiple values for "
                        f"argument {name!r}"
                    )
                kwargs[name] = value
            args = args[:max_positional]
        return func(*args, **kwargs)

    return wrapper  # type: ignore[return-value]
