"""Reproduction of *Flow Reconnaissance via Timing Attacks on SDN Switches*.

Liu, Reiter, Sekar -- ICDCS 2017.

The package is organised in layers:

* :mod:`repro.flows` -- flow identifiers, wildcard rules, policies,
  Poisson traffic, and the paper's random network-configuration sampler.
* :mod:`repro.core` -- the paper's contribution: the basic (Section IV-A)
  and compact (Section IV-B) Markov models of an SDN switch rule cache,
  and information-gain probe selection (Section V).
* :mod:`repro.simulator` -- a discrete-event SDN substrate standing in
  for the paper's Mininet / Open vSwitch / Ryu testbed: switches with
  OVS-like flow tables, a reactive controller, the Stanford backbone
  topology, and a calibrated latency model for the timing side channel.
* :mod:`repro.experiments` -- the Section VI evaluation harness
  reproducing every figure and measurement in the paper.
* :mod:`repro.countermeasures` -- the Section VII-B defenses.
* :mod:`repro.analysis` -- metrics, entropy helpers, state-count math.

Quickstart::

    from repro import quick_attack_demo
    print(quick_attack_demo(seed=7))

or see ``examples/quickstart.py`` for a step-by-step walkthrough.
"""

from repro.version import __version__

__all__ = ["__version__", "quick_attack_demo"]


def quick_attack_demo(seed: int = 7) -> str:
    """Run one tiny end-to-end reconnaissance attack and describe it.

    Samples a paper-style network configuration, fits the compact model,
    selects the optimal probe, runs a handful of simulated trials, and
    returns a human-readable summary.  Intended as a smoke test and a
    first point of contact with the API.
    """
    from repro.experiments.harness import ConfigHarness
    from repro.experiments.params import ExperimentParams

    params = ExperimentParams(n_trials=20, seed=seed)
    harness = ConfigHarness.sample(params)
    result = harness.run_trials()
    lines = [
        "Flow reconnaissance demo",
        f"  target flow: #{harness.config.target_flow} "
        f"(P(absent) = {harness.config.absence_probability():.3f})",
        f"  optimal probe: flow #{harness.model_attacker.probes[0]} "
        f"(gain = {harness.model_attacker.predicted_gain:.4f} bits)",
    ]
    for name, accuracy in sorted(result.accuracies.items()):
        lines.append(f"  {name:12s} accuracy = {accuracy:.3f}")
    return "\n".join(lines)
