"""The :class:`FaultInjector`: the runtime half of the fault layer.

One injector instance is attached to a :class:`~repro.simulator.network.
Network` (``Network(..., faults=injector)``) and consulted at three
narrow injection points:

* ``Switch._send_packet_in``  -> :meth:`FaultInjector.drop_packet_in`
* ``ReactiveController.handle_packet_in``
  -> :meth:`FaultInjector.controller_extra_delay` and
  :meth:`FaultInjector.drop_flow_mod`
* ``Network._host_receive`` (probe echo replies)
  -> :meth:`FaultInjector.drop_probe_reply`

Determinism contract (property-tested in ``tests/faults``):

* the injector owns a **dedicated** ``numpy.random.Generator`` seeded
  from ``FaultPlan.seed`` -- it never draws from the network RNG, so an
  attached injector cannot perturb latency noise or arrival sampling;
* a rate of exactly ``0.0`` for a fault kind draws **nothing** from the
  fault RNG, so partial plans stay reproducible kind-by-kind;
* given the same plan (same seed) and the same sequence of injection
  queries, the injected faults are identical.

Lint rule ``FLT001`` enforces the injected-generator discipline on any
``*Injector`` class (see docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.obs import get_instrumentation

from .plan import FaultPlan

#: Fault kinds as counted by the injector (obs names ``faults.injected.<kind>``).
FAULT_KINDS = (
    "packet_in_loss",
    "flow_mod_loss",
    "probe_reply_loss",
    "jitter",
    "outage",
)


class FaultInjector:
    """Draws faults from a dedicated seeded RNG according to a plan."""

    def __init__(
        self,
        plan: FaultPlan,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.plan = plan
        self.rng = rng if rng is not None else np.random.default_rng(plan.seed)
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._outage_until = float("-inf")
        obs = get_instrumentation().metrics
        self._obs_counters = {
            kind: obs.counter(f"faults.injected.{kind}") for kind in FAULT_KINDS
        }

    # ------------------------------------------------------------------
    # Internal draw helpers (zero-rate kinds never touch the RNG)
    # ------------------------------------------------------------------
    def _bernoulli(self, rate: float, kind: str) -> bool:
        if rate <= 0.0:
            return False
        if self.rng.random() < rate:
            self.counts[kind] += 1
            self._obs_counters[kind].inc()
            return True
        return False

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------
    def drop_packet_in(self) -> bool:
        """Whether a switch's packet-in message is lost on the wire."""
        return self._bernoulli(self.plan.packet_in_loss, "packet_in_loss")

    def drop_flow_mod(self) -> bool:
        """Whether the controller's flow-mod installation is lost."""
        return self._bernoulli(self.plan.flow_mod_loss, "flow_mod_loss")

    def drop_probe_reply(self) -> bool:
        """Whether the attacker misses a probe's echo reply."""
        return self._bernoulli(self.plan.probe_reply_loss, "probe_reply_loss")

    def controller_extra_delay(self, now: float) -> float:
        """Extra controller processing delay (jitter + outage) at ``now``.

        Jitter is an exponential draw with mean ``controller_jitter``;
        an outage stalls handling until the outage window closes (the
        packet-in that *starts* an outage is itself delayed by it).
        """
        extra = 0.0
        if self.plan.controller_jitter > 0.0:
            extra += float(self.rng.exponential(self.plan.controller_jitter))
            self.counts["jitter"] += 1
            self._obs_counters["jitter"].inc()
        if self.plan.outage_rate > 0.0:
            if now >= self._outage_until and self.rng.random() < self.plan.outage_rate:
                self._outage_until = now + self.plan.outage_duration
                self.counts["outage"] += 1
                self._obs_counters["outage"].inc()
            if now < self._outage_until:
                extra += self._outage_until - now
        return extra

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        """Total faults injected so far (all kinds, jitter draws included)."""
        return sum(self.counts.values())

    def summary(self) -> Dict[str, int]:
        """Copy of the per-kind injection counts."""
        return dict(self.counts)
