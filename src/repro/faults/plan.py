"""The :class:`FaultPlan`: a declarative, seeded description of faults.

The paper's evaluation assumes a clean control channel: every probe
yields one hit/miss bit, every packet-in reaches the controller, every
flow-mod lands.  Real SDN control channels are lossy and jittery
(PAPERS.md: *I DPID It My Way!*, arXiv:2403.01878), so the production
pipeline must keep working when the simulated network misbehaves.  A
``FaultPlan`` pins down *which* faults occur and *how often*, plus the
seed of the dedicated fault RNG, so any faulty run is exactly
reproducible -- and an all-zero plan is behaviourally identical to no
plan at all (the differential property ``tests/faults`` locks in).

Fault kinds (all rates are per-event probabilities in ``[0, 1]``):

* ``packet_in_loss`` -- a switch's miss notification never reaches the
  controller; the buffered packet is stranded (probes time out).
* ``flow_mod_loss`` -- the controller's rule installation is lost; the
  buffered packet is still released (packet-out is a separate message).
* ``probe_reply_loss`` -- the attacker fails to capture a probe's echo
  reply; the probe ends unobserved.
* ``controller_jitter`` -- mean of an exponential extra delay added to
  every packet-in's processing time (seconds; 0 disables).
* ``outage_rate`` / ``outage_duration`` -- per-packet-in probability of
  the controller entering an outage burst of ``outage_duration``
  simulated seconds during which packet-in handling stalls until the
  outage ends.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Dict, Tuple

#: Fault kinds whose value is a probability (validated into [0, 1]).
RATE_FIELDS: Tuple[str, ...] = (
    "packet_in_loss",
    "flow_mod_loss",
    "probe_reply_loss",
    "outage_rate",
)

#: Fault kinds whose value is a duration/scale in seconds (>= 0).
SECONDS_FIELDS: Tuple[str, ...] = ("controller_jitter", "outage_duration")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative fault configuration (all faults off by default)."""

    packet_in_loss: float = 0.0
    flow_mod_loss: float = 0.0
    probe_reply_loss: float = 0.0
    controller_jitter: float = 0.0
    outage_rate: float = 0.0
    outage_duration: float = 0.0
    #: Seed of the dedicated fault RNG.  The injector never touches the
    #: network's generator, so enabling faults does not perturb the
    #: latency noise stream -- replicas stay comparable.
    seed: int = 0

    def __post_init__(self) -> None:
        for name in RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in SECONDS_FIELDS:
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.outage_rate > 0.0 and self.outage_duration <= 0.0:
            raise ValueError("outage_rate > 0 requires outage_duration > 0")

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire (an inactive plan is a no-op)."""
        return any(
            getattr(self, name) > 0.0
            for name in RATE_FIELDS + ("controller_jitter",)
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The all-zero plan (behaviourally identical to no plan)."""
        return cls()

    def with_rate(self, kinds: Tuple[str, ...], rate: float) -> "FaultPlan":
        """Copy with ``rate`` applied to each named loss kind."""
        for kind in kinds:
            if kind not in RATE_FIELDS:
                raise ValueError(
                    f"unknown loss kind {kind!r}; choose from {RATE_FIELDS}"
                )
        return replace(self, **{kind: rate for kind in kinds})

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI spec: ``key=value,...`` pairs or ``@plan.json``.

        Examples::

            FaultPlan.parse("packet_in_loss=0.1,probe_reply_loss=0.05")
            FaultPlan.parse("@faults.json")
        """
        spec = spec.strip()
        if spec.startswith("@"):
            payload = json.loads(Path(spec[1:]).read_text())
            if not isinstance(payload, dict):
                raise ValueError(f"{spec[1:]} must hold a JSON object")
            return cls.from_dict(payload)
        values: Dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad fault-plan entry {part!r}; expected key=value"
                )
            key, _, raw = part.partition("=")
            values[key.strip()] = raw.strip()
        return cls.from_dict(values)

    @classmethod
    def from_dict(cls, values: Dict[str, object]) -> "FaultPlan":
        """Build a plan from a mapping, validating every key."""
        known = {f.name for f in fields(cls)}
        unknown = set(values) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys: {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        kwargs: Dict[str, object] = {}
        for key, raw in values.items():
            kwargs[key] = int(raw) if key == "seed" else float(raw)  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON mapping (inverse of :meth:`from_dict`)."""
        return asdict(self)

    def describe(self) -> str:
        """Compact one-line rendering (for logs and reports)."""
        parts = [
            f"{f.name}={getattr(self, f.name):g}"
            for f in fields(self)
            if f.name != "seed" and getattr(self, f.name) > 0.0
        ]
        if not parts:
            return "faults: none"
        return f"faults: {', '.join(parts)} (seed={self.seed})"
