"""Seeded, deterministic fault injection for the simulated SDN.

See docs/FAULTS.md.  The public surface is:

* :class:`FaultPlan` -- declarative, validated fault configuration;
* :class:`FaultInjector` -- runtime injector consulted by the
  simulator's narrow injection points.
"""

from .injector import FAULT_KINDS, FaultInjector
from .plan import RATE_FIELDS, SECONDS_FIELDS, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "RATE_FIELDS",
    "SECONDS_FIELDS",
]
