"""Command-line entry point: ``repro-sdn <experiment> [options]``.

Subcommands map one-to-one onto the paper's evaluation artifacts::

    repro-sdn demo                    # one end-to-end attack walkthrough
    repro-sdn fig6a [--configs N --trials N --seed S]
    repro-sdn fig6b [...]
    repro-sdn fig7a [...]
    repro-sdn fig7b [...]
    repro-sdn timing [--samples N]
    repro-sdn statecount
    repro-sdn headline [...]
    repro-sdn robustness [--rates 0,0.1 --kinds packet_in_loss ...]
    repro-sdn select [--probes M --method ... --jobs J]
    repro-sdn submit recon [--spool DIR --targets 1,2 ...]
    repro-sdn serve [--spool DIR --state DIR --shards N]
    repro-sdn check [paths] [--select RULES --format text|json]
    repro-sdn stats trace.ndjson [--format text|json]

Every experiment invocation is internally a
:class:`repro.apispec.JobSpec` -- the same unified job object the
service consumes (docs/SERVICE.md) -- built from the parsed flags by
``JobSpec.from_args``.

Every command prints the same plain-text tables the benchmark suite
emits, so results are scriptable without pytest.

Shared flags are attached by :func:`add_common_args` so their names,
defaults, and help text cannot drift between subparsers.  Every
subcommand accepts ``--trace out.ndjson`` and ``--metrics out.json``:
when either is given, :func:`main` installs a recording
:class:`~repro.obs.Instrumentation` backend around the command and
exports the span trace / metric registry afterwards.  ``repro-sdn
stats`` summarises such a trace into a per-span table.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import TYPE_CHECKING, List, Optional, Union

if TYPE_CHECKING:
    from repro.apispec import JobSpec
    from repro.experiments.fig6 import Fig6Result
    from repro.experiments.fig7 import Fig7Result
    from repro.experiments.robustness import RobustnessResult


class _DeprecatedAlias(argparse.Action):
    """A hidden alias flag that warns and writes the canonical dest.

    Used to retire the historical ``--save`` (for ``--out``) and
    ``--n-jobs`` (for ``--jobs``) spellings: the alias stays accepted
    for one release, never shows in ``--help``, and emits a
    ``DeprecationWarning`` naming the canonical flag.
    """

    def __init__(self, option_strings, dest, canonical, **kwargs):
        kwargs.setdefault("help", argparse.SUPPRESS)
        kwargs.setdefault("default", argparse.SUPPRESS)
        self.canonical = canonical
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        warnings.warn(
            f"{option_string} is deprecated; use {self.canonical}",
            DeprecationWarning,
            stacklevel=2,
        )
        setattr(namespace, self.dest, values)


# ----------------------------------------------------------------------
# Shared flags (one definition; subparsers cannot drift)
# ----------------------------------------------------------------------
def add_common_args(
    parser: argparse.ArgumentParser,
    *,
    seed: bool = True,
    seed_fallback: Optional[int] = None,
    experiment: bool = False,
    jobs: bool = False,
    out: bool = False,
    mode: bool = False,
    mode_default: str = "network",
    faults: bool = False,
    trial_jobs: bool = False,
    kernel: bool = False,
) -> None:
    """Attach the flags shared across subcommands.

    ``--seed`` always parses to ``None`` by default; the per-command
    fallback (documented in the help text) is applied by
    :func:`_resolved_seed`, so explicit seeds behave identically
    everywhere.  ``experiment`` adds the ``--configs/--trials/--mode/
    --out`` block of the figure pipelines (plus the fault flags and
    ``--trial-jobs``); ``jobs`` adds ``--jobs`` (``--n-jobs`` is kept
    as a deprecated alias); ``trial_jobs`` adds ``--trial-jobs`` (the
    experiment layer's deterministic fan-out, EXPERIMENTS.md);
    ``faults`` adds ``--fault-plan``/``--probe-retries``
    (docs/FAULTS.md); ``kernel`` adds ``--kernel`` (probability-kernel
    selection, docs/DESIGN.md -- identical probabilities, different
    compute).  ``--trace`` and ``--metrics`` are attached
    unconditionally: observability is available on every subcommand.
    """
    if seed:
        fallback = "fresh entropy" if seed_fallback is None else seed_fallback
        parser.add_argument(
            "--seed", type=int, default=None,
            help=f"RNG seed (default: {fallback})",
        )
        parser.set_defaults(seed_fallback=seed_fallback)
    if experiment:
        parser.add_argument(
            "--configs", type=int, default=12,
            help="configurations to sample (paper: 100)",
        )
        parser.add_argument(
            "--trials", type=int, default=30,
            help="trials per configuration (paper: 100)",
        )
        mode = True
        out = True
        faults = True
        trial_jobs = True
        kernel = True
    if faults:
        parser.add_argument(
            "--fault-plan", type=str, default=None, metavar="SPEC",
            help=(
                "seeded fault injection: 'key=value,...' pairs "
                "(packet_in_loss, flow_mod_loss, probe_reply_loss, "
                "controller_jitter, outage_rate, outage_duration, seed) "
                "or '@plan.json'; default: no faults"
            ),
        )
        parser.add_argument(
            "--probe-retries", type=int, default=0, metavar="N",
            help="probe retransmissions after a timeout (default: 0)",
        )
    if mode:
        parser.add_argument(
            "--mode", choices=("network", "table"), default=mode_default,
            help="trial fidelity: packet-level network or fast table replay",
        )
    if out:
        parser.add_argument(
            "--out", dest="out", type=str, default=None,
            metavar="PATH",
            help="archive the run as JSON (see repro.experiments.persist)",
        )
        parser.add_argument(
            "--save", dest="out", action=_DeprecatedAlias,
            canonical="--out", type=str, metavar="PATH",
        )
    if jobs:
        parser.add_argument(
            "--jobs", dest="jobs", type=int, default=1,
            help="worker processes for probe scoring (1 = in-process)",
        )
        parser.add_argument(
            "--n-jobs", dest="jobs", action=_DeprecatedAlias,
            canonical="--jobs", type=int, metavar="N",
        )
    if trial_jobs:
        parser.add_argument(
            "--trial-jobs", dest="trial_jobs", type=int, default=1,
            metavar="N",
            help=(
                "worker processes for the trial/config fan-out; results "
                "are bit-identical for every N (1 = serial loops)"
            ),
        )
    if kernel:
        from repro.core.kernels import KERNEL_CHOICES
        from repro.core.simpath import SIMPATH_CHOICES

        parser.add_argument(
            "--kernel", choices=KERNEL_CHOICES, default="auto",
            help=(
                "probability kernel: dense reference, sparse vectorised, "
                "or auto (sparse + compiled matvecs when available); "
                "all choices compute identical probabilities"
            ),
        )
        parser.add_argument(
            "--simpath", choices=SIMPATH_CHOICES, default="auto",
            help=(
                "simulation/screening path: reference linear scans and "
                "exact screening, fastpath indexed tables + certified "
                "float32 screening, or auto (fastpath); both paths "
                "produce bit-identical results"
            ),
        )
    parser.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="write an NDJSON span trace of this run to PATH",
    )
    parser.add_argument(
        "--metrics", type=str, default=None, metavar="PATH",
        help="write run metrics (counters/gauges/histograms) to PATH as JSON",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help=(
            "run under the determinism sanitizer (also enabled by "
            "REPRO_SANITIZE=1): verify frozen cache arrays at phase "
            "boundaries and reject unseeded generators"
        ),
    )


def _resolved_seed(args: argparse.Namespace) -> Optional[int]:
    """``--seed`` if given, else the subcommand's documented fallback."""
    if args.seed is not None:
        return int(args.seed)
    return getattr(args, "seed_fallback", None)


def _job_spec(args: argparse.Namespace, experiment: str) -> "JobSpec":
    """The unified job for this invocation (repro.apispec.JobSpec)."""
    from repro.apispec import JobSpec

    return JobSpec.from_args(args, experiment)


def _maybe_save(
    args: argparse.Namespace,
    result: Union["Fig6Result", "Fig7Result", "RobustnessResult"],
    spec: Optional["JobSpec"] = None,
) -> None:
    path = getattr(args, "out", None)
    if path:
        from repro.experiments.persist import save_result

        saved = save_result(
            result, path, spec=spec, seed=_resolved_seed(args)
        )
        print(f"saved run to {saved}")


def _print_execution(result: object) -> None:
    """Print the fan-out accounting table for a parallel run."""
    execution = getattr(result, "execution", None)
    if execution is None or execution.n_jobs <= 1:
        return
    from repro.experiments.report import format_table

    print()
    print(
        format_table(
            ["counter", "value"],
            execution.rows(),
            title="Parallel execution statistics",
        )
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import quick_attack_demo

    print(quick_attack_demo(seed=_resolved_seed(args)))
    return 0


def _cmd_fig6(args: argparse.Namespace, which: str) -> int:
    from repro.experiments.fig6 import run_fig6
    from repro.experiments.report import format_cdf, format_series, format_table

    spec = _job_spec(args, "fig6")
    result = run_fig6(spec)
    _maybe_save(args, result, spec)
    if which == "a":
        print(
            format_series(
                "P(absent)",
                result.bin_centers(),
                result.accuracy_series(),
                title="Figure 6a: average accuracy vs P(absence of target)",
            )
        )
    else:
        print(
            format_cdf(
                result.improvement_cdf(),
                title="Figure 6b: CDF of improvement over naive attacker",
            )
        )
    headline = result.headline()
    print()
    print(
        format_table(
            ["metric", "value"],
            [[k, v] for k, v in headline.items()],
            title="Headline statistics",
        )
    )
    _print_execution(result)
    return 0


def _cmd_fig7(args: argparse.Namespace, which: str) -> int:
    from repro.experiments.fig7 import run_fig7
    from repro.experiments.report import format_series, format_table

    spec = _job_spec(args, "fig7")
    result = run_fig7(spec)
    _maybe_save(args, result, spec)
    if which == "a":
        table = result.accuracy_by_covering_count()
        rows = [
            [count, row["constrained"], row["naive"], row["random"],
             int(row["n_configs"])]
            for count, row in table.items()
        ]
        print(
            format_table(
                ["#covering rules", "constrained", "naive", "random", "configs"],
                rows,
                title="Figure 7a: accuracy vs rules covering the target",
            )
        )
    else:
        print(
            format_series(
                "P(absent)",
                result.bin_centers(),
                result.accuracy_series(),
                title="Figure 7b: accuracy vs P(absence of target)",
            )
        )
    print()
    print(
        format_table(
            ["metric", "value"],
            [[k, v] for k, v in result.summary().items()],
            title="Summary",
        )
    )
    _print_execution(result)
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    from repro.experiments.report import paper_vs_measured
    from repro.experiments.tables import timing_table

    seed = _resolved_seed(args)
    table = timing_table(
        n_samples=args.samples, seed=seed if seed is not None else 0
    )
    hit, miss = table["hit"], table["miss"]
    print(
        paper_vs_measured(
            [
                ("hit mean (ms)", hit.paper_mean * 1e3, hit.mean * 1e3),
                ("hit std (ms)", hit.paper_std * 1e3, hit.std * 1e3),
                ("miss mean (ms)", miss.paper_mean * 1e3, miss.mean * 1e3),
                ("miss std (ms)", miss.paper_std * 1e3, miss.std * 1e3),
            ],
            title="Section VI-A probe latency characterisation",
        )
    )
    print(
        f"\nthreshold = {table['threshold'] * 1e3:g} ms, "
        f"classification accuracy = {table['threshold_accuracy']:.4f}"
    )
    return 0


def _cmd_leakage(args: argparse.Namespace) -> int:
    from repro.analysis.leakage import compare_structures, leakage_map
    from repro.countermeasures.transform import (
        merge_to_coarse,
        split_to_microflows,
    )
    from repro.experiments.report import format_table
    from repro.flows.config import ConfigGenerator, ConfigParams

    params = ConfigParams(
        n_flows=args.flows,
        mask_bits=args.flows.bit_length() - 1,
        n_rules=args.rules,
        cache_size=args.cache,
    )
    config = ConfigGenerator(params, seed=_resolved_seed(args)).sample()
    kwargs = dict(
        universe=config.universe,
        delta=config.delta,
        cache_size=config.cache_size,
        window_steps=config.window_steps,
    )
    leaks = leakage_map(config.policy, **kwargs)
    print(
        format_table(
            ["flow", "lambda (1/s)", "best-probe IG (bits)"],
            [
                [flow, config.universe.rates[flow], bits]
                for flow, bits in sorted(leaks.items(), key=lambda kv: -kv[1])
            ],
            title="Per-flow leakage map (Section VII-B3 defender tool)",
        )
    )
    rows = compare_structures(
        {
            "original": config.policy,
            "microflow split": split_to_microflows(config.policy),
            "coarse merge": merge_to_coarse(
                config.policy, max(1, len(config.policy) // 3)
            ),
        },
        **kwargs,
    )
    print()
    print(
        format_table(
            ["structure", "#rules", "worst target", "worst IG", "mean IG"],
            [
                [
                    r["structure"],
                    r["n_rules"],
                    r["worst_target"],
                    r["worst_leakage_bits"],
                    r["mean_leakage_bits"],
                ]
                for r in rows
            ],
            title="Candidate rule structures",
        )
    )
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    from repro.core.compact_model import CompactModel
    from repro.core.inference import ReconInference
    from repro.core.selection import best_probe_set
    from repro.experiments.report import format_table
    from repro.flows.config import ConfigGenerator

    spec = _job_spec(args, "select")
    config = ConfigGenerator(spec.config, seed=spec.seed).sample()
    model = CompactModel(
        config.policy,
        config.universe,
        config.delta,
        config.cache_size,
        kernel=spec.kernel,
    )
    inference = ReconInference(
        model, config.target_flow, config.window_steps
    )
    choice = best_probe_set(
        inference,
        spec.n_probes,
        method=spec.selection_method,
        n_jobs=spec.selection_jobs,
    )
    print(config.describe())
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["probes", ", ".join(str(f) for f in choice.probes)],
                ["joint gain (bits)", f"{choice.gain:.6f}"],
                ["prior P(absent)", f"{inference.prior_absent():.6f}"],
                ["method", spec.selection_method],
            ],
            title=f"Optimal {spec.n_probes}-probe set (Section V)",
        )
    )
    if choice.stats is not None:
        print()
        print(
            format_table(
                ["counter", "value"],
                choice.stats.rows(),
                title="Probe-scoring engine statistics",
            )
        )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.reproduce import reproduce_all

    report = reproduce_all(_job_spec(args, "reproduce"))
    print(report.render())
    if args.out:
        directory = report.save(args.out)
        print(f"\narchived run under {directory}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_series, format_table
    from repro.experiments.robustness import run_robustness

    spec = _job_spec(args, "robustness")
    result = run_robustness(spec)
    _maybe_save(args, result, spec)
    print(
        format_series(
            "fault rate",
            list(result.rates),
            result.accuracy_series(),
            title=(
                "Robustness: average accuracy vs fault rate "
                f"({', '.join(result.kinds)})"
            ),
        )
    )
    print()
    print(
        format_table(
            ["metric", "value"],
            [[k, v] for k, v in result.summary().items()],
            title="Robustness summary",
        )
    )
    _print_execution(result)
    return 0


def _cmd_defend(args: argparse.Namespace) -> int:
    from repro.experiments.defend import run_defend
    from repro.experiments.report import format_table

    spec = _job_spec(args, "defend")
    try:
        result = run_defend(spec)
    except ValueError as error:
        print(f"repro-sdn defend: {error}", file=sys.stderr)
        return 2
    _maybe_save(args, result, spec)
    clean = result.rates[0]
    rows = []
    # result.baseline holds one cell per fault rate; the clean-channel
    # table wants only the rate == rates[0] one (the first).
    for cell in [result.baseline[0]] + [
        result.cell(name, clean) for name in result.defenses
    ]:
        rows.append([
            cell.defense,
            f"{cell.accuracies.get('model', float('nan')):.4f}",
            f"{cell.rtt_auc:.4f}",
            f"{cell.effective_leakage_bits:.6f}",
            f"{cell.detector_auc:.4f}",
            f"{cell.benign_delay_seconds:.6f}",
            str(cell.rules_installed),
        ])
    print(
        format_table(
            [
                "defense",
                "model acc",
                "rtt auc",
                "leak bits",
                "det auc",
                "delay s",
                "rules",
            ],
            rows,
            title=(
                "Defense grid (clean channel, detector="
                f"{result.detector_method})"
            ),
        )
    )
    if len(result.rates) > 1:
        fault_rows = [
            [cell.defense, f"{cell.rate:g}",
             f"{cell.accuracies.get('model', float('nan')):.4f}"]
            for cell in result.baseline + result.cells
        ]
        print()
        print(
            format_table(
                ["defense", "fault rate", "model acc"],
                fault_rows,
                title=(
                    "Defense x fault-rate model accuracy "
                    f"({', '.join(result.kinds)})"
                ),
            )
        )
    print()
    print(
        format_table(
            ["metric", "value"],
            [[k, v] for k, v in result.summary().items()],
            title="Defend summary",
        )
    )
    _print_execution(result)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import resume_spec, submit_spec

    spec = resume_spec(_job_spec(args, args.experiment))
    try:
        path = submit_spec(args.spool, spec)
    except ValueError as error:
        print(f"repro-sdn submit: {error}", file=sys.stderr)
        return 2
    print(f"spooled {spec.job_id} -> {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        ServiceBudgetExhausted,
        list_pending,
        serve_jobs,
    )

    specs = list_pending(args.spool)
    if not specs:
        print(f"no jobs spooled under {args.spool}", file=sys.stderr)
        return 0
    try:
        results = serve_jobs(
            specs,
            args.state,
            shards=args.shards,
            max_sessions=args.max_sessions,
        )
    except ValueError as error:
        print(f"repro-sdn serve: {error}", file=sys.stderr)
        return 2
    except ServiceBudgetExhausted as error:
        # Checkpoints up to the budget are durable; rerunning `serve`
        # on the same state directory resumes exactly here.
        print(f"repro-sdn serve: {error}", file=sys.stderr)
        return 3
    for job_id in sorted(results):
        metrics = results[job_id].get("metrics", {})
        summary = ", ".join(
            f"{name}={value:.4f}" if isinstance(value, float) else
            f"{name}={value}"
            for name, value in sorted(metrics.items())  # type: ignore[union-attr]
        )
        print(f"{job_id}: {summary}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    from repro.lint import ALL_RULES, run_checks

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.summary}")
        from repro.lint.project import PROJECT_RULES

        for rule_id, summary in PROJECT_RULES:
            print(f"{rule_id}  {summary}  [--project]")
        return 0
    if args.project:
        return _cmd_check_project(args)
    select = args.select.split(",") if args.select else None
    try:
        findings = run_checks(args.paths, select=select, jobs=args.jobs)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro-sdn check: {error}", file=sys.stderr)
        return 2
    if args.format == "sarif":
        from repro.lint.project.sarif import to_sarif

        rules = [(rule.rule_id, rule.summary) for rule in ALL_RULES]
        print(json.dumps(to_sarif(findings, rules), indent=2))
    elif args.format == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        checked = ", ".join(args.paths)
        if findings:
            print(f"\n{len(findings)} finding(s) in {checked}")
        else:
            print(f"clean: no findings in {checked}")
    return 1 if findings else 0


def _cmd_check_project(args: argparse.Namespace) -> int:
    """The whole-program pass (docs/STATIC_ANALYSIS.md, project rules).

    Exit status 0 only when there are no new findings *and* no stale
    baseline entries; 1 on either; 2 on usage errors.
    """
    import json
    from pathlib import Path

    from repro.lint.project import (
        PROJECT_RULES,
        Baseline,
        run_project_checks,
        to_sarif,
    )

    if len(args.paths) != 1:
        print(
            "repro-sdn check --project: exactly one package directory "
            f"expected, got {args.paths!r}",
            file=sys.stderr,
        )
        return 2
    root = args.paths[0]
    if Path(root).name == "src" and (Path(root) / "repro").is_dir():
        root = str(Path(root) / "repro")  # the default 'src' positional
    baseline: Optional[Baseline] = None
    baseline_path = args.baseline
    if baseline_path is None and Path("lint-baseline.json").is_file():
        baseline_path = "lint-baseline.json"
    select = args.select.split(",") if args.select else None
    try:
        if baseline_path is not None and not args.write_baseline:
            baseline = Baseline.load(baseline_path)
        report = run_project_checks(root, baseline=baseline, select=select)
    except (OSError, ValueError) as error:
        print(f"repro-sdn check --project: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        target = baseline_path or "lint-baseline.json"
        document = Baseline.skeleton(report.new)
        Path(target).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(
            f"wrote {len(document['entries'])} entr(y/ies) to {target}; "
            "fill in every justification before committing",
            file=sys.stderr,
        )
        return 0
    if args.format == "sarif":
        print(json.dumps(to_sarif(report.new, PROJECT_RULES), indent=2))
    elif args.format == "json":
        print(json.dumps([f.to_json() for f in report.new], indent=2))
    else:
        for finding in report.new:
            print(finding.render())
        for entry in report.stale:
            print(
                f"stale baseline entry: {entry.rule} {entry.path} "
                f"[{entry.symbol}] matches nothing -- remove it"
            )
        graph = report.graph
        summary = (
            f"{len(graph.modules)} modules, {len(graph.functions)} "
            f"functions, {len(graph.classes)} classes"
        )
        if report.ok:
            waived = (
                f" ({len(report.waived)} baselined)" if report.waived else ""
            )
            print(f"clean: no new project findings in {root}{waived} "
                  f"[{summary}]")
        else:
            print(
                f"\n{len(report.new)} new finding(s), "
                f"{len(report.stale)} stale baseline entr(y/ies) in "
                f"{root} [{summary}]"
            )
    return 0 if report.ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    """Summarise an NDJSON trace file into a per-span-name table."""
    import json

    from repro.obs.stats import format_table as format_span_table
    from repro.obs.stats import summarize_spans
    from repro.obs.trace import read_ndjson

    try:
        records = read_ndjson(args.trace_file)
    except (OSError, ValueError) as error:
        print(f"repro-sdn stats: {error}", file=sys.stderr)
        return 2
    rows = summarize_spans(records)
    if args.limit is not None:
        rows = rows[: max(args.limit, 0)]
    if args.format == "json":
        print(json.dumps(rows, indent=2))
    else:
        print(format_span_table(rows))
        print(f"\n{len(records)} span(s) in {args.trace_file}")
    return 0


def _cmd_statecount(_: argparse.Namespace) -> int:
    from repro.experiments.report import format_table
    from repro.experiments.tables import statecount_report

    report = statecount_report()
    exp = report["experiment"]
    example = report["paper_example"]
    print(
        format_table(
            ["setting", "basic model states", "compact model states"],
            [
                [
                    f"evaluation (|Rules|={exp['n_rules']}, t={exp['timeout']}, "
                    f"n={exp['cache_size']})",
                    exp["basic"],
                    exp["compact"],
                ],
                [
                    f"paper example (|Rules|={example['n_rules']}, "
                    f"t={example['timeout']}, n={example['cache_size']})",
                    example["basic_formula"],
                    "-",
                ],
            ],
            title="State-space sizes (Sections IV-A2 / IV-B)",
        )
    )
    print(
        "\nnote: the paper quotes ~5.9e7 for its example; the printed "
        "formula evaluates to the figure above (see EXPERIMENTS.md)."
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sdn",
        description=(
            "Reproduction of 'Flow Reconnaissance via Timing Attacks on "
            "SDN Switches' (ICDCS 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="one end-to-end attack walkthrough")
    add_common_args(demo, seed_fallback=7)
    demo.set_defaults(func=_cmd_demo)

    for fig, runner in (
        ("fig6a", lambda a: _cmd_fig6(a, "a")),
        ("fig6b", lambda a: _cmd_fig6(a, "b")),
        ("fig7a", lambda a: _cmd_fig7(a, "a")),
        ("fig7b", lambda a: _cmd_fig7(a, "b")),
    ):
        p = sub.add_parser(fig, help=f"reproduce {fig}")
        p.add_argument(
            "--defense", type=str, default=None, metavar="NAME",
            help=(
                "attach one countermeasure to every trial network "
                "(none, delay, proactive; requires --mode network)"
            ),
        )
        add_common_args(p, experiment=True, jobs=True)
        p.set_defaults(func=runner)

    headline = sub.add_parser(
        "headline", help="the paper's summary statistics (fig6 pipeline)"
    )
    add_common_args(headline, experiment=True, jobs=True)
    headline.set_defaults(func=lambda a: _cmd_fig6(a, "b"))

    timing = sub.add_parser("timing", help="Section VI-A latency table")
    timing.add_argument("--samples", type=int, default=300)
    add_common_args(timing, seed_fallback=0)
    timing.set_defaults(func=_cmd_timing)

    statecount = sub.add_parser(
        "statecount", help="Section IV state-space comparison"
    )
    add_common_args(statecount, seed=False)
    statecount.set_defaults(func=_cmd_statecount)

    leakage = sub.add_parser(
        "leakage", help="defender-side rule-structure leakage audit"
    )
    leakage.add_argument(
        "--flows", type=int, default=8,
        help="universe size (a power of two; default 8 for speed)",
    )
    leakage.add_argument("--rules", type=int, default=8)
    leakage.add_argument("--cache", type=int, default=4)
    add_common_args(leakage, seed_fallback=12)
    leakage.set_defaults(func=_cmd_leakage)

    select = sub.add_parser(
        "select",
        help="optimal probe-set selection with engine statistics",
    )
    select.add_argument(
        "--flows", type=int, default=8,
        help="universe size (a power of two; default 8 for speed)",
    )
    select.add_argument("--rules", type=int, default=8)
    select.add_argument("--cache", type=int, default=4)
    select.add_argument(
        "--probes", type=int, default=2,
        help="probe-set size (Section V-B)",
    )
    select.add_argument(
        "--method", choices=("exhaustive", "greedy"), default="exhaustive"
    )
    add_common_args(select, seed_fallback=12, jobs=True, kernel=True)
    select.set_defaults(func=_cmd_select)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every paper artifact in one run"
    )
    reproduce.add_argument(
        "--scale", type=float, default=0.1,
        help="fraction of the paper's 100 configs x 100 trials",
    )
    add_common_args(
        reproduce, seed_fallback=2017, mode=True, mode_default="table",
        out=True, faults=True, trial_jobs=True,
    )
    reproduce.set_defaults(func=_cmd_reproduce)

    robustness = sub.add_parser(
        "robustness",
        help="accuracy-vs-fault-rate sweep (seeded fault injection)",
    )
    robustness.add_argument(
        "--rates", type=str, default=None, metavar="R1,R2,...",
        help="comma-separated fault rates (default: 0,0.05,0.1,0.2,0.4)",
    )
    robustness.add_argument(
        "--kinds", type=str, default=None, metavar="KIND,...",
        help=(
            "loss kinds the swept rate applies to "
            "(default: packet_in_loss,probe_reply_loss)"
        ),
    )
    add_common_args(robustness, seed_fallback=2017, experiment=True, jobs=True)
    robustness.set_defaults(func=_cmd_robustness)

    defend = sub.add_parser(
        "defend",
        help="countermeasure x attacker x fault-plan evaluation grid",
    )
    defend.add_argument(
        "--defenses", dest="defense", type=str, default=None,
        metavar="NAME,...",
        help=(
            "countermeasures to sweep (default: none,delay,proactive; "
            "see repro.countermeasures)"
        ),
    )
    defend.add_argument(
        "--detector", choices=("threshold", "logistic"), default=None,
        help="online recon detector scored in every cell (default: logistic)",
    )
    defend.add_argument(
        "--rates", type=str, default=None, metavar="R1,R2,...",
        help="fault rates crossed with the defenses (default: 0)",
    )
    defend.add_argument(
        "--kinds", type=str, default=None, metavar="KIND,...",
        help=(
            "loss kinds the swept rate applies to "
            "(default: packet_in_loss,probe_reply_loss)"
        ),
    )
    add_common_args(defend, seed_fallback=2017, experiment=True, jobs=True)
    defend.set_defaults(func=_cmd_defend)

    submit = sub.add_parser(
        "submit",
        help="spool a job (unified JobSpec) for repro-sdn serve",
    )
    submit.add_argument(
        "experiment",
        choices=("recon", "fig6", "fig7", "robustness", "defend"),
        help="what the job runs (recon = per-target service sessions)",
    )
    submit.add_argument(
        "--spool", type=str, default="spool", metavar="DIR",
        help="spool directory shared with `repro-sdn serve`",
    )
    submit.add_argument(
        "--job-id", dest="job_id", type=str, default=None,
        help="job identity (default: job-<spec digest prefix>)",
    )
    submit.add_argument(
        "--targets", type=str, default=None, metavar="T1,T2,...",
        help="explicit target flow indices for a recon job",
    )
    submit.add_argument(
        "--n-targets", dest="n_targets", type=int, default=4, metavar="N",
        help="eligible targets to enumerate when --targets is not given",
    )
    submit.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="session shards recorded on the spec (serve may override)",
    )
    add_common_args(submit, seed_fallback=2017, experiment=True, jobs=True)
    submit.set_defaults(func=_cmd_submit)

    serve = sub.add_parser(
        "serve",
        help="run spooled jobs through the reconnaissance service",
    )
    serve.add_argument(
        "--spool", type=str, default="spool", metavar="DIR",
        help="spool directory to drain (see `repro-sdn submit`)",
    )
    serve.add_argument(
        "--state", type=str, default="service-state", metavar="DIR",
        help="checkpoint directory (resume point after a kill)",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="worker processes sharing the session load",
    )
    serve.add_argument(
        "--max-sessions", dest="max_sessions", type=int, default=None,
        metavar="N",
        help=(
            "stop (exit 3) after N newly executed sessions; completed "
            "checkpoints survive and a later serve resumes from them"
        ),
    )
    add_common_args(serve, seed=False)
    serve.set_defaults(func=_cmd_serve)

    check = sub.add_parser(
        "check",
        help="domain-aware static analysis over the probability kernels",
    )
    check.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    check.add_argument(
        "--select", type=str, default=None, metavar="RULES",
        help="comma-separated rule IDs to run (default: all)",
    )
    check.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="finding output format",
    )
    check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule IDs and summaries, then exit",
    )
    check.add_argument(
        "--project", action="store_true",
        help=(
            "run the whole-program rules (SEED10x/MUT10x/PAR101) over "
            "one package directory instead of the per-file rules"
        ),
    )
    check.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=(
            "worker processes for the per-file pass "
            "(default: auto; 1 forces serial)"
        ),
    )
    check.add_argument(
        "--baseline", type=str, default=None, metavar="PATH",
        help=(
            "project-finding waiver file "
            "(default: lint-baseline.json when present)"
        ),
    )
    check.add_argument(
        "--write-baseline", action="store_true",
        help=(
            "with --project: write a baseline skeleton covering the "
            "current findings (justifications left blank) and exit 0"
        ),
    )
    add_common_args(check, seed=False)
    check.set_defaults(func=_cmd_check)

    stats = sub.add_parser(
        "stats", help="summarise an NDJSON trace (from --trace) per span"
    )
    stats.add_argument(
        "trace_file", help="NDJSON trace file produced with --trace"
    )
    stats.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="summary output format",
    )
    stats.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="keep only the top N span names by total time",
    )
    add_common_args(stats, seed=False)
    stats.set_defaults(func=_cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (installed as ``repro-sdn``).

    When ``--trace`` or ``--metrics`` is given, the whole command runs
    under a recording :class:`~repro.obs.Instrumentation` backend inside
    a ``cli.<command>`` root span, and the requested files are written
    after the command returns (even on a non-zero exit status).

    With ``--sanitize`` (or ``REPRO_SANITIZE=1``) the command runs under
    the determinism sanitizer (:mod:`repro.obs.sanitize`,
    docs/OBSERVABILITY.md): frozen cache arrays are checksummed at every
    phase/span boundary and unseeded generator construction raises.
    """
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.obs import sanitize

    if getattr(args, "sanitize", False) or sanitize.enabled_by_env():
        with sanitize.sanitized() as active:
            status = _run_instrumented(args)
        print(
            f"sanitizer: {len(active.checkpoints)} boundary check(s), "
            f"{len(active.report()['guarded_arrays'])} guarded array(s) -- "
            "clean",
            file=sys.stderr,
        )
        return status
    return _run_instrumented(args)


def _run_instrumented(args: argparse.Namespace) -> int:
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if not trace_path and not metrics_path:
        return args.func(args)

    from repro.obs import Instrumentation, use_instrumentation

    obs = Instrumentation()
    with use_instrumentation(obs):
        with obs.span(f"cli.{args.command}"):
            status = args.func(args)
    if trace_path:
        obs.write_trace(trace_path)
        print(f"wrote trace to {trace_path}", file=sys.stderr)
    if metrics_path:
        obs.write_metrics(metrics_path)
        print(f"wrote metrics to {metrics_path}", file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
