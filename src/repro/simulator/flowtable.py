"""An Open vSwitch-like flow table.

Implements the cache semantics the paper's models abstract (and which
the cited OVS documentation prescribes):

* **priority matching** -- a lookup returns the highest-priority entry
  covering the packet's flow;
* **idle timeouts** -- an entry expires when unmatched for its idle
  timeout; a successful lookup refreshes it;
* **hard timeouts** -- an entry expires a fixed time after install
  regardless of matches;
* **capacity + eviction** -- when an install would exceed capacity, the
  evictable (timeout-bearing) entry with the smallest remaining lifetime
  is removed, the paper's "shortest-time-remaining" policy.  Entries
  with no timeout (the pre-installed helper rules) are never evicted,
  matching the paper's note that OVS "will not evict the rules without
  timeouts".

Expiry is processed lazily at each operation; :meth:`FlowTable.sweep`
forces it, which trial runners call when they need exact ground truth at
a point in time.

Two implementations share these semantics:

* :class:`ReferenceFlowTable` -- the original linear-scan code: every
  operation walks all entries.  Simple, and the ground truth the fast
  path is pinned against (tests/simulator/test_flowtable.py and the
  simpath differential suite).
* :class:`IndexedFlowTable` -- the fast path: priority-bucketed entries
  with a per-flow winner cache for lookups, and a lazy-deletion expiry
  heap so ``sweep`` / ``next_expiry`` / ``_pick_victim`` touch only the
  entries whose timers actually fire instead of scanning the table.

:func:`make_flow_table` selects between them via
:mod:`repro.core.simpath`; the observable behavior (matches, victims,
expiry order, stats, obs counters) is identical by construction.  The
pinned tie-breaks, in both implementations:

* lookup winner: highest priority, then earliest-installed;
* eviction victim: smallest remaining lifetime, then earliest
  ``install_time``, then earliest-installed;
* ``sweep`` returns expired entries in install order.

``FlowTable`` remains an alias of the reference implementation so
existing imports keep their exact historical behavior.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.simpath import resolve_simpath
from repro.flows.flowid import FlowId
from repro.flows.rules import Rule
from repro.obs import get_instrumentation


@dataclass
class TableEntry:
    """One cached rule plus its runtime timer state."""

    rule: Rule
    out_port: int
    install_time: float
    last_match: float

    def remaining(self, now: float) -> float:
        """Seconds until expiry; ``inf`` for permanent entries."""
        remaining = math.inf
        if self.rule.idle_timeout > 0:
            remaining = min(
                remaining, self.last_match + self.rule.idle_timeout - now
            )
        if self.rule.hard_timeout > 0:
            remaining = min(
                remaining, self.install_time + self.rule.hard_timeout - now
            )
        return remaining

    def expired(self, now: float) -> bool:
        """Whether the entry should have been removed by ``now``."""
        return self.remaining(now) <= 0.0

    @property
    def evictable(self) -> bool:
        """Permanent (timeout-free) entries are never evicted."""
        return not self.rule.is_permanent()


class ReferenceFlowTable:
    """Capacity-limited flow table with OVS eviction semantics."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[str, TableEntry] = {}
        #: Counters exposed for tests and diagnostics.
        self.stats = {
            "hits": 0,
            "misses": 0,
            "installs": 0,
            "evictions": 0,
            "expirations": 0,
        }
        # Observability mirror of ``stats`` (see docs/OBSERVABILITY.md).
        # Instruments are resolved once here; under the default null
        # backend they are shared no-op singletons.
        obs = get_instrumentation().metrics
        self._obs_hits = obs.counter("sim.table.hits")
        self._obs_misses = obs.counter("sim.table.misses")
        self._obs_installs = obs.counter("sim.table.installs")
        self._obs_evictions = obs.counter("sim.table.evictions")
        self._obs_expirations = obs.counter("sim.table.expirations")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rule_name: str) -> bool:
        return rule_name in self._entries

    @property
    def entries(self) -> Tuple[TableEntry, ...]:
        """All live entries (order unspecified)."""
        return tuple(self._entries.values())

    def rule_names(self) -> Tuple[str, ...]:
        """Names of cached rules (sorted, for stable comparisons)."""
        return tuple(sorted(self._entries.keys()))

    # ------------------------------------------------------------------
    # Expiry
    # ------------------------------------------------------------------
    def sweep(self, now: float) -> List[TableEntry]:
        """Remove and return entries that have expired by ``now``."""
        expired = [
            entry for entry in self._entries.values() if entry.expired(now)
        ]
        for entry in expired:
            del self._entries[entry.rule.name]
            self.stats["expirations"] += 1
            self._obs_expirations.inc()
        return expired

    # ------------------------------------------------------------------
    # Lookup / install
    # ------------------------------------------------------------------
    def lookup(
        self, flow: FlowId, now: float, refresh: bool = True
    ) -> Optional[TableEntry]:
        """Match ``flow`` against the table.

        Returns the highest-priority covering entry, refreshing its idle
        timer (unless ``refresh=False``, used for non-mutating peeks).
        Records hit/miss statistics.
        """
        self.sweep(now)
        best: Optional[TableEntry] = None
        for entry in self._entries.values():
            if not entry.rule.covers(flow):
                continue
            if best is None or entry.rule.priority > best.rule.priority:
                best = entry
        if best is None:
            self.stats["misses"] += 1
            self._obs_misses.inc()
            return None
        self.stats["hits"] += 1
        self._obs_hits.inc()
        if refresh:
            best.last_match = now
        return best

    def peek(self, flow: FlowId, now: float) -> Optional[TableEntry]:
        """Non-mutating lookup: no timer refresh, no statistics."""
        best: Optional[TableEntry] = None
        for entry in self._entries.values():
            if entry.expired(now) or not entry.rule.covers(flow):
                continue
            if best is None or entry.rule.priority > best.rule.priority:
                best = entry
        return best

    def install(
        self, rule: Rule, out_port: int, now: float
    ) -> Optional[TableEntry]:
        """Install ``rule``; returns the evicted entry, if any.

        Re-installing a cached rule refreshes its timers in place (OVS
        ``flow-mod`` modify semantics).  When the table is full, the
        evictable entry with the smallest remaining lifetime is removed;
        if every entry is permanent, the install is dropped (OVS returns
        a table-full error) and ``None`` is returned with the rule *not*
        cached.
        """
        self.sweep(now)
        existing = self._entries.get(rule.name)
        if existing is not None:
            existing.install_time = now
            existing.last_match = now
            existing.out_port = out_port
            return None
        evicted: Optional[TableEntry] = None
        if len(self._entries) >= self.capacity:
            evicted = self._pick_victim(now)
            if evicted is None:
                return None  # table full of permanent rules
            del self._entries[evicted.rule.name]
            self.stats["evictions"] += 1
            self._obs_evictions.inc()
        self._entries[rule.name] = TableEntry(
            rule=rule, out_port=out_port, install_time=now, last_match=now
        )
        self.stats["installs"] += 1
        self._obs_installs.inc()
        return evicted

    def _pick_victim(self, now: float) -> Optional[TableEntry]:
        """Shortest-remaining-time evictable entry (ties: oldest install)."""
        candidates = [e for e in self._entries.values() if e.evictable]
        if not candidates:
            return None
        return min(candidates, key=lambda e: (e.remaining(now), e.install_time))

    def remove(self, rule_name: str) -> bool:
        """Explicitly delete an entry (controller-driven removal)."""
        return self._entries.pop(rule_name, None) is not None

    def next_expiry(self, now: float) -> float:
        """Earliest future expiry time, or ``inf`` when none."""
        times = [
            now + entry.remaining(now)
            for entry in self._entries.values()
            if entry.evictable
        ]
        return min(times) if times else math.inf


#: Historical name: existing imports get the reference implementation.
FlowTable = ReferenceFlowTable


def _entry_expiry(entry: TableEntry) -> float:
    """Absolute expiry time under the entry's current timers.

    ``entry.remaining(now)`` equals ``expiry - now`` after rounding (the
    reference's per-term subtractions commute with ``min`` because
    rounding is monotone), so ordering entries by this absolute time
    reproduces the reference's remaining-lifetime ordering at every
    ``now``.
    """
    expiry = math.inf
    rule = entry.rule
    if rule.idle_timeout > 0:
        expiry = min(expiry, entry.last_match + rule.idle_timeout)
    if rule.hard_timeout > 0:
        expiry = min(expiry, entry.install_time + rule.hard_timeout)
    return expiry


class IndexedFlowTable(ReferenceFlowTable):
    """The fast-path flow table: indexed lookups, heap-driven expiry.

    Three structures ride alongside the entry dict:

    * ``_buckets`` -- entries grouped by priority, priorities kept in a
      descending sorted list: a lookup scans buckets top-down and stops
      at the first cover, instead of scanning the whole table;
    * ``_winners`` -- a per-flow winner cache (the exact-match index:
      keyed by the flow 5-tuple), invalidated whenever the entry set
      changes; repeated lookups of the same flow are O(1);
    * ``_heap`` -- a lazy-deletion min-heap of
      ``(expiry, install_time, seq, name)`` tuples; timer refreshes push
      a fresh tuple and leave the stale one to be discarded on pop, so
      ``sweep`` / ``next_expiry`` / ``_pick_victim`` cost O(log n) per
      fired timer rather than a table scan.

    The heap tuple mirrors the reference tie-breaks: remaining lifetime
    (== expiry at fixed ``now``), then ``install_time``, then install
    sequence (the reference's dict order).  ``sweep`` re-sorts the
    expired batch by sequence to return the reference's install order.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._buckets: Dict[int, Dict[str, TableEntry]] = {}
        #: Priorities with a live bucket, sorted descending.
        self._priorities: List[int] = []
        self._winners: Dict[
            Tuple[int, int, int, int, int], Optional[TableEntry]
        ] = {}
        #: (expiry, install_time, seq, name) with stale tuples left in.
        self._heap: List[Tuple[float, float, int, str]] = []
        self._seq = 0
        #: seq/expiry per live entry, to recognise stale heap tuples.
        self._index: Dict[str, Tuple[int, float]] = {}
        self._entries_cache: Optional[Tuple[TableEntry, ...]] = None
        self._names_cache: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _index_add(self, entry: TableEntry) -> None:
        name = entry.rule.name
        priority = entry.rule.priority
        bucket = self._buckets.get(priority)
        if bucket is None:
            bucket = self._buckets[priority] = {}
            self._insert_priority(priority)
        bucket[name] = entry
        seq = self._seq
        self._seq += 1
        expiry = _entry_expiry(entry)
        self._index[name] = (seq, expiry)
        if entry.evictable:
            heapq.heappush(
                self._heap, (expiry, entry.install_time, seq, name)
            )
        self._winners.clear()
        self._entries_cache = None
        self._names_cache = None

    def _index_discard(self, entry: TableEntry) -> None:
        name = entry.rule.name
        priority = entry.rule.priority
        bucket = self._buckets[priority]
        del bucket[name]
        if not bucket:
            del self._buckets[priority]
            self._priorities.remove(priority)
        del self._index[name]
        self._winners.clear()
        self._entries_cache = None
        self._names_cache = None

    def _insert_priority(self, priority: int) -> None:
        # bisect on a descending list (bisect's key/reverse support is
        # too new for the 3.9 floor): find the first smaller priority.
        priorities = self._priorities
        lo, hi = 0, len(priorities)
        while lo < hi:
            mid = (lo + hi) // 2
            if priorities[mid] > priority:
                lo = mid + 1
            else:
                hi = mid
        priorities.insert(lo, priority)

    def _reschedule(self, entry: TableEntry) -> None:
        """Re-key the entry's heap tuple after a timer refresh."""
        name = entry.rule.name
        seq, _ = self._index[name]
        expiry = _entry_expiry(entry)
        self._index[name] = (seq, expiry)
        if entry.evictable:
            heapq.heappush(
                self._heap, (expiry, entry.install_time, seq, name)
            )
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        # Bound the stale-tuple backlog: rebuild once the heap is mostly
        # garbage (idle refreshes push one tuple per cache hit).
        if len(self._heap) > 64 and len(self._heap) > 8 * len(self._entries):
            live = []
            for name, (seq, expiry) in self._index.items():
                entry = self._entries[name]
                if entry.evictable:
                    live.append((expiry, entry.install_time, seq, name))
            heapq.heapify(live)
            self._heap = live

    def _heap_top(self) -> Optional[Tuple[float, float, int, str]]:
        """The smallest live heap tuple, discarding stale ones."""
        heap = self._heap
        while heap:
            expiry, _, seq, name = heap[0]
            current = self._index.get(name)
            if current is not None and current == (seq, expiry):
                return heap[0]
            heapq.heappop(heap)
        return None

    # ------------------------------------------------------------------
    # API overrides
    # ------------------------------------------------------------------
    @property
    def entries(self) -> Tuple[TableEntry, ...]:
        """All live entries (order unspecified)."""
        if self._entries_cache is None:
            self._entries_cache = tuple(self._entries.values())
        return self._entries_cache

    def rule_names(self) -> Tuple[str, ...]:
        """Names of cached rules (sorted, for stable comparisons)."""
        if self._names_cache is None:
            self._names_cache = tuple(sorted(self._entries.keys()))
        return self._names_cache

    def sweep(self, now: float) -> List[TableEntry]:
        """Remove and return entries that have expired by ``now``."""
        expired: List[Tuple[int, TableEntry]] = []
        while True:
            top = self._heap_top()
            if top is None or top[0] > now:
                break
            heapq.heappop(self._heap)
            _, _, seq, name = top
            entry = self._entries.pop(name)
            self._index_discard(entry)
            expired.append((seq, entry))
            self.stats["expirations"] += 1
            self._obs_expirations.inc()
        # The reference returns expired entries in dict (install) order.
        expired.sort(key=lambda item: item[0])
        return [entry for _, entry in expired]

    def lookup(
        self, flow: FlowId, now: float, refresh: bool = True
    ) -> Optional[TableEntry]:
        """Match ``flow`` against the table (see :class:`ReferenceFlowTable`)."""
        self.sweep(now)
        key = (flow.src, flow.dst, flow.proto, flow.sport, flow.dport)
        try:
            best = self._winners[key]
        except KeyError:
            best = self._scan(flow)
            self._winners[key] = best
        if best is None:
            self.stats["misses"] += 1
            self._obs_misses.inc()
            return None
        self.stats["hits"] += 1
        self._obs_hits.inc()
        if refresh:
            best.last_match = now
            # Only an idle timeout makes the refresh move the expiry.
            if best.rule.idle_timeout > 0:
                self._reschedule(best)
        return best

    def _scan(self, flow: FlowId) -> Optional[TableEntry]:
        """Priority-bucketed winner scan (reference tie-breaks).

        Buckets are visited in descending priority; within a bucket the
        first-installed cover wins, which is exactly the reference's
        "strictly greater replaces" linear scan over its install-ordered
        dict.
        """
        for priority in self._priorities:
            for entry in self._buckets[priority].values():
                if entry.rule.covers(flow):
                    return entry
        return None

    def peek(self, flow: FlowId, now: float) -> Optional[TableEntry]:
        """Non-mutating lookup: no timer refresh, no statistics."""
        for priority in self._priorities:
            for entry in self._buckets[priority].values():
                if not entry.expired(now) and entry.rule.covers(flow):
                    return entry
        return None

    def install(
        self, rule: Rule, out_port: int, now: float
    ) -> Optional[TableEntry]:
        """Install ``rule`` (see :class:`ReferenceFlowTable`)."""
        self.sweep(now)
        existing = self._entries.get(rule.name)
        if existing is not None:
            existing.install_time = now
            existing.last_match = now
            existing.out_port = out_port
            self._reschedule(existing)
            return None
        evicted: Optional[TableEntry] = None
        if len(self._entries) >= self.capacity:
            evicted = self._pick_victim(now)
            if evicted is None:
                return None  # table full of permanent rules
            del self._entries[evicted.rule.name]
            self._index_discard(evicted)
            self.stats["evictions"] += 1
            self._obs_evictions.inc()
        entry = TableEntry(
            rule=rule, out_port=out_port, install_time=now, last_match=now
        )
        self._entries[rule.name] = entry
        self._index_add(entry)
        self.stats["installs"] += 1
        self._obs_installs.inc()
        return evicted

    def _pick_victim(self, now: float) -> Optional[TableEntry]:
        """Shortest-remaining-time evictable entry (ties: oldest install)."""
        top = self._heap_top()
        if top is None:
            return None
        return self._entries[top[3]]

    def remove(self, rule_name: str) -> bool:
        """Explicitly delete an entry (controller-driven removal)."""
        entry = self._entries.pop(rule_name, None)
        if entry is None:
            return False
        self._index_discard(entry)
        return True

    def next_expiry(self, now: float) -> float:
        """Earliest future expiry time, or ``inf`` when none."""
        top = self._heap_top()
        if top is None:
            return math.inf
        # The reference computes ``now + (expiry - now)``; reproduce its
        # rounding so both paths return bit-identical times.
        return now + (top[0] - now)


def make_flow_table(
    capacity: int, simpath: Optional[str] = None
) -> ReferenceFlowTable:
    """The flow table for the resolved simulation path.

    ``None`` consults the ambient default (the ``REPRO_SIMPATH``
    environment variable, then ``auto``); see :mod:`repro.core.simpath`.
    """
    if resolve_simpath(simpath).fast:
        return IndexedFlowTable(capacity)
    return ReferenceFlowTable(capacity)
