"""An Open vSwitch-like flow table.

Implements the cache semantics the paper's models abstract (and which
the cited OVS documentation prescribes):

* **priority matching** -- a lookup returns the highest-priority entry
  covering the packet's flow;
* **idle timeouts** -- an entry expires when unmatched for its idle
  timeout; a successful lookup refreshes it;
* **hard timeouts** -- an entry expires a fixed time after install
  regardless of matches;
* **capacity + eviction** -- when an install would exceed capacity, the
  evictable (timeout-bearing) entry with the smallest remaining lifetime
  is removed, the paper's "shortest-time-remaining" policy.  Entries
  with no timeout (the pre-installed helper rules) are never evicted,
  matching the paper's note that OVS "will not evict the rules without
  timeouts".

Expiry is processed lazily at each operation; :meth:`FlowTable.sweep`
forces it, which trial runners call when they need exact ground truth at
a point in time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.flows.flowid import FlowId
from repro.flows.rules import Rule
from repro.obs import get_instrumentation


@dataclass
class TableEntry:
    """One cached rule plus its runtime timer state."""

    rule: Rule
    out_port: int
    install_time: float
    last_match: float

    def remaining(self, now: float) -> float:
        """Seconds until expiry; ``inf`` for permanent entries."""
        remaining = math.inf
        if self.rule.idle_timeout > 0:
            remaining = min(
                remaining, self.last_match + self.rule.idle_timeout - now
            )
        if self.rule.hard_timeout > 0:
            remaining = min(
                remaining, self.install_time + self.rule.hard_timeout - now
            )
        return remaining

    def expired(self, now: float) -> bool:
        """Whether the entry should have been removed by ``now``."""
        return self.remaining(now) <= 0.0

    @property
    def evictable(self) -> bool:
        """Permanent (timeout-free) entries are never evicted."""
        return not self.rule.is_permanent()


class FlowTable:
    """Capacity-limited flow table with OVS eviction semantics."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[str, TableEntry] = {}
        #: Counters exposed for tests and diagnostics.
        self.stats = {
            "hits": 0,
            "misses": 0,
            "installs": 0,
            "evictions": 0,
            "expirations": 0,
        }
        # Observability mirror of ``stats`` (see docs/OBSERVABILITY.md).
        # Instruments are resolved once here; under the default null
        # backend they are shared no-op singletons.
        obs = get_instrumentation().metrics
        self._obs_hits = obs.counter("sim.table.hits")
        self._obs_misses = obs.counter("sim.table.misses")
        self._obs_installs = obs.counter("sim.table.installs")
        self._obs_evictions = obs.counter("sim.table.evictions")
        self._obs_expirations = obs.counter("sim.table.expirations")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rule_name: str) -> bool:
        return rule_name in self._entries

    @property
    def entries(self) -> Tuple[TableEntry, ...]:
        """All live entries (order unspecified)."""
        return tuple(self._entries.values())

    def rule_names(self) -> Tuple[str, ...]:
        """Names of cached rules (sorted, for stable comparisons)."""
        return tuple(sorted(self._entries.keys()))

    # ------------------------------------------------------------------
    # Expiry
    # ------------------------------------------------------------------
    def sweep(self, now: float) -> List[TableEntry]:
        """Remove and return entries that have expired by ``now``."""
        expired = [
            entry for entry in self._entries.values() if entry.expired(now)
        ]
        for entry in expired:
            del self._entries[entry.rule.name]
            self.stats["expirations"] += 1
            self._obs_expirations.inc()
        return expired

    # ------------------------------------------------------------------
    # Lookup / install
    # ------------------------------------------------------------------
    def lookup(
        self, flow: FlowId, now: float, refresh: bool = True
    ) -> Optional[TableEntry]:
        """Match ``flow`` against the table.

        Returns the highest-priority covering entry, refreshing its idle
        timer (unless ``refresh=False``, used for non-mutating peeks).
        Records hit/miss statistics.
        """
        self.sweep(now)
        best: Optional[TableEntry] = None
        for entry in self._entries.values():
            if not entry.rule.covers(flow):
                continue
            if best is None or entry.rule.priority > best.rule.priority:
                best = entry
        if best is None:
            self.stats["misses"] += 1
            self._obs_misses.inc()
            return None
        self.stats["hits"] += 1
        self._obs_hits.inc()
        if refresh:
            best.last_match = now
        return best

    def peek(self, flow: FlowId, now: float) -> Optional[TableEntry]:
        """Non-mutating lookup: no timer refresh, no statistics."""
        best: Optional[TableEntry] = None
        for entry in self._entries.values():
            if entry.expired(now) or not entry.rule.covers(flow):
                continue
            if best is None or entry.rule.priority > best.rule.priority:
                best = entry
        return best

    def install(
        self, rule: Rule, out_port: int, now: float
    ) -> Optional[TableEntry]:
        """Install ``rule``; returns the evicted entry, if any.

        Re-installing a cached rule refreshes its timers in place (OVS
        ``flow-mod`` modify semantics).  When the table is full, the
        evictable entry with the smallest remaining lifetime is removed;
        if every entry is permanent, the install is dropped (OVS returns
        a table-full error) and ``None`` is returned with the rule *not*
        cached.
        """
        self.sweep(now)
        existing = self._entries.get(rule.name)
        if existing is not None:
            existing.install_time = now
            existing.last_match = now
            existing.out_port = out_port
            return None
        evicted: Optional[TableEntry] = None
        if len(self._entries) >= self.capacity:
            evicted = self._pick_victim(now)
            if evicted is None:
                return None  # table full of permanent rules
            del self._entries[evicted.rule.name]
            self.stats["evictions"] += 1
            self._obs_evictions.inc()
        self._entries[rule.name] = TableEntry(
            rule=rule, out_port=out_port, install_time=now, last_match=now
        )
        self.stats["installs"] += 1
        self._obs_installs.inc()
        return evicted

    def _pick_victim(self, now: float) -> Optional[TableEntry]:
        """Shortest-remaining-time evictable entry (ties: oldest install)."""
        candidates = [e for e in self._entries.values() if e.evictable]
        if not candidates:
            return None
        return min(candidates, key=lambda e: (e.remaining(now), e.install_time))

    def remove(self, rule_name: str) -> bool:
        """Explicitly delete an entry (controller-driven removal)."""
        return self._entries.pop(rule_name, None) is not None

    def next_expiry(self, now: float) -> float:
        """Earliest future expiry time, or ``inf`` when none."""
        times = [
            now + entry.remaining(now)
            for entry in self._entries.values()
            if entry.evictable
        ]
        return min(times) if times else math.inf
