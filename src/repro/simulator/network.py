"""Network assembly: topology, switches, hosts, routing, delivery.

:class:`Network` wires a topology graph into :class:`Switch` instances
connected by latency-modelled links, attaches hosts (the 16 sources and
the attacker on the *ingress* switch, the server on another switch --
the paper's client/server arrangement), pre-installs the helper rules,
and exposes the traffic and probing entry points the experiment harness
drives.

Pre-installed (permanent, never-evicted) rules, mirroring Section VI-A:

* on every switch, a per-destination routing rule for each host
  (``dst = host -> port``): the "proactively installed" plumbing that
  lets replies and transit traffic flow without controller round trips;
* on the *reactive* ingress switch only, the server-destined routing
  rule is omitted and replaced by the ICMP-to-controller rule, so
  monitored flows take the reactive path exactly once, at their ingress
  -- the single switch the paper models;
* a lowest-priority default flood rule (inert in these workloads).

The reactive switch's table capacity is set to ``cache_size`` *plus* the
number of permanent entries, reproducing the paper's "size 9 = 6 + 3
reserved" arrangement (our host plumbing needs more reserved slots, but
reactive rules still compete for exactly ``cache_size``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.flows.flowid import PROTO_ICMP, FlowId, ip_to_str
from repro.flows.rules import (
    ACTION_CONTROLLER,
    ACTION_FLOOD,
    ACTION_FORWARD,
    Match,
    Rule,
    RuleTable,
)
from repro.flows.universe import FlowUniverse
from repro.obs import get_instrumentation, sanitize
from repro.simulator.controller import ReactiveController
from repro.simulator.events import Simulator
from repro.simulator.messages import ECHO_REPLY, ECHO_REQUEST, Packet
from repro.simulator.switch import Switch
from repro.simulator.timing import LatencyModel
from repro.simulator.topology import stanford_backbone, validate_topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.countermeasures.base import Defense
    from repro.faults import FaultInjector
    from repro.flows.arrival import Arrival

#: Default RNG seed when neither ``rng`` nor ``seed`` is given, so bare
#: ``Network(...)`` constructions are reproducible run to run.  Real
#: experiments thread ``ExperimentParams.seed`` through ``rng``.
DEFAULT_SEED = 0

#: Priority of per-destination routing rules (below reactive rules).
ROUTE_PRIORITY = 50
#: Priority of the ICMP-to-controller helper rule.
TO_CONTROLLER_PRIORITY = 10
#: Priority of the default flood rule.
FLOOD_PRIORITY = 1


@dataclass(frozen=True)
class HostRecord:
    """One attached host: name, address, and attachment point."""

    name: str
    ip: int
    switch_name: str
    port: int


@dataclass(frozen=True)
class NetworkConfig:
    """Assembly options for :class:`Network`.

    ``reactive_scope`` selects which switches run the reactive policy:

    * ``"ingress"`` (default, the modelled setting): only the switch the
      monitored hosts attach to reacts; transit switches carry
      proactive routing.  This matches the paper's single-switch model
      while keeping the multi-hop topology real for latency.
    * ``"all"``: every switch on the path misses independently and
      installs its own copy of the rules -- each first packet pays one
      controller round trip per hop, a strictly harsher (and noisier)
      version of the side channel useful for sensitivity studies.
    """

    cache_size: int = 6
    ingress_switch: Optional[str] = None
    server_switch: Optional[str] = None
    transit_capacity_slack: int = 16
    attacker_ip_offset: int = 100
    reactive_scope: str = "ingress"

    def __post_init__(self) -> None:
        if self.reactive_scope not in ("ingress", "all"):
            raise ValueError(
                f"unknown reactive_scope: {self.reactive_scope!r}"
            )


class Network:
    """A simulated SDN network hosting the reconnaissance scenario."""

    def __init__(
        self,
        rules: Sequence[Rule],
        universe: FlowUniverse,
        cache_size: int = 6,
        latency: Optional[LatencyModel] = None,
        topology: Optional[nx.Graph] = None,
        rng: Optional[np.random.Generator] = None,
        config: Optional[NetworkConfig] = None,
        defense: Optional["Defense"] = None,
        seed: Optional[int] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.config = config or NetworkConfig(cache_size=cache_size)
        if config is not None and config.cache_size != cache_size:
            raise ValueError("cache_size disagrees with config.cache_size")
        self.sim = Simulator()
        self.latency = latency or LatencyModel.calibrated()
        # Reproducible by default: an explicit generator wins, then an
        # explicit seed, then DEFAULT_SEED -- never OS entropy.
        self.rng = (
            rng
            if rng is not None
            else np.random.default_rng(DEFAULT_SEED if seed is None else seed)
        )
        if sanitize.is_active():
            sanitize.guard_rng("network.rng", self.rng)
        self.topology = topology if topology is not None else stanford_backbone()
        validate_topology(self.topology)
        self.universe = universe
        self.policy_rules = RuleTable(rules)
        self.defense = defense
        self.proactive_defense_active = False
        if defense is not None:
            # Resolved once here, not per packet: the hooks sit on the
            # forwarding hot path.  Without a defense the hooks never
            # touch instrumentation at all.
            metrics = get_instrumentation().metrics
            self._obs_defense_observed = metrics.counter(
                "defense.packets_observed"
            )
            self._obs_defense_delayed = metrics.counter(
                "defense.packets_delayed"
            )
            self._obs_defense_delay = metrics.histogram(
                "defense.added_delay_seconds"
            )
        # Optional fault injector (docs/FAULTS.md).  ``None`` (and an
        # all-zero plan) leaves every code path byte-identical to the
        # fault-free simulator -- the injector owns its own RNG and is
        # only *consulted* at the narrow injection points.
        self.faults = faults

        nodes = sorted(self.topology.nodes)
        self.ingress_name = self.config.ingress_switch or (
            "boza" if "boza" in self.topology else nodes[0]
        )
        self.server_switch_name = self.config.server_switch or (
            "yoza" if "yoza" in self.topology else nodes[-1]
        )
        for name in (self.ingress_name, self.server_switch_name):
            if name not in self.topology:
                raise ValueError(f"switch {name!r} not in topology")

        self._build_hosts()
        self._build_ports()
        self._build_routing()
        self._build_switches()
        self.controller = ReactiveController(self, self.policy_rules)
        self._preinstall_rules()

        #: probe_id -> observation time (reply seen by the attacker).
        self._probe_observations: Dict[int, float] = {}
        self.stats = {"host_sends": 0, "replies": 0}

        if self.defense is not None:
            self.defense.attach(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_hosts(self) -> None:
        src_ips = sorted({flow.src for flow in self.universe.flows})
        dst_ips = sorted(
            {flow.dst for flow in self.universe.flows} - set(src_ips)
        )
        self.attacker_ip = max(src_ips + dst_ips) + self.config.attacker_ip_offset
        self.hosts: Dict[str, HostRecord] = {}
        self.host_by_ip: Dict[int, HostRecord] = {}
        self._host_plan: List[Tuple[str, int, str]] = []
        for index, ip in enumerate(src_ips):
            self._host_plan.append((f"h{index}", ip, self.ingress_name))
        for index, ip in enumerate(dst_ips):
            self._host_plan.append(
                (f"server{index}", ip, self.server_switch_name)
            )
        self._host_plan.append(("attacker", self.attacker_ip, self.ingress_name))
        #: Destination addresses that must take the reactive path.
        self.monitored_dsts = frozenset(
            flow.dst for flow in self.universe.flows
        )

    def _build_ports(self) -> None:
        """Assign port numbers: neighbours first, then hosts."""
        self._ports: Dict[str, Dict[int, Tuple[str, str]]] = {}
        self._port_to_neighbor: Dict[Tuple[str, str], int] = {}
        for switch in self.topology.nodes:
            port_map: Dict[int, Tuple[str, str]] = {}
            port_no = 1
            for neighbor in sorted(self.topology.neighbors(switch)):
                port_map[port_no] = ("switch", neighbor)
                self._port_to_neighbor[(switch, neighbor)] = port_no
                port_no += 1
            self._ports[switch] = port_map
        for name, ip, switch in self._host_plan:
            port_map = self._ports[switch]
            port_no = max(port_map.keys(), default=0) + 1
            port_map[port_no] = ("host", name)
            record = HostRecord(name=name, ip=ip, switch_name=switch, port=port_no)
            self.hosts[name] = record
            self.host_by_ip[ip] = record

    def _build_routing(self) -> None:
        paths = dict(nx.all_pairs_shortest_path(self.topology))
        self._next_hop: Dict[str, Dict[str, str]] = {}
        for source, targets in paths.items():
            hops: Dict[str, str] = {}
            for target, path in targets.items():
                if len(path) >= 2:
                    hops[target] = path[1]
            self._next_hop[source] = hops

    def _build_switches(self) -> None:
        self.switches: Dict[str, Switch] = {}
        for name in self.topology.nodes:
            reactive = (
                self.config.reactive_scope == "all"
                or name == self.ingress_name
            )
            # Provisional capacity; finalised after preinstallation.
            self.switches[name] = Switch(
                name, self, capacity=10_000, reactive=reactive
            )

    def _preinstall_rules(self) -> None:
        for switch_name, switch in self.switches.items():
            reactive = switch.reactive
            for host in self.hosts.values():
                if reactive and host.ip in self.monitored_dsts:
                    continue  # force the reactive path at the ingress
                rule = Rule(
                    name=f"route_{switch_name}_{ip_to_str(host.ip)}",
                    dst=Match.exact(host.ip),
                    priority=ROUTE_PRIORITY,
                    action=ACTION_FORWARD,
                )
                switch.preinstall(rule, self.route_port(switch_name, host.ip))
            if reactive:
                # The paper pre-installs an "unmatched ICMP to the
                # controller" rule; we generalise to one to-controller
                # rule per monitored destination so non-ICMP universes
                # take the same reactive path.
                for dst in sorted(self.monitored_dsts):
                    switch.preinstall(
                        Rule(
                            name=f"to_ctrl_{switch_name}_{ip_to_str(dst)}",
                            dst=Match.exact(dst),
                            priority=TO_CONTROLLER_PRIORITY,
                            action=ACTION_CONTROLLER,
                        ),
                        out_port=0,
                    )
            switch.preinstall(
                Rule(
                    name=f"flood_{switch_name}",
                    priority=FLOOD_PRIORITY,
                    action=ACTION_FLOOD,
                ),
                out_port=0,
            )
            # Reactive rules compete for exactly cache_size slots on the
            # reactive switch; transit tables just need room for the
            # permanent plumbing.
            slack = (
                self.config.cache_size
                if reactive
                else self.config.transit_capacity_slack
            )
            switch.table.capacity = len(switch.table) + slack

    # ------------------------------------------------------------------
    # Routing and delivery
    # ------------------------------------------------------------------
    def route_port(self, switch_name: str, dst_ip: int) -> int:
        """Output port on ``switch_name`` toward the host owning ``dst_ip``."""
        host = self.host_by_ip.get(dst_ip)
        if host is None:
            raise KeyError(f"no host with address {ip_to_str(dst_ip)}")
        if host.switch_name == switch_name:
            return host.port
        next_switch = self._next_hop[switch_name][host.switch_name]
        return self._port_to_neighbor[(switch_name, next_switch)]

    def deliver(self, switch: Switch, out_port: int, packet: Packet) -> None:
        """Move a packet out of ``switch`` via ``out_port`` (link delay)."""
        endpoint = self._ports[switch.name].get(out_port)
        if endpoint is None:
            raise KeyError(f"switch {switch.name} has no port {out_port}")
        kind, name = endpoint
        delay = self.latency.link_delay(self.rng)
        if kind == "switch":
            neighbor = self.switches[name]
            in_port = self._port_to_neighbor[(name, switch.name)]
            self.sim.schedule(
                delay, lambda: neighbor.receive(packet, in_port)
            )
        else:
            host = self.hosts[name]
            self.sim.schedule(delay, lambda: self._host_receive(host, packet))

    def _host_receive(self, host: HostRecord, packet: Packet) -> None:
        """Host-side packet handling: echo replies and probe observation."""
        if packet.kind == ECHO_REQUEST and packet.flow.dst == host.ip:
            reply = packet.make_reply(self.sim.now)
            delay = self.latency.host_reply_delay(self.rng)
            self.sim.schedule(delay, lambda: self.send_from_host(host, reply))
            return
        if packet.kind == ECHO_REPLY:
            self.stats["replies"] += 1
            if packet.probe_id is not None:
                if self.faults is not None and self.faults.drop_probe_reply():
                    # Injected capture loss: the reply arrives but the
                    # attacker's sniffer misses it -- the probe stays
                    # unobserved and times out.
                    return
                # The attacker shares the victim's segment (Section III):
                # seeing the reply reach the spoofed source host closes
                # the measurement.
                self._probe_observations.setdefault(
                    packet.probe_id, self.sim.now
                )

    def send_from_host(self, host: HostRecord, packet: Packet) -> None:
        """Inject a packet from ``host`` into its access switch."""
        switch = self.switches[host.switch_name]
        delay = self.latency.link_delay(self.rng)
        self.stats["host_sends"] += 1
        self.sim.schedule(delay, lambda: switch.receive(packet, host.port))

    # ------------------------------------------------------------------
    # Workload entry points
    # ------------------------------------------------------------------
    def schedule_flow_arrival(self, flow: FlowId, time: float) -> None:
        """Schedule one background flow arrival (an echo request)."""
        host = self.host_by_ip.get(flow.src)
        if host is None:
            raise KeyError(f"no host for source {ip_to_str(flow.src)}")

        def send() -> None:
            packet = Packet(flow=flow, kind=ECHO_REQUEST, created=self.sim.now)
            self.send_from_host(host, packet)

        self.sim.schedule_at(time, send)

    def schedule_arrivals(self, arrivals: Iterable["Arrival"]) -> None:
        """Schedule a whole :func:`repro.flows.arrival` schedule.

        On the fast path (repro.core.simpath) a time-ordered schedule is
        handed to the simulator as one event *stream* instead of one
        heap entry per packet: the stream reserves the same sequence
        numbers the per-event loop would allocate and is merged against
        the heap by ``(time, seq)``, so event order -- and with it every
        latency RNG draw and fault-injection consultation -- is
        bit-identical while skipping the per-packet heap churn and
        closure allocation.  Unsorted schedules (never produced by
        :func:`repro.flows.arrival.sample_schedule`) fall back to the
        per-event loop.
        """
        from repro.core.simpath import resolve_simpath

        if resolve_simpath().fast:
            batch = list(arrivals)
            times = [arrival.time for arrival in batch]
            if all(a <= b for a, b in zip(times, times[1:])) and (
                not times or times[0] >= self.sim.now
            ):
                flows = self.universe.flows
                host_by_ip = self.host_by_ip
                hosts = []
                packet_flows = []
                for arrival in batch:
                    flow = flows[arrival.flow_index]
                    host = host_by_ip.get(flow.src)
                    if host is None:
                        raise KeyError(
                            f"no host for source {ip_to_str(flow.src)}"
                        )
                    hosts.append(host)
                    packet_flows.append(flow)

                def run(index: int) -> None:
                    packet = Packet(
                        flow=packet_flows[index],
                        kind=ECHO_REQUEST,
                        created=self.sim.now,
                    )
                    self.send_from_host(hosts[index], packet)

                self.sim.schedule_stream(times, run)
                return
            arrivals = batch
        for arrival in arrivals:
            flow = self.universe.flows[arrival.flow_index]
            self.schedule_flow_arrival(flow, arrival.time)

    def send_probe(self, flow: FlowId, probe_id: int) -> None:
        """Inject an attacker probe (spoofed when needed) right now."""
        attacker = self.hosts["attacker"]
        packet = Packet(
            flow=flow,
            kind=ECHO_REQUEST,
            created=self.sim.now,
            spoofed=flow.src != attacker.ip,
            probe_id=probe_id,
        )
        self.send_from_host(attacker, packet)

    def probe_observation(self, probe_id: int) -> Optional[float]:
        """Reply-observation time for a probe, if it has arrived."""
        return self._probe_observations.get(probe_id)

    # ------------------------------------------------------------------
    # Defense hooks
    # ------------------------------------------------------------------
    def defense_observe(self, switch: Switch, packet: Packet) -> None:
        """Let an attached defense see every packet entering a switch."""
        if self.defense is not None:
            self.defense.observe(switch, packet)
            self._obs_defense_observed.inc()

    def defense_forward_delay(self, switch: Switch, packet: Packet) -> float:
        """Extra hit-path delay contributed by an attached defense."""
        if self.defense is None:
            return 0.0
        extra = self.defense.forward_delay(switch, packet)
        if extra > 0.0:
            self._obs_defense_delayed.inc()
            self._obs_defense_delay.observe(extra)
        return extra

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ingress_switch(self) -> Switch:
        """The reactive switch the monitored hosts attach to."""
        return self.switches[self.ingress_name]

    def cached_reactive_rules(self) -> Tuple[str, ...]:
        """Reactive rules currently cached at the ingress switch."""
        return self.ingress_switch.cached_reactive_rules()
