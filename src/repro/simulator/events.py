"""Discrete-event simulation core.

A minimal, deterministic event loop: callbacks scheduled at absolute or
relative times, executed in time order with FIFO tie-breaking.  All
simulator components share one :class:`Simulator` instance and schedule
closures on it; there are no processes or coroutines to keep the
execution model easy to reason about and fully reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

#: An event callback takes no arguments; state is carried via closures.
Callback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled execution time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled


class Simulator:
    """A deterministic discrete-event simulator clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_ScheduledEvent] = []
        self._seq = 0
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past ({time} < {self._now})"
            )
        event = _ScheduledEvent(time=float(time), seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    @property
    def next_event_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def _pop_next(self) -> Optional[_ScheduledEvent]:
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Execute the next event; returns ``False`` when queue is empty."""
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        self._events_run += 1
        event.callback()
        return True

    def run_until(self, end_time: float, max_events: int = 10_000_000) -> None:
        """Run events up to and including ``end_time``.

        The clock is advanced to exactly ``end_time`` afterwards, even if
        no event lands there, so subsequent scheduling is relative to the
        requested horizon.
        """
        if end_time < self._now:
            raise ValueError(f"end_time {end_time} is in the past")
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > end_time:
                break
            self.step()
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    f"exceeded {max_events} events before {end_time}; "
                    "likely an event storm or scheduling loop"
                )
        self._now = float(end_time)

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise RuntimeError(f"exceeded {max_events} events")
