"""Discrete-event simulation core.

A minimal, deterministic event loop: callbacks scheduled at absolute or
relative times, executed in time order with FIFO tie-breaking.  All
simulator components share one :class:`Simulator` instance and schedule
closures on it; there are no processes or coroutines to keep the
execution model easy to reason about and fully reproducible.

Two scheduling channels feed the loop:

* the classic heap (:meth:`Simulator.schedule` /
  :meth:`Simulator.schedule_at`), one entry per event, cancellable;
* *event streams* (:meth:`Simulator.schedule_stream`): a pre-sorted
  batch of event times that reserves one contiguous block of sequence
  numbers up front and is merged against the heap top by
  ``(time, seq)``.  A stream event costs O(1) instead of a heap
  push/pop and allocates no per-event closure, which is where the bulk
  of background-traffic scheduling time went; because the reserved
  sequence numbers are exactly the ones the per-event loop would have
  allocated, execution order -- and therefore every RNG draw made
  inside callbacks -- is identical to scheduling the batch one event
  at a time.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence

#: An event callback takes no arguments; state is carried via closures.
Callback = Callable[[], None]


class _ScheduledEvent:
    """One queued callback; ordered by ``(time, seq)`` (FIFO ties)."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callback,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _ScheduledEvent):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"_ScheduledEvent(time={self.time!r}, seq={self.seq!r}, "
            f"cancelled={self.cancelled!r})"
        )


class _EventStream:
    """A sorted batch of events owning a contiguous seq block."""

    __slots__ = ("times", "run", "seq0", "cursor")

    def __init__(
        self, times: Sequence[float], run: Callable[[int], None], seq0: int
    ) -> None:
        self.times = times
        self.run = run
        self.seq0 = seq0
        self.cursor = 0

    @property
    def remaining(self) -> int:
        return len(self.times) - self.cursor


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled execution time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled


class Simulator:
    """A deterministic discrete-event simulator clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_ScheduledEvent] = []
        self._streams: List[_EventStream] = []
        self._seq = 0
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue) + sum(
            stream.remaining for stream in self._streams
        )

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past ({time} < {self._now})"
            )
        event = _ScheduledEvent(time=float(time), seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_stream(
        self, times: Sequence[float], run: Callable[[int], None]
    ) -> int:
        """Schedule a sorted batch of events as one merged stream.

        ``run(i)`` is invoked when the ``i``-th event fires, with the
        clock at ``times[i]``.  The batch reserves the same contiguous
        block of sequence numbers a ``schedule_at`` loop would have
        allocated, so interleaving with heap events (and FIFO
        tie-breaking) is bit-identical to the per-event loop.  ``times``
        must be non-decreasing and must not precede the current clock;
        stream events cannot be cancelled.  Returns the number of
        scheduled events.
        """
        count = len(times)
        if count == 0:
            return 0
        previous = self._now
        for time in times:
            if time < previous:
                raise ValueError(
                    "stream times must be non-decreasing and not precede "
                    f"the current clock ({time} < {previous})"
                )
            previous = time
        stream = _EventStream(times, run, self._seq)
        self._seq += count
        self._streams.append(stream)
        return count

    def _head_stream(self) -> Optional[_EventStream]:
        """The stream owning the earliest pending event, if it beats the heap.

        Also drops exhausted streams and cancelled heap-top entries, so
        the caller can read ``self._queue[0]`` directly when ``None`` is
        returned and the queue is non-empty.
        """
        if self._streams:
            self._streams = [s for s in self._streams if s.remaining]
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        best: Optional[_EventStream] = None
        best_key = (queue[0].time, queue[0].seq) if queue else None
        for stream in self._streams:
            key = (stream.times[stream.cursor], stream.seq0 + stream.cursor)
            if best_key is None or key < best_key:
                best = stream
                best_key = key
        return best

    @property
    def next_event_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        stream = self._head_stream()
        if stream is not None:
            return stream.times[stream.cursor]
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the next event; returns ``False`` when queue is empty."""
        stream = self._head_stream()
        if stream is not None:
            index = stream.cursor
            stream.cursor = index + 1
            self._now = stream.times[index]
            self._events_run += 1
            stream.run(index)
            return True
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._events_run += 1
        event.callback()
        return True

    def run_until(self, end_time: float, max_events: int = 10_000_000) -> None:
        """Run events up to and including ``end_time``.

        The clock is advanced to exactly ``end_time`` afterwards, even if
        no event lands there, so subsequent scheduling is relative to the
        requested horizon.
        """
        if end_time < self._now:
            raise ValueError(f"end_time {end_time} is in the past")
        executed = 0
        while True:
            # One merged head probe per event (step() would re-probe).
            stream = self._head_stream()
            if stream is not None:
                time = stream.times[stream.cursor]
                if time > end_time:
                    break
                index = stream.cursor
                stream.cursor = index + 1
                self._now = time
                self._events_run += 1
                stream.run(index)
            elif self._queue:
                event = self._queue[0]
                if event.time > end_time:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self._events_run += 1
                event.callback()
            else:
                break
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    f"exceeded {max_events} events before {end_time}; "
                    "likely an event storm or scheduling loop"
                )
        self._now = float(end_time)

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise RuntimeError(f"exceeded {max_events} events")
