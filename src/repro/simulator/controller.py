"""The reactive SDN controller (the Ryu stand-in).

On a packet-in the controller looks up the highest-priority policy rule
covering the flow, computes the output port from its topology view, and
-- after a processing delay -- returns a flow-mod (rule installation)
followed by a packet-out releasing the buffered packet.  Flows the
policy does not cover are released without installing anything, exactly
like the paper's handling of probe flows that match no rule.

The controller is deliberately stateless across packet-ins (each miss is
handled independently); repeated misses for the same flow before the
rule lands re-install the same rule, which on the switch refreshes the
entry's timers -- matching OVS flow-mod semantics.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.flows.rules import Rule, RuleTable
from repro.obs import get_instrumentation
from repro.simulator.messages import FlowMod, PacketIn, PacketOut

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import Network


class ReactiveController:
    """Reactive rule installation from a fixed policy."""

    def __init__(self, network: "Network", policy: RuleTable) -> None:
        self.network = network
        self.policy = policy
        self.stats = {"packet_ins": 0, "installs": 0, "forward_only": 0}
        # Observability mirror of ``stats`` (see docs/OBSERVABILITY.md);
        # each packet-in is one control-plane round-trip.
        obs = get_instrumentation().metrics
        self._obs_packet_ins = obs.counter("sim.controller.packet_ins")
        self._obs_installs = obs.counter("sim.controller.installs")
        self._obs_forward_only = obs.counter("sim.controller.forward_only")

    def handle_packet_in(self, message: PacketIn) -> None:
        """Process one miss notification."""
        network = self.network
        self.stats["packet_ins"] += 1
        self._obs_packet_ins.inc()
        switch = network.switches[message.switch_name]
        out_port = network.route_port(switch.name, message.packet.flow.dst)
        rule = self.policy.highest_covering(message.packet.flow)
        if rule is not None and network.proactive_defense_active:
            # Under the proactive defense every policy rule is already
            # installed; a packet-in can only be a race or an uncovered
            # flow -- never install reactively.
            rule = None
        processing = network.latency.controller_processing_delay(network.rng)
        down_link = network.latency.control_link_delay(network.rng)
        if network.faults is not None:
            # Injected controller jitter / outage stall (docs/FAULTS.md).
            processing += network.faults.controller_extra_delay(network.sim.now)
            if rule is not None and network.faults.drop_flow_mod():
                # Injected flow-mod loss: the installation never lands,
                # but the packet-out is a separate message and still
                # releases the buffered packet (an observed miss).
                rule = None

        if rule is None:
            self.stats["forward_only"] += 1
            self._obs_forward_only.inc()

            def release() -> None:
                switch.handle_packet_out(
                    PacketOut(packet=message.packet, out_port=out_port)
                )

            network.sim.schedule(processing + down_link, release)
            return

        self.stats["installs"] += 1
        self._obs_installs.inc()
        install_delay = network.latency.flowmod_install_delay(network.rng)

        def install_and_release() -> None:
            switch.handle_flow_mod(FlowMod(rule=rule, out_port=out_port))

            def release() -> None:
                switch.handle_packet_out(
                    PacketOut(packet=message.packet, out_port=out_port)
                )

            network.sim.schedule(install_delay, release)

        network.sim.schedule(processing + down_link, install_and_release)

    def proactive_install_all(self, switch_name: str) -> int:
        """Install every policy rule permanently on one switch.

        Implements the Section VII-B2 defense; returns the number of
        rules installed.  Timeouts are stripped (the defense keeps the
        rules resident), so the entries are never evicted or expired.
        """
        network = self.network
        switch = network.switches[switch_name]
        installed = 0
        for rule in self.policy:
            out_port = network.route_port(switch_name, _rule_probe_dst(rule))
            permanent = replace(rule, idle_timeout=0.0, hard_timeout=0.0)
            switch.preinstall(permanent, out_port)
            installed += 1
        return installed


def _rule_probe_dst(rule: Rule) -> int:
    """A destination address matched by ``rule`` (for port resolution).

    The paper's rules pin the destination exactly (all traffic goes to
    the one server), so the rule's destination value is the address.
    """
    if not rule.dst.is_exact():
        raise ValueError(
            f"rule {rule.name} has a wildcard destination; cannot resolve "
            "a proactive output port"
        )
    return rule.dst.value
