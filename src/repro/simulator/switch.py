"""The SDN switch datapath.

A switch owns a :class:`~repro.simulator.flowtable.FlowTable` and a set
of numbered ports.  Packet handling follows the OpenFlow pipeline the
paper describes: the highest-priority matching entry's action is
applied --

* ``forward`` -- send out of the entry's port after a lookup delay;
* ``controller`` -- buffer the packet and raise a packet-in (the
  reactive miss path that creates the timing side channel);
* ``flood`` -- the paper's lowest-priority default rule; in this
  reproduction nothing reaches it in normal operation, so it counts and
  drops.

The paper's pre-installed helper rules (ICMP-to-controller on the
reactive switch, per-destination routing rules elsewhere, the default
flood rule) are installed by :class:`~repro.simulator.network.Network`
as permanent entries; permanent entries are never evicted, so the
reactive rules compete only for the ``cache_size`` slots the paper
models (it sets the OVS table size to 9 = 6 + 3 reserved).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.flows.rules import (
    ACTION_CONTROLLER,
    ACTION_FLOOD,
    ACTION_FORWARD,
    Rule,
)
from repro.obs import get_instrumentation
from repro.simulator.flowtable import make_flow_table
from repro.simulator.messages import FlowMod, Packet, PacketIn, PacketOut

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import Network


class Switch:
    """One datapath: flow table, ports, miss path."""

    def __init__(
        self,
        name: str,
        network: "Network",
        capacity: int,
        reactive: bool,
    ) -> None:
        self.name = name
        self.network = network
        self.table = make_flow_table(capacity)
        self.reactive = reactive
        #: packet_id -> (packet, in_port) awaiting a controller verdict.
        self._pending: Dict[int, Packet] = {}
        self.stats = {
            "received": 0,
            "forwarded": 0,
            "packet_ins": 0,
            "flooded": 0,
            "dropped": 0,
        }
        # Observability mirror of ``stats`` (see docs/OBSERVABILITY.md);
        # no-op singletons under the default null backend.
        obs = get_instrumentation().metrics
        self._obs_received = obs.counter("sim.switch.received")
        self._obs_forwarded = obs.counter("sim.switch.forwarded")
        self._obs_packet_ins = obs.counter("sim.switch.packet_ins")
        self._obs_flooded = obs.counter("sim.switch.flooded")
        self._obs_dropped = obs.counter("sim.switch.dropped")

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port: int) -> None:
        """Handle a packet arriving on ``in_port`` at the current time."""
        network = self.network
        now = network.sim.now
        self.stats["received"] += 1
        self._obs_received.inc()
        network.defense_observe(self, packet)
        entry = self.table.lookup(packet.flow, now)
        if entry is None or entry.rule.action == ACTION_FLOOD:
            # The paper's default rule floods unmatched traffic; our
            # workloads never rely on it, so account and drop.
            self.stats["flooded"] += 1
            self._obs_flooded.inc()
            return
        if entry.rule.action == ACTION_CONTROLLER:
            self._send_packet_in(packet, in_port)
            return
        if entry.rule.action == ACTION_FORWARD:
            self._forward(packet, entry.out_port, cache_hit=True)
            return
        self.stats["dropped"] += 1
        self._obs_dropped.inc()

    def _forward(
        self, packet: Packet, out_port: int, cache_hit: bool
    ) -> None:
        network = self.network
        delay = network.latency.lookup_delay(network.rng)
        if cache_hit:
            extra = network.defense_forward_delay(self, packet)
            delay += extra
        network.sim.schedule(
            delay, lambda: network.deliver(self, out_port, packet)
        )
        self.stats["forwarded"] += 1
        self._obs_forwarded.inc()

    # ------------------------------------------------------------------
    # Miss path
    # ------------------------------------------------------------------
    def _send_packet_in(self, packet: Packet, in_port: int) -> None:
        network = self.network
        self.stats["packet_ins"] += 1
        self._obs_packet_ins.inc()
        self._pending[packet.packet_id] = packet
        if network.faults is not None and network.faults.drop_packet_in():
            # Injected control-channel loss: the miss notification never
            # reaches the controller.  The packet stays buffered (as on a
            # real switch until the buffer ages out), so the flow is
            # neither installed nor released -- probes for it time out.
            return
        message = PacketIn(switch_name=self.name, packet=packet, in_port=in_port)
        delay = network.latency.control_link_delay(network.rng)
        network.sim.schedule(
            delay, lambda: network.controller.handle_packet_in(message)
        )

    def handle_flow_mod(self, message: FlowMod) -> None:
        """Install a rule delivered by the controller."""
        network = self.network
        now = network.sim.now
        self.table.install(message.rule, message.out_port, now)

    def handle_packet_out(self, message: PacketOut) -> None:
        """Release a buffered packet toward ``out_port``."""
        packet = self._pending.pop(message.packet.packet_id, None)
        if packet is None:
            # Already released (duplicate packet-out); nothing to do.
            return
        self._forward(packet, message.out_port, cache_hit=False)

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def preinstall(self, rule: Rule, out_port: int) -> None:
        """Install a permanent helper rule at time zero."""
        if not rule.is_permanent():
            raise ValueError(
                f"preinstalled rule {rule.name} must be permanent"
            )
        installed = self.table.install(rule, out_port, now=0.0)
        if installed is not None:  # pragma: no cover - setup invariant
            raise RuntimeError("preinstall caused an eviction")

    def cached_reactive_rules(self) -> tuple:
        """Names of currently cached non-permanent rules (sorted)."""
        now = self.network.sim.now
        self.table.sweep(now)
        return tuple(
            sorted(
                entry.rule.name
                for entry in self.table.entries
                if entry.evictable
            )
        )
