"""Discrete-event SDN substrate (the Mininet / OVS / Ryu stand-in).

The paper evaluates on a Mininet emulation of Stanford's backbone with
Open vSwitch datapaths and a Ryu reactive controller.  This subpackage
rebuilds that stack as a continuous-time discrete-event simulation:

* :mod:`repro.simulator.events` -- event queue and simulation clock.
* :mod:`repro.simulator.messages` -- packets and OpenFlow-ish control
  messages (packet-in, flow-mod, packet-out).
* :mod:`repro.simulator.flowtable` -- an OVS-like flow table: priority
  matching, idle/hard timeouts, capacity with shortest-remaining-time
  eviction.
* :mod:`repro.simulator.switch` -- the datapath: lookup, miss path,
  pre-installed helper rules.
* :mod:`repro.simulator.controller` -- the reactive controller.
* :mod:`repro.simulator.topology` -- the Stanford backbone graph.
* :mod:`repro.simulator.network` -- wiring, routing, hosts, delivery.
* :mod:`repro.simulator.timing` -- the latency model calibrated to the
  paper's measured hit/miss distributions.
* :mod:`repro.simulator.probing` -- the attacker's vantage point:
  inject a (possibly spoofed) probe, time the reply, threshold.
"""

from repro.simulator.events import Simulator
from repro.simulator.flowtable import (
    FlowTable,
    IndexedFlowTable,
    ReferenceFlowTable,
    TableEntry,
    make_flow_table,
)
from repro.simulator.messages import Packet, PacketIn, FlowMod, PacketOut
from repro.simulator.switch import Switch
from repro.simulator.controller import ReactiveController
from repro.simulator.timing import LatencyModel
from repro.simulator.topology import stanford_backbone
from repro.simulator.network import Network, NetworkConfig
from repro.simulator.probing import Prober, ProbeResult

__all__ = [
    "Simulator",
    "FlowTable",
    "IndexedFlowTable",
    "ReferenceFlowTable",
    "TableEntry",
    "make_flow_table",
    "Packet",
    "PacketIn",
    "FlowMod",
    "PacketOut",
    "Switch",
    "ReactiveController",
    "LatencyModel",
    "stanford_backbone",
    "Network",
    "NetworkConfig",
    "Prober",
    "ProbeResult",
]
