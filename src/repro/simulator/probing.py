"""The attacker's measurement vantage point.

:class:`Prober` injects probe flows from the attacker host (spoofing the
source address when the probe flow belongs to another host, as in
Section III-A), advances the simulation until the corresponding reply is
observed, and classifies the measured response time against the paper's
1 ms threshold: fast means a covering rule was already cached
(``Q_f = 1``), slow means the flow took the controller round trip
(``Q_f = 0``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.flows.flowid import FlowId
from repro.simulator.network import Network
from repro.simulator.timing import DEFAULT_THRESHOLD_SECONDS

_probe_ids = itertools.count(1)


@dataclass(frozen=True)
class ProbeResult:
    """One timed probe."""

    flow: FlowId
    send_time: float
    rtt: Optional[float]
    threshold: float

    @property
    def observed(self) -> bool:
        """Whether a reply came back before the measurement deadline."""
        return self.rtt is not None

    @property
    def hit(self) -> bool:
        """``Q_f``: True iff the response was faster than the threshold.

        An unobserved probe is conservatively classified as a miss (the
        setup path is the slow one).
        """
        return self.rtt is not None and self.rtt < self.threshold

    @property
    def outcome(self) -> int:
        """The hit bit as an integer (model convention)."""
        return 1 if self.hit else 0


class Prober:
    """Sequential probe measurement against a live network."""

    def __init__(
        self,
        network: Network,
        threshold: float = DEFAULT_THRESHOLD_SECONDS,
        timeout: float = 0.25,
        gap: float = 0.0005,
    ) -> None:
        if threshold <= 0 or timeout <= 0 or gap < 0:
            raise ValueError("threshold/timeout must be positive, gap >= 0")
        self.network = network
        self.threshold = threshold
        self.timeout = timeout
        self.gap = gap

    def measure(self, flow: FlowId) -> ProbeResult:
        """Send one probe and run the simulation until its reply.

        The simulator is advanced event by event, so the clock ends at
        the observation time (not the deadline) and back-to-back probes
        stay tightly spaced, like a real attacker's.
        """
        network = self.network
        sim = network.sim
        probe_id = next(_probe_ids)
        send_time = sim.now
        network.send_probe(flow, probe_id)
        deadline = send_time + self.timeout
        while network.probe_observation(probe_id) is None:
            next_time = sim.next_event_time
            if next_time is None or next_time > deadline:
                break
            sim.step()
        observed = network.probe_observation(probe_id)
        rtt = None if observed is None else observed - send_time
        return ProbeResult(
            flow=flow, send_time=send_time, rtt=rtt, threshold=self.threshold
        )

    def measure_flows(self, flows: Sequence[FlowId]) -> List[ProbeResult]:
        """Measure several probes back to back with a small gap."""
        results: List[ProbeResult] = []
        for index, flow in enumerate(flows):
            if index > 0 and self.gap > 0:
                self.network.sim.run_until(self.network.sim.now + self.gap)
            results.append(self.measure(flow))
        return results

    def outcomes(self, flows: Sequence[FlowId]) -> List[int]:
        """Hit bits for a probe sequence (the ``Q`` vector)."""
        return [result.outcome for result in self.measure_flows(flows)]
