"""The attacker's measurement vantage point.

:class:`Prober` injects probe flows from the attacker host (spoofing the
source address when the probe flow belongs to another host, as in
Section III-A), advances the simulation until the corresponding reply is
observed, and classifies the measured response time against the paper's
1 ms threshold: fast means a covering rule was already cached
(``Q_f = 1``), slow means the flow took the controller round trip
(``Q_f = 0``).

Probes can go unanswered -- the fault layer (docs/FAULTS.md) drops
packet-ins and probe replies -- so a probe that times out surfaces as
``ProbeResult.observed == False`` rather than crashing or silently
counting as a miss.  With ``retries > 0`` the prober retransmits with
capped exponential backoff before giving up.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.flows.flowid import FlowId
from repro.obs import get_instrumentation
from repro.simulator.network import Network
from repro.simulator.timing import DEFAULT_THRESHOLD_SECONDS

_probe_ids = itertools.count(1)


@dataclass(frozen=True)
class ProbeResult:
    """One timed probe."""

    flow: FlowId
    send_time: float
    rtt: Optional[float]
    threshold: float
    #: Number of transmissions (1 = answered first try or no retries).
    attempts: int = 1

    @property
    def observed(self) -> bool:
        """Whether a reply came back before the measurement deadline."""
        return self.rtt is not None

    @property
    def hit(self) -> bool:
        """``Q_f``: True iff the response was faster than the threshold.

        An unobserved probe is conservatively classified as a miss (the
        setup path is the slow one).
        """
        return self.rtt is not None and self.rtt < self.threshold

    @property
    def outcome(self) -> int:
        """The hit bit as an integer (model convention).

        Coerces an unobserved probe to a miss -- only use this when the
        caller has already established ``observed``; otherwise prefer
        :attr:`outcome_or_none`, which keeps the unobserved state.
        """
        return 1 if self.hit else 0

    @property
    def outcome_or_none(self) -> Optional[int]:
        """The hit bit, or ``None`` when the probe went unanswered."""
        return None if self.rtt is None else self.outcome


class Prober:
    """Sequential probe measurement against a live network.

    Parameters
    ----------
    retries:
        Extra transmissions after an unanswered probe before giving up
        (default 0: one shot, exactly the pre-fault-layer behaviour).
    backoff:
        Multiplier applied to the timeout after every unanswered
        attempt (capped at ``max_timeout``).
    max_timeout:
        Upper bound on the per-attempt timeout under backoff (default:
        ``8 * timeout``).
    """

    def __init__(
        self,
        network: Network,
        threshold: float = DEFAULT_THRESHOLD_SECONDS,
        timeout: float = 0.25,
        gap: float = 0.0005,
        retries: int = 0,
        backoff: float = 2.0,
        max_timeout: Optional[float] = None,
    ) -> None:
        if threshold <= 0 or timeout <= 0 or gap < 0:
            raise ValueError("threshold/timeout must be positive, gap >= 0")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        self.network = network
        self.threshold = threshold
        self.timeout = timeout
        self.gap = gap
        self.retries = int(retries)
        self.backoff = backoff
        self.max_timeout = 8.0 * timeout if max_timeout is None else max_timeout
        if self.max_timeout < timeout:
            raise ValueError("max_timeout must be >= timeout")
        obs = get_instrumentation().metrics
        self._obs_retries = obs.counter("attacker.probe.retries")
        self._obs_unobserved = obs.counter("attacker.probe.unobserved")

    def _await_reply(self, probe_id: int, deadline: float) -> Optional[float]:
        """Step the simulator until the probe's reply or the deadline."""
        network = self.network
        sim = network.sim
        while network.probe_observation(probe_id) is None:
            next_time = sim.next_event_time
            if next_time is None or next_time > deadline:
                break
            sim.step()
        return network.probe_observation(probe_id)

    def measure(self, flow: FlowId) -> ProbeResult:
        """Send one probe and run the simulation until its reply.

        The simulator is advanced event by event, so the clock ends at
        the observation time (not the deadline) and back-to-back probes
        stay tightly spaced, like a real attacker's.  Unanswered probes
        are retransmitted up to ``retries`` times with the timeout
        growing by ``backoff`` per attempt (capped at ``max_timeout``);
        only then does the clock advance to the attempt's deadline, so
        the zero-retry path is identical to the historical one.
        """
        sim = self.network.sim
        timeout = self.timeout
        attempts = 0
        # One probe identity per measurement: a retransmission re-sends
        # the *same* probe (same ICMP id/seq), like a real attacker's
        # retry timer.  Keeping the id stable across attempts is what
        # lets per-burst defenses recognise the retransmission instead
        # of treating every attempt as a brand-new flow arrival.
        probe_id = next(_probe_ids)
        while True:
            attempts += 1
            send_time = sim.now
            self.network.send_probe(flow, probe_id)
            observed = self._await_reply(probe_id, send_time + timeout)
            if observed is not None:
                return ProbeResult(
                    flow=flow,
                    send_time=send_time,
                    rtt=observed - send_time,
                    threshold=self.threshold,
                    attempts=attempts,
                )
            if attempts > self.retries:
                self._obs_unobserved.inc()
                return ProbeResult(
                    flow=flow,
                    send_time=send_time,
                    rtt=None,
                    threshold=self.threshold,
                    attempts=attempts,
                )
            # Retransmit: wait out the rest of this attempt's timeout
            # window (a real attacker's timer fires at the deadline),
            # then back off.
            self._obs_retries.inc()
            sim.run_until(send_time + timeout)
            timeout = min(timeout * self.backoff, self.max_timeout)

    def measure_flows(self, flows: Sequence[FlowId]) -> List[ProbeResult]:
        """Measure several probes back to back with a small gap."""
        results: List[ProbeResult] = []
        for index, flow in enumerate(flows):
            if index > 0 and self.gap > 0:
                self.network.sim.run_until(self.network.sim.now + self.gap)
            results.append(self.measure(flow))
        return results

    def outcomes(self, flows: Sequence[FlowId]) -> List[Optional[int]]:
        """Hit bits for a probe sequence (the ``Q`` vector).

        Unobserved probes yield ``None`` -- they are **not** coerced to
        a miss; downstream deciders marginalise the missing bit (see
        ``Attacker.decide``).
        """
        return [
            result.outcome_or_none for result in self.measure_flows(flows)
        ]
