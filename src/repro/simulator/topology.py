"""The Stanford backbone topology (the paper's Mininet substrate).

The paper builds its Mininet network from the publicly released Stanford
University backbone configurations [13]: 16 routers -- two backbone
routers (``bbra``, ``bbrb``) and fourteen zone routers in seven
redundant pairs (``boza/bozb``, ``coza/cozb``, ``goza/gozb``,
``poza/pozb``, ``roza/rozb``, ``soza/sozb``, ``yoza/yozb``).  Each zone
router uplinks to both backbone routers, paired zone routers
interconnect, and the two backbone routers peer with each other.  This
module reconstructs that graph shape; exact link metrics from the
original configurations are not needed because the paper uses the
topology only as realistic plumbing (all monitored hosts share one
switch, the server sits behind another).
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

#: Backbone (core) router names.
BACKBONE_ROUTERS: Tuple[str, str] = ("bbra", "bbrb")

#: Zone router pairs (a/b redundancy per zone).
ZONE_PREFIXES: Tuple[str, ...] = ("boz", "coz", "goz", "poz", "roz", "soz", "yoz")


def zone_routers() -> List[str]:
    """All fourteen zone router names."""
    return [f"{prefix}{suffix}" for prefix in ZONE_PREFIXES for suffix in "ab"]


def stanford_backbone() -> nx.Graph:
    """The 16-router Stanford backbone graph.

    Nodes carry a ``kind`` attribute (``"backbone"`` or ``"zone"``);
    edges carry nothing (latency comes from the network's
    :class:`~repro.simulator.timing.LatencyModel`).
    """
    graph = nx.Graph()
    bbra, bbrb = BACKBONE_ROUTERS
    graph.add_node(bbra, kind="backbone")
    graph.add_node(bbrb, kind="backbone")
    graph.add_edge(bbra, bbrb)
    for prefix in ZONE_PREFIXES:
        a, b = f"{prefix}a", f"{prefix}b"
        graph.add_node(a, kind="zone")
        graph.add_node(b, kind="zone")
        graph.add_edge(a, b)
        for core in BACKBONE_ROUTERS:
            graph.add_edge(a, core)
            graph.add_edge(b, core)
    return graph


def linear_topology(n_switches: int) -> nx.Graph:
    """A simple chain of switches (small tests and examples)."""
    if n_switches < 1:
        raise ValueError("need at least one switch")
    graph = nx.Graph()
    names = [f"s{i}" for i in range(n_switches)]
    for name in names:
        graph.add_node(name, kind="switch")
    for left, right in zip(names, names[1:]):
        graph.add_edge(left, right)
    return graph


def single_switch_topology() -> nx.Graph:
    """One switch (the minimal setting for model-vs-simulator checks)."""
    return linear_topology(1)


def validate_topology(graph: nx.Graph) -> None:
    """Sanity checks: non-empty and connected."""
    if graph.number_of_nodes() == 0:
        raise ValueError("topology has no nodes")
    if not nx.is_connected(graph):
        raise ValueError("topology must be connected")
