"""Event tracing for the simulated network.

A :class:`NetworkMonitor` subscribes to a network's observable moments
-- flow-table installs, evictions, expirations at the reactive switch,
and packet deliveries at hosts -- producing a time-ordered trace.  Two
consumers motivate it:

* debugging and tests: asserting *why* a probe saw what it saw;
* ground-truth extraction: the exact cached-rule set over time, which
  the model-validation tests compare the Markov chain's marginals
  against without re-deriving cache state from packet logs.

The monitor is pull-based over the flow table (it snapshots on every
sampling call) plus push-based for packet observations, so it adds no
overhead when unused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import get_instrumentation
from repro.simulator.network import Network


@dataclass(frozen=True)
class CacheSnapshot:
    """The reactive switch's evictable (reactive) rules at an instant."""

    time: float
    rules: Tuple[str, ...]


@dataclass
class RuleLifetimes:
    """Install/remove intervals per rule name, reconstructed from snapshots."""

    intervals: Dict[str, List[Tuple[float, Optional[float]]]] = field(
        default_factory=dict
    )

    def observe(self, previous: CacheSnapshot, current: CacheSnapshot) -> None:
        """Update intervals from two consecutive snapshots."""
        appeared = set(current.rules) - set(previous.rules)
        vanished = set(previous.rules) - set(current.rules)
        for name in sorted(appeared):
            self.intervals.setdefault(name, []).append((current.time, None))
        for name in sorted(vanished):
            spans = self.intervals.setdefault(
                name, [(previous.time, None)]
            )
            start, end = spans[-1]
            if end is None:
                spans[-1] = (start, current.time)

    def total_residency(self, rule_name: str, horizon: float) -> float:
        """Seconds the rule spent cached within ``[0, horizon]``."""
        total = 0.0
        for start, end in self.intervals.get(rule_name, []):
            total += min(end if end is not None else horizon, horizon) - start
        return max(total, 0.0)


class NetworkMonitor:
    """Samples the reactive switch's cache along the simulation.

    ``sample_interval`` controls the snapshot cadence; sampling is
    driven through the network's own event queue so snapshots interleave
    correctly with traffic.
    """

    def __init__(self, network: Network, sample_interval: float = 0.05) -> None:
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.network = network
        self.sample_interval = sample_interval
        self.snapshots: List[CacheSnapshot] = []
        self.lifetimes = RuleLifetimes()
        self._armed_until: float = 0.0
        self._obs_snapshots = get_instrumentation().metrics.counter(
            "sim.monitor.snapshots"
        )

    def snapshot(self) -> CacheSnapshot:
        """Record the cache contents right now."""
        current = CacheSnapshot(
            time=self.network.sim.now,
            rules=self.network.cached_reactive_rules(),
        )
        if self.snapshots:
            self.lifetimes.observe(self.snapshots[-1], current)
        else:
            for name in current.rules:
                self.lifetimes.intervals.setdefault(name, []).append(
                    (current.time, None)
                )
        self.snapshots.append(current)
        self._obs_snapshots.inc()
        return current

    def arm(self, until: float) -> None:
        """Schedule periodic snapshots up to simulated time ``until``."""
        if until <= self._armed_until:
            return
        start = max(self.network.sim.now, self._armed_until)
        time = start
        while time <= until:
            self.network.sim.schedule_at(time, self.snapshot)
            time += self.sample_interval
        self._armed_until = until

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rule_was_cached(
        self, rule_name: str, start: float, end: float
    ) -> bool:
        """Whether any snapshot in ``[start, end]`` contained the rule."""
        return any(
            start <= snap.time <= end and rule_name in snap.rules
            for snap in self.snapshots
        )

    def presence_fraction(self, rule_name: str) -> float:
        """Fraction of snapshots containing the rule."""
        if not self.snapshots:
            raise ValueError("no snapshots recorded")
        present = sum(
            1 for snap in self.snapshots if rule_name in snap.rules
        )
        return present / len(self.snapshots)

    def occupancy_series(self) -> List[Tuple[float, int]]:
        """(time, number of cached reactive rules) per snapshot."""
        return [(snap.time, len(snap.rules)) for snap in self.snapshots]

    def max_occupancy(self) -> int:
        """Peak number of reactive rules ever observed cached."""
        if not self.snapshots:
            return 0
        return max(len(snap.rules) for snap in self.snapshots)
