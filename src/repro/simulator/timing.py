"""Latency model for the timing side channel.

The paper measured, on its Mininet/OVS/Ryu testbed, an end-to-end probe
response time of 0.087 ms (std 0.021 ms) when the covering rule was
already cached, versus 4.070 ms (std 1.806 ms) when the flow had to be
set up through the controller -- trivially separable with a 1 ms
threshold (Section VI-A).

:class:`LatencyModel` supplies every delay component in the simulated
network.  The defaults in :meth:`LatencyModel.calibrated` are tuned so
that, on the default Stanford-backbone attachment (a 4-switch path from
the host pod to the server pod), the simulated hit and miss populations
match the paper's measurements; ``benchmarks/test_bench_timing_table.py``
regenerates the comparison.

All samples are drawn from normal distributions clipped below at a tenth
of the mean, a pragmatic stand-in for the positively skewed latency
noise of a real testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
import numpy as np


@dataclass(frozen=True)
class LatencyModel:
    """Delay components (seconds): means and standard deviations."""

    #: Per-link propagation + serialisation delay.
    link_mean: float = 6.5e-6
    link_std: float = 5.0e-6
    #: Per-switch table lookup + forwarding.
    lookup_mean: float = 3.0e-6
    lookup_std: float = 2.5e-6
    #: Destination host turnaround for an echo reply.
    host_reply_mean: float = 16.0e-6
    host_reply_std: float = 10.0e-6
    #: One-way switch <-> controller control-channel delay.
    control_link_mean: float = 4.0e-4
    control_link_std: float = 2.0e-4
    #: Controller packet-in processing (rule computation).
    controller_proc_mean: float = 2.9e-3
    controller_proc_std: float = 1.9e-3
    #: Flow-mod handling + table insertion at the switch.
    flowmod_install_mean: float = 3.0e-4
    flowmod_install_std: float = 1.5e-4

    def _sample(
        self, rng: np.random.Generator, mean: float, std: float
    ) -> float:
        if mean <= 0.0:
            return 0.0
        value = float(rng.normal(mean, std))
        return max(value, mean * 0.1)

    def link_delay(self, rng: np.random.Generator) -> float:
        """One traversal of a data-plane link."""
        return self._sample(rng, self.link_mean, self.link_std)

    def lookup_delay(self, rng: np.random.Generator) -> float:
        """One flow-table lookup and forward."""
        return self._sample(rng, self.lookup_mean, self.lookup_std)

    def host_reply_delay(self, rng: np.random.Generator) -> float:
        """Echo turnaround at the destination host."""
        return self._sample(rng, self.host_reply_mean, self.host_reply_std)

    def control_link_delay(self, rng: np.random.Generator) -> float:
        """One-way control channel traversal."""
        return self._sample(rng, self.control_link_mean, self.control_link_std)

    def controller_processing_delay(self, rng: np.random.Generator) -> float:
        """Controller packet-in handling time."""
        return self._sample(
            rng, self.controller_proc_mean, self.controller_proc_std
        )

    def flowmod_install_delay(self, rng: np.random.Generator) -> float:
        """Switch-side flow-mod processing and insertion."""
        return self._sample(
            rng, self.flowmod_install_mean, self.flowmod_install_std
        )

    def expected_setup_delay(self) -> float:
        """Mean extra delay ``t_setup`` on the miss path.

        Packet-in up, processing, flow-mod down, install -- the terms the
        paper folds into ``t_setup`` (Section III-A).
        """
        return (
            2 * self.control_link_mean
            + self.controller_proc_mean
            + self.flowmod_install_mean
        )

    @classmethod
    def calibrated(cls) -> "LatencyModel":
        """Defaults calibrated to the paper's measured distributions."""
        return cls()

    @classmethod
    def noiseless(cls) -> "LatencyModel":
        """All standard deviations zeroed (deterministic delays)."""
        base = cls()
        return replace(
            base,
            link_std=0.0,
            lookup_std=0.0,
            host_reply_std=0.0,
            control_link_std=0.0,
            controller_proc_std=0.0,
            flowmod_install_std=0.0,
        )

    def scaled(self, factor: float) -> "LatencyModel":
        """All means and stds multiplied by ``factor`` (what-if studies)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return LatencyModel(
            link_mean=self.link_mean * factor,
            link_std=self.link_std * factor,
            lookup_mean=self.lookup_mean * factor,
            lookup_std=self.lookup_std * factor,
            host_reply_mean=self.host_reply_mean * factor,
            host_reply_std=self.host_reply_std * factor,
            control_link_mean=self.control_link_mean * factor,
            control_link_std=self.control_link_std * factor,
            controller_proc_mean=self.controller_proc_mean * factor,
            controller_proc_std=self.controller_proc_std * factor,
            flowmod_install_mean=self.flowmod_install_mean * factor,
            flowmod_install_std=self.flowmod_install_std * factor,
        )


#: The paper's hit/miss threshold (Section VI-A): 1 ms.
DEFAULT_THRESHOLD_SECONDS = 1.0e-3

#: The paper's measured statistics, kept for paper-vs-measured reports.
PAPER_HIT_MEAN = 0.087e-3
PAPER_HIT_STD = 0.021e-3
PAPER_MISS_MEAN = 4.070e-3
PAPER_MISS_STD = 1.806e-3
