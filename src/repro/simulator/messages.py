"""Packets and OpenFlow-style control messages.

Only the fields the reproduction needs are modelled: a data-plane
:class:`Packet` carrying its flow identifier and bookkeeping timestamps,
and the three control-channel messages of the reactive path --
:class:`PacketIn` (switch -> controller on a table miss),
:class:`FlowMod` (controller -> switch rule installation), and
:class:`PacketOut` (controller -> switch packet release).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.flows.flowid import FlowId
from repro.flows.rules import Rule

_packet_ids = itertools.count(1)

#: Data-plane packet kinds used by the ICMP echo workload.
ECHO_REQUEST = "echo_request"
ECHO_REPLY = "echo_reply"


class Packet:
    """A data-plane packet.

    ``created`` is the send timestamp at the originating host;
    ``spoofed`` marks attacker packets whose source address is forged
    (Section III-A's probe construction).  ``probe_id`` ties a probe
    packet to its measurement at the attacker.

    A plain ``__slots__`` class rather than a dataclass: one packet is
    allocated per background arrival plus one per echo reply, so the
    per-instance dict is measurable across a sweep (and ``slots=True``
    needs a newer dataclass than the 3.9 floor supports).
    """

    __slots__ = ("flow", "kind", "created", "spoofed", "probe_id", "packet_id")

    #: Unhashable, like the mutable dataclass this class replaced.
    __hash__ = None  # type: ignore[assignment]

    def __init__(
        self,
        flow: FlowId,
        kind: str = ECHO_REQUEST,
        created: float = 0.0,
        spoofed: bool = False,
        probe_id: Optional[int] = None,
        packet_id: Optional[int] = None,
    ) -> None:
        self.flow = flow
        self.kind = kind
        self.created = created
        self.spoofed = spoofed
        self.probe_id = probe_id
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return (
            self.flow,
            self.kind,
            self.created,
            self.spoofed,
            self.probe_id,
            self.packet_id,
        ) == (
            other.flow,
            other.kind,
            other.created,
            other.spoofed,
            other.probe_id,
            other.packet_id,
        )

    def __repr__(self) -> str:
        return (
            f"Packet(flow={self.flow!r}, kind={self.kind!r}, "
            f"created={self.created!r}, spoofed={self.spoofed!r}, "
            f"probe_id={self.probe_id!r}, packet_id={self.packet_id!r})"
        )

    def make_reply(self, now: float) -> "Packet":
        """The echo reply travelling the reverse flow."""
        return Packet(
            flow=self.flow.reversed(),
            kind=ECHO_REPLY,
            created=now,
            spoofed=False,
            probe_id=self.probe_id,
        )


@dataclass(frozen=True)
class PacketIn:
    """Switch-to-controller notification of a table miss."""

    switch_name: str
    packet: Packet
    in_port: int


@dataclass(frozen=True)
class FlowMod:
    """Controller-to-switch rule installation.

    ``out_port`` resolves the rule's abstract forward action to a port
    on the receiving switch (the controller knows the topology).
    """

    rule: Rule
    out_port: int


@dataclass(frozen=True)
class PacketOut:
    """Controller-to-switch release of a buffered packet."""

    packet: Packet
    out_port: int
