"""Job spool: how ``repro-sdn submit`` hands jobs to ``repro-sdn serve``.

The spool is a plain directory of ``<job_id>.json`` files, each the
``to_dict`` form of one :class:`~repro.apispec.JobSpec` (written
atomically, like every service file).  ``submit`` drops specs in;
``serve`` lists the spool, submits everything in deterministic
(job-id) order, and leaves the files in place -- the checkpoint store,
not the spool, is the source of truth for what has already run, so
re-serving a drained spool is a no-op resume rather than a re-run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.apispec import JobSpec
from repro.service.checkpoint import PathLike, _atomic_write
from repro.service.service import resume_spec


def submit_spec(spool: PathLike, spec: JobSpec) -> Path:
    """Write one job into the spool; returns the spool file path.

    The spec gets its deterministic default job id if it has none.  An
    existing spool entry under the same id must carry the same spec
    digest; anything else is a duplicate-id error, mirroring
    :meth:`~repro.service.service.ReconService.submit`.
    """
    spec = resume_spec(spec)
    assert spec.job_id is not None
    path = Path(spool) / f"{spec.job_id}.json"
    if path.exists():
        existing = JobSpec.from_dict(json.loads(path.read_text()))
        if existing.digest() != spec.digest():
            raise ValueError(
                f"job id {spec.job_id!r} already spooled with a "
                "different spec"
            )
        return path
    _atomic_write(path, json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return path


def list_pending(spool: PathLike) -> List[JobSpec]:
    """All spooled jobs, in deterministic job-id order."""
    directory = Path(spool)
    if not directory.exists():
        return []
    specs: List[JobSpec] = []
    for path in sorted(directory.glob("*.json")):
        specs.append(JobSpec.from_dict(json.loads(path.read_text())))
    return specs


__all__ = ["submit_spec", "list_pending"]
