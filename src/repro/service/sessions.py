"""Session planning for the reconnaissance service.

A *session* is one target flow reconnoitred against one shared scenario
(the sampled network configuration of a ``recon`` job): probe
selection, then ``n_trials`` Monte Carlo trials.  Sessions reuse the
PR 5 determinism discipline end to end:

* every session owns a seeded generator ``default_rng([job_seed,
  session_index])`` -- independent of execution order, so a resumed
  service replans the exact same sessions;
* the per-trial randomness (seed integer + probeless verdicts) is
  pre-drawn in the parent by
  :func:`~repro.experiments.parallel.plan_trials`, in exactly the
  serial draw order of ``ConfigHarness.run_trials``;
* pool workers receive only picklable stand-ins
  (:class:`~repro.experiments.parallel._ScriptedAttacker` replays the
  pre-drawn verdicts; :class:`ProbeOnlyAttacker` replays the planned
  probe set) and return raw probe outcomes; the parent recomputes the
  probing attackers' decisions from those outcomes
  (:func:`rescore_trials`) -- ``decide`` is a pure function of the
  outcome bits, so the rescored decisions are bit-identical to running
  the real attackers in-trial.

The one expensive per-scenario object -- the
:class:`~repro.core.compact_model.CompactModel` with its shared
transition-power caches -- is built once by the service and passed in;
per-session work is the target-excluded evolution plus the trials,
which is where the service's sessions/sec advantage over serially
looping full harnesses comes from (BENCH_service.json).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apispec import JobSpec
from repro.core.attacker import (
    Attacker,
    ModelAttacker,
    NaiveAttacker,
    RandomAttacker,
)
from repro.core.compact_model import CompactModel
from repro.core.inference import ReconInference
from repro.experiments.parallel import TrialPlan, plan_trials
from repro.experiments.trials import TrialResult
from repro.flows.config import NetworkConfiguration

#: Attacker lineup evaluated in every service session.  The constrained
#: (Figure 7) attacker is a batch-experiment concern; recon sessions
#: compare the model attacker against the naive and random baselines.
SESSION_ATTACKERS: Tuple[str, ...] = ("naive", "model", "random")


class ProbeOnlyAttacker(Attacker):
    """Replays a pre-selected probe set inside a pool worker.

    Probe *selection* is expensive and already done in the parent; the
    worker only needs the probe flows to inject.  Its ``decide`` is a
    placeholder -- the parent recomputes the real decision from the
    returned outcome bits via :func:`rescore_trials`.
    """

    def __init__(self, name: str, probes: Sequence[int]) -> None:
        self.name = name
        self._probes = tuple(int(p) for p in probes)

    def plan(self) -> Tuple[int, ...]:
        return self._probes

    def decide(self, outcomes: Sequence[Optional[int]]) -> int:
        return 0


@dataclass(frozen=True)
class SessionRuntime:
    """One planned session: everything needed to run and score it.

    ``config`` is the job scenario retargeted at this session's flow;
    ``lineup`` holds the real (parent-side) attackers; ``worker_lineup``
    the picklable stand-ins shipped to pool workers; ``trials`` the
    pre-drawn per-trial randomness.
    """

    index: int
    target_flow: int
    config: NetworkConfiguration
    lineup: Tuple[Attacker, ...]
    worker_lineup: Tuple[Attacker, ...]
    trials: Tuple[TrialPlan, ...]
    prior_absent: float
    probes: Tuple[int, ...]


def session_rng(seed: int, index: int) -> np.random.Generator:
    """The session's own generator: ``default_rng([seed, index])``.

    Keyed by (job seed, session index), not by execution order, so
    skipping already-checkpointed sessions on resume cannot shift the
    randomness of the remaining ones.
    """
    return np.random.default_rng([int(seed), int(index)])


def plan_session(
    model: CompactModel,
    scenario: NetworkConfiguration,
    spec: JobSpec,
    index: int,
    target_flow: int,
) -> SessionRuntime:
    """Plan one session (the service's only generator-constructing path).

    Mirrors ``ConfigHarness`` construction for the reduced session
    lineup -- same attacker build order, same generator draw order --
    so a session's accuracies are bit-identical to building a fresh
    harness on the retargeted configuration with the same generator
    (the differential test in tests/service/test_service.py pins this).
    """
    if spec.seed is None:
        raise ValueError("service jobs require an explicit seed")
    rng = session_rng(spec.seed, index)
    config = replace(scenario, target_flow=int(target_flow))
    inference = ReconInference(model, config.target_flow, config.window_steps)
    naive = NaiveAttacker(config.target_flow)
    model_attacker = ModelAttacker(
        inference,
        n_probes=spec.n_probes,
        decision=spec.decision,
        n_jobs=spec.selection_jobs,
    )
    random_attacker = RandomAttacker(
        prior_present=1.0 - inference.prior_absent(),
        rng=rng,
        mode=spec.random_attacker_mode,
    )
    lineup: Tuple[Attacker, ...] = (naive, model_attacker, random_attacker)
    trials = tuple(plan_trials(rng, lineup, spec.n_trials))
    worker_lineup = tuple(
        attacker
        if not attacker.plan()
        else ProbeOnlyAttacker(attacker.name, attacker.plan())
        for attacker in lineup
    )
    return SessionRuntime(
        index=int(index),
        target_flow=int(target_flow),
        config=config,
        lineup=lineup,
        worker_lineup=worker_lineup,
        trials=trials,
        prior_absent=float(inference.prior_absent()),
        probes=tuple(model_attacker.probes),
    )


def eligible_targets(scenario: NetworkConfiguration, spec: JobSpec) -> Tuple[int, ...]:
    """The job's target flow set.

    Explicit ``spec.targets`` win (validated against the universe);
    otherwise the first ``spec.n_targets`` flows covered by at least
    one policy rule, in ascending flow order -- deterministic, so a
    resumed job enumerates the identical set.
    """
    n_flows = len(scenario.universe)
    if spec.targets is not None:
        bad = [t for t in spec.targets if t >= n_flows]
        if bad:
            raise ValueError(
                f"target flow(s) outside the universe of {n_flows}: {bad}"
            )
        return spec.targets
    covered = [
        index
        for index in range(n_flows)
        if scenario.policy.covering(index)
    ]
    if not covered:
        raise ValueError("scenario has no policy-covered flows to target")
    return tuple(covered[: spec.n_targets])


def rescore_trials(
    results: Sequence[TrialResult], lineup: Sequence[Attacker]
) -> List[TrialResult]:
    """Recompute probing attackers' decisions from recorded outcomes.

    ``decide`` is pure given the outcome bits (decision trees and query
    bits carry no trial state), so rescoring results produced with
    :class:`ProbeOnlyAttacker` stand-ins -- or re-rescoring real
    in-trial decisions -- yields exactly the serial loop's decisions.
    Probeless attackers keep their (scripted) in-trial verdicts.
    """
    probing = [attacker for attacker in lineup if attacker.plan()]
    rescored: List[TrialResult] = []
    for trial in results:
        decisions = dict(trial.decisions)
        for attacker in probing:
            decisions[attacker.name] = int(
                attacker.decide(trial.outcomes[attacker.name])
            )
        rescored.append(replace(trial, decisions=decisions))
    return rescored


def session_row(
    runtime: SessionRuntime, results: Sequence[TrialResult]
) -> Dict[str, object]:
    """The session's checkpoint row (plain JSON, fully deterministic)."""
    n_trials = len(results)
    correct = {name: 0 for name in SESSION_ATTACKERS}
    for trial in results:
        for name in SESSION_ATTACKERS:
            if trial.correct(name):
                correct[name] += 1
    return {
        "session": runtime.index,
        "target_flow": runtime.target_flow,
        "prior_absent": runtime.prior_absent,
        "probes": list(runtime.probes),
        "trials": n_trials,
        "accuracies": {
            name: correct[name] / n_trials for name in SESSION_ATTACKERS
        },
    }
