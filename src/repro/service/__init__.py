"""Concurrent reconnaissance session service (docs/SERVICE.md).

Public surface:

* :class:`~repro.service.service.ReconService` -- the asyncio job
  front-end; :func:`~repro.service.service.serve_jobs` is the sync
  one-shot wrapper the CLI uses.
* :class:`~repro.service.checkpoint.CheckpointStore` -- atomic,
  resumable on-disk state.
* :func:`~repro.service.spool.submit_spec` /
  :func:`~repro.service.spool.list_pending` -- the submit/serve spool.
"""

from repro.service.checkpoint import (
    CheckpointStore,
    document_digest,
    job_document,
    session_document,
)
from repro.service.pool import SessionPool
from repro.service.service import (
    SERVICE_EXPERIMENTS,
    ReconService,
    ServiceBudgetExhausted,
    resume_spec,
    serve_jobs,
)
from repro.service.sessions import (
    eligible_targets,
    plan_session,
    rescore_trials,
    session_row,
)
from repro.service.spool import list_pending, submit_spec

__all__ = [
    "CheckpointStore",
    "ReconService",
    "SERVICE_EXPERIMENTS",
    "ServiceBudgetExhausted",
    "SessionPool",
    "document_digest",
    "eligible_targets",
    "job_document",
    "list_pending",
    "plan_session",
    "rescore_trials",
    "resume_spec",
    "serve_jobs",
    "session_document",
    "session_row",
    "submit_spec",
]
