"""Checkpoint store: crash-safe, resumable service state.

Layout under the service state directory::

    <state>/<job_id>/job.json                submitted JobSpec + digest
    <state>/<job_id>/sessions/<NNNN>.json    one ResultDocument per session
    <state>/<job_id>/result.json             final job ResultDocument

Every file is written atomically (temp file + ``os.replace`` in the
same directory), so a kill at any instant leaves either the previous
state or the new one -- never a torn JSON.  Sessions are keyed by
their deterministic index, and each checkpoint is the session's full
:class:`~repro.experiments.persist.ResultDocument` envelope (artifact
``recon.session``, schema v3 with the ``job`` section), so a restarted
service can re-aggregate the final document from checkpoints alone.

Bit-identical resume is the contract the lifecycle tests pin: because
session randomness is keyed ``[seed, index]`` (never by execution
order) and checkpoints carry only deterministic content, the digests
of a killed-and-resumed run equal those of an uninterrupted run of the
same spec.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.version import __version__
from repro.apispec import JobSpec
from repro.experiments.persist import (
    SCHEMA_VERSION,
    ResultDocument,
    _git_sha,
)

PathLike = Union[str, Path]


def document_digest(document: Dict[str, object]) -> str:
    """Canonical sha256 of a plain-JSON document (sorted keys)."""
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _atomic_write(path: Path, payload: str) -> None:
    """Write-then-rename so readers never see a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _service_provenance(spec: JobSpec) -> Dict[str, object]:
    return {
        "repro_version": __version__,
        "git_sha": _git_sha(),
        "seed": spec.seed,
    }


def session_document(spec: JobSpec, row: Dict[str, object]) -> Dict[str, object]:
    """One session's checkpoint, in the unified v3 envelope."""
    return ResultDocument(
        artifact="recon.session",
        metrics=dict(row["accuracies"]),  # type: ignore[arg-type]
        series={"session": row},
        configurations=[],
        params=None,
        provenance=_service_provenance(spec),
        job=spec.to_dict(),
        schema_version=SCHEMA_VERSION,
    ).to_json()


def job_document(
    spec: JobSpec, rows: Sequence[Dict[str, object]]
) -> Dict[str, object]:
    """The final job result, aggregated over its session rows."""
    rows = list(rows)
    names = sorted(rows[0]["accuracies"]) if rows else []  # type: ignore[index]
    metrics: Dict[str, object] = {
        name: sum(row["accuracies"][name] for row in rows) / len(rows)  # type: ignore[index]
        for name in names
    }
    metrics["n_sessions"] = float(len(rows))
    return ResultDocument(
        artifact="recon",
        metrics=metrics,
        series={"sessions": rows},
        configurations=[],
        params=None,
        provenance=_service_provenance(spec),
        job=spec.to_dict(),
        schema_version=SCHEMA_VERSION,
    ).to_json()


class CheckpointStore:
    """Atomic persistence of job specs, session checkpoints, results."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # -- paths ---------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise ValueError(f"invalid job id: {job_id!r}")
        return self.root / job_id

    def _session_path(self, job_id: str, index: int) -> Path:
        return self.job_dir(job_id) / "sessions" / f"{int(index):04d}.json"

    def _result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    # -- job spec ------------------------------------------------------
    def record_job(self, spec: JobSpec) -> None:
        if spec.job_id is None:
            raise ValueError("spec has no job_id")
        record = {"spec": spec.to_dict(), "digest": spec.digest()}
        _atomic_write(
            self.job_dir(spec.job_id) / "job.json",
            json.dumps(record, indent=2, sort_keys=True),
        )

    def load_job(self, job_id: str) -> Optional[JobSpec]:
        path = self.job_dir(job_id) / "job.json"
        if not path.exists():
            return None
        record = json.loads(path.read_text())
        return JobSpec.from_dict(record["spec"])

    def known_jobs(self) -> List[str]:
        if not self.root.exists():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / "job.json").exists()
        )

    # -- session checkpoints -------------------------------------------
    def write_session(
        self, job_id: str, index: int, document: Dict[str, object]
    ) -> Path:
        path = self._session_path(job_id, index)
        _atomic_write(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    def completed_sessions(self, job_id: str) -> Dict[int, Dict[str, object]]:
        """Checkpointed session documents, keyed by session index."""
        directory = self.job_dir(job_id) / "sessions"
        if not directory.exists():
            return {}
        sessions: Dict[int, Dict[str, object]] = {}
        for path in sorted(directory.glob("[0-9]*.json")):
            sessions[int(path.stem)] = json.loads(path.read_text())
        return sessions

    # -- final result --------------------------------------------------
    def write_result(self, job_id: str, document: Dict[str, object]) -> Path:
        path = self._result_path(job_id)
        _atomic_write(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    def load_result(self, job_id: str) -> Optional[Dict[str, object]]:
        path = self._result_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def digests(self, job_id: str) -> Dict[str, str]:
        """Digest of every stored document (the bit-identity probe)."""
        digests: Dict[str, str] = {}
        for index, document in self.completed_sessions(job_id).items():
            digests[f"session/{index:04d}"] = document_digest(document)
        result = self.load_result(job_id)
        if result is not None:
            digests["result"] = document_digest(result)
        return digests


__all__ = [
    "CheckpointStore",
    "document_digest",
    "job_document",
    "session_document",
]
