"""The reconnaissance session service.

:class:`ReconService` is an asyncio job front-end over the repo's
experiment machinery.  Jobs arrive as the unified
:class:`~repro.apispec.JobSpec` -- the same object the CLI builds --
and fall into two classes:

* ``recon`` jobs: one scenario (sampled from the spec's configuration
  parameters and seed), reconnoitred target-by-target.  Each target is
  a *session* (probe selection + trials); sessions are planned in the
  parent with PR 5's pre-drawn randomness, sharded across the
  persistent :class:`~repro.service.pool.SessionPool`, checkpointed
  one ``ResultDocument`` each, and aggregated into the job result.
* batch jobs (``fig6``/``fig7``/``robustness``): dispatched to the
  existing experiment runners and persisted in the same envelope.

Progress streams through the obs layer: ``service.jobs.submitted`` /
``service.jobs.completed`` / ``service.sessions.completed`` counters,
the ``service.sessions.active`` gauge, ``service.checkpoint.hits`` for
resumed work, and per-job/per-session spans.

The determinism contract (pinned by tests/service/test_service.py):
a service killed at any point and restarted on the same state
directory completes the job with checkpoint and result digests
bit-identical to an uninterrupted run of the same spec, because every
session's randomness is keyed ``[seed, session_index]`` and every
checkpoint is written atomically.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, List, Optional, Tuple

from repro.apispec import JobSpec
from repro.core.compact_model import CompactModel
from repro.experiments.parallel import _TrialContext
from repro.experiments.params import ExperimentParams
from repro.flows.config import ConfigGenerator, NetworkConfiguration
from repro.obs import get_instrumentation
from repro.service.checkpoint import (
    CheckpointStore,
    PathLike,
    job_document,
    session_document,
)
from repro.service.pool import SessionPool
from repro.service.sessions import (
    SessionRuntime,
    eligible_targets,
    plan_session,
    rescore_trials,
    session_row,
)

#: Experiments the service accepts (others have no service semantics:
#: ``reproduce`` composes jobs, ``select`` is interactive tooling).
SERVICE_EXPERIMENTS: Tuple[str, ...] = (
    "recon",
    "fig6",
    "fig7",
    "robustness",
    "defend",
)


class ServiceBudgetExhausted(RuntimeError):
    """Raised when ``max_sessions`` runs out with work still pending.

    The service stops *between* checkpoints, so everything completed so
    far is durably on disk and a later service run resumes exactly
    where this one stopped (the CLI maps this to exit code 3).
    """

    def __init__(self, job_id: str, completed: int, pending: int) -> None:
        super().__init__(
            f"session budget exhausted in job {job_id!r}: "
            f"{completed} session(s) checkpointed, {pending} still pending"
        )
        self.job_id = job_id
        self.completed = completed
        self.pending = pending


class ReconService:
    """Concurrent reconnaissance sessions behind a job queue.

    Parameters
    ----------
    state:
        Checkpoint directory (shared by successive service runs; this
        is what makes kill/resume work).
    shards:
        Worker processes for the session pool; ``1`` runs everything
        serially in the parent.
    max_sessions:
        Optional budget of *newly executed* sessions (checkpoint hits
        are free).  Exhausting it raises
        :class:`ServiceBudgetExhausted` from :meth:`drain`.
    """

    def __init__(
        self,
        state: PathLike,
        *,
        shards: int = 1,
        max_sessions: Optional[int] = None,
    ) -> None:
        self.store = CheckpointStore(state)
        self.pool = SessionPool(shards)
        self.shards = max(1, int(shards))
        self.max_sessions = max_sessions
        self.sessions_run = 0
        self._queue: "asyncio.Queue[JobSpec]" = asyncio.Queue()
        self._pending: Dict[str, JobSpec] = {}
        self._completed: Dict[str, Dict[str, object]] = {}
        #: One model per scenario key; sessions of a job (and resubmitted
        #: jobs with the same scenario) share the transition-power caches.
        self._models: Dict[
            str, Tuple[NetworkConfiguration, CompactModel]
        ] = {}

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        """Enqueue a job; returns its id.

        A spec without a ``job_id`` gets the deterministic default
        ``job-<digest12>``.  Duplicate ids are rejected: an id already
        queued, or recorded in the state directory under a *different*
        spec digest, is an error.  Resubmitting the identical spec is
        the resume path -- completed sessions are loaded from
        checkpoints instead of re-run.
        """
        if spec.experiment not in SERVICE_EXPERIMENTS:
            raise ValueError(
                f"experiment {spec.experiment!r} cannot be served; "
                f"expected one of {', '.join(SERVICE_EXPERIMENTS)}"
            )
        if spec.seed is None:
            raise ValueError("service jobs require an explicit seed")
        if spec.job_id is None:
            spec = spec.with_job_id(f"job-{spec.digest()[:12]}")
        job_id = spec.job_id
        assert job_id is not None
        if job_id in self._pending:
            raise ValueError(f"duplicate job id: {job_id!r} is already queued")
        recorded = self.store.load_job(job_id)
        if recorded is not None and recorded.digest() != spec.digest():
            raise ValueError(
                f"job id {job_id!r} already exists with a different spec "
                f"(digest {recorded.digest()[:12]} != {spec.digest()[:12]})"
            )
        self.store.record_job(spec)
        self._pending[job_id] = spec
        self._queue.put_nowait(spec)
        get_instrumentation().metrics.counter("service.jobs.submitted").inc()
        return job_id

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def drain(self) -> Dict[str, Dict[str, object]]:
        """Run every queued job to completion; returns id -> result.

        Jobs run in submission order; sessions within a ``recon`` job
        are sharded ``shards`` at a time through the pool.  On budget
        exhaustion the current checkpoints are already durable and the
        exception propagates after the in-flight batch lands.
        """
        obs = get_instrumentation()
        while not self._queue.empty():
            spec = self._queue.get_nowait()
            job_id = spec.job_id
            assert job_id is not None
            with obs.span("service.job", job=job_id, experiment=spec.experiment):
                if spec.experiment == "recon":
                    result = await self._run_recon(spec)
                else:
                    result = await self._run_batch(spec)
            self._completed[job_id] = result
            del self._pending[job_id]
            obs.metrics.counter("service.jobs.completed").inc()
        return dict(self._completed)

    def _charge_budget(self, spec: JobSpec, completed: int, pending: int) -> None:
        if self.max_sessions is None:
            return
        if self.sessions_run >= self.max_sessions and pending:
            raise ServiceBudgetExhausted(
                spec.job_id or "?", completed, pending
            )

    def _scenario_for(
        self, spec: JobSpec
    ) -> Tuple[NetworkConfiguration, CompactModel]:
        """The job's sampled scenario and its (cached) compact model."""
        params = spec.to_params()
        key = self._scenario_key(spec, params)
        cached = self._models.get(key)
        if cached is not None:
            return cached
        obs = get_instrumentation()
        generator = ConfigGenerator(params.config, seed=spec.seed)
        scenario = generator.sample()
        with obs.phase("service.model_build"), obs.span(
            "service.model_build", job=spec.job_id or ""
        ):
            model = CompactModel(
                scenario.policy,
                scenario.universe,
                scenario.delta,
                scenario.cache_size,
                kernel=spec.kernel,
            )
            if params.estimator != "independent":
                from repro.core.recency import make_estimator

                model.estimator = make_estimator(
                    params.estimator, model.context
                )
        self._models[key] = (scenario, model)
        return scenario, model

    @staticmethod
    def _scenario_key(spec: JobSpec, params: ExperimentParams) -> str:
        config = spec.to_dict()["config"]
        return repr((config, spec.seed, spec.kernel, params.estimator))

    async def _run_recon(self, spec: JobSpec) -> Dict[str, object]:
        """Run (or resume) one recon job session-by-session."""
        job_id = spec.job_id
        assert job_id is not None
        obs = get_instrumentation()
        scenario, model = self._scenario_for(spec)
        targets = eligible_targets(scenario, spec)

        rows: Dict[int, Dict[str, object]] = {}
        for index, document in self.store.completed_sessions(job_id).items():
            if index < len(targets):
                rows[index] = document["series"]["session"]  # type: ignore[index]
                obs.metrics.counter("service.checkpoint.hits").inc()
        pending = [
            (index, target)
            for index, target in enumerate(targets)
            if index not in rows
        ]

        active = obs.metrics.gauge("service.sessions.active")
        while pending:
            self._charge_budget(spec, len(rows), len(pending))
            batch = pending[: self.shards]
            if self.max_sessions is not None:
                batch = batch[: self.max_sessions - self.sessions_run]
            pending = pending[len(batch):]
            runtimes: List[SessionRuntime] = []
            active.set(len(batch))
            try:
                for index, target in batch:
                    with obs.span(
                        "service.session.plan",
                        job=job_id,
                        session=index,
                        target=target,
                    ):
                        runtimes.append(
                            plan_session(model, scenario, spec, index, target)
                        )
                tasks = [
                    (self._trial_context(spec, runtime), runtime.trials)
                    for runtime in runtimes
                ]
                with obs.span(
                    "service.session.batch", job=job_id, sessions=len(tasks)
                ):
                    batch_results = self.pool.run_sessions(tasks)
            finally:
                active.set(0)
            for runtime, results in zip(runtimes, batch_results):
                rescored = rescore_trials(results, runtime.lineup)
                row = session_row(runtime, rescored)
                self.store.write_session(
                    job_id, runtime.index, session_document(spec, row)
                )
                rows[runtime.index] = row
                self.sessions_run += 1
                obs.metrics.counter("service.sessions.completed").inc()
            # Yield between batches so a long job cannot starve other
            # coroutines sharing the loop (progress readers, signals).
            await asyncio.sleep(0)

        document = job_document(
            spec, [rows[index] for index in sorted(rows)]
        )
        self.store.write_result(job_id, document)
        return document

    def _trial_context(
        self, spec: JobSpec, runtime: SessionRuntime
    ) -> _TrialContext:
        return _TrialContext(
            config=runtime.config,
            lineup=runtime.worker_lineup,
            mode=spec.trial_mode,
            latency=None,
            defense_factory=None,
            fault_plan=spec.fault_plan,
            probe_retries=spec.probe_retries,
            collect_counters=get_instrumentation().enabled,
        )

    async def _run_batch(self, spec: JobSpec) -> Dict[str, object]:
        """Dispatch a fig6/fig7/robustness/defend job to its runner."""
        from repro.experiments.defend import run_defend
        from repro.experiments.fig6 import run_fig6
        from repro.experiments.fig7 import run_fig7
        from repro.experiments.persist import (
            defend_to_document,
            fig6_to_document,
            fig7_to_document,
            robustness_to_document,
        )
        from repro.experiments.robustness import run_robustness

        job_id = spec.job_id
        assert job_id is not None
        existing = self.store.load_result(job_id)
        if existing is not None:
            get_instrumentation().metrics.counter(
                "service.checkpoint.hits"
            ).inc()
            return existing
        if spec.experiment == "fig6":
            document = fig6_to_document(run_fig6(spec), spec=spec)
        elif spec.experiment == "fig7":
            document = fig7_to_document(run_fig7(spec), spec=spec)
        elif spec.experiment == "defend":
            document = defend_to_document(run_defend(spec), spec=spec)
        else:
            document = robustness_to_document(run_robustness(spec), spec=spec)
        self.store.write_result(job_id, document)
        await asyncio.sleep(0)
        return document

    def close(self) -> None:
        """Release the session pool (idempotent)."""
        self.pool.close()


def serve_jobs(
    specs: Iterable[JobSpec],
    state: PathLike,
    *,
    shards: int = 1,
    max_sessions: Optional[int] = None,
) -> Dict[str, Dict[str, object]]:
    """Submit ``specs`` to a fresh service and drain it (sync wrapper)."""
    service = ReconService(state, shards=shards, max_sessions=max_sessions)
    try:
        for spec in specs:
            service.submit(spec)
        return asyncio.run(service.drain())
    finally:
        service.close()


def resume_spec(spec: JobSpec) -> JobSpec:
    """Normalise a spec the way :meth:`ReconService.submit` would."""
    if spec.job_id is None:
        return spec.with_job_id(f"job-{spec.digest()[:12]}")
    return spec


__all__ = [
    "ReconService",
    "SERVICE_EXPERIMENTS",
    "ServiceBudgetExhausted",
    "serve_jobs",
    "resume_spec",
]
