"""Persistent session pool for the reconnaissance service.

Unlike the per-batch pools of :mod:`repro.experiments.parallel` (built
and torn down inside one ``run_trials`` call), the service keeps one
fork pool alive across jobs and ships each session to it as a single
task: the picklable trial context plus its pre-drawn plans.  The trial
payload is exactly PR 5's -- ``_run_planned_trial`` over a
``_TrialContext`` -- so a pooled session returns bit-identical
``TrialResult`` lists to running the same plans serially.

Failure discipline mirrors ``run_planned_trials``: any exception
escaping the pool (fork failure, worker crash, broken pipe after a
kill) permanently retires the pool for this service instance, bumps
``service.pool.fallbacks``, and every session from then on runs
serially in the parent -- same plans, same results, no retry storms
against a dead pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import (
    TrialPlan,
    _fork_context,
    _run_planned_trial,
    _TrialContext,
    counter_deltas,
)
from repro.experiments.trials import TrialResult
from repro.obs import Instrumentation, get_instrumentation, use_instrumentation

#: One pool task: the session's trial context and its pre-drawn plans,
#: plus whether the worker should collect counter deltas.
SessionTask = Tuple[_TrialContext, Tuple[TrialPlan, ...], bool]


def _session_work(
    task: SessionTask,
) -> Tuple[List[TrialResult], Dict[str, int]]:
    """Run one whole session's trials inside a pool worker."""
    context, plans, collect = task
    if not collect:
        return [_run_planned_trial(context, plan) for plan in plans], {}
    worker_obs = Instrumentation()
    with use_instrumentation(worker_obs):
        results = [_run_planned_trial(context, plan) for plan in plans]
    return results, counter_deltas(worker_obs)


class SessionPool:
    """A persistent fork pool that degrades to serial, permanently.

    ``shards`` is the worker count; ``shards <= 1`` (or a platform
    without the fork start method) never creates a pool at all.  The
    pool is built lazily on first use, so a service that only ever runs
    serial jobs costs nothing.
    """

    def __init__(self, shards: int = 1) -> None:
        self.shards = max(1, int(shards))
        self._pool = None
        self._dead = False

    @property
    def pooled(self) -> bool:
        """Whether sessions currently go through a live pool."""
        return self.shards > 1 and not self._dead

    def _ensure_pool(self):
        if self._pool is None:
            fork = _fork_context()
            if fork is None:
                self._dead = True
                return None
            self._pool = fork.Pool(self.shards)
        return self._pool

    def _retire(self) -> None:
        """First failure kills the pool for good (fallback discipline)."""
        self._dead = True
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass
        get_instrumentation().metrics.counter("service.pool.fallbacks").inc()

    def run_sessions(
        self,
        tasks: Sequence[Tuple[_TrialContext, Sequence[TrialPlan]]],
    ) -> List[List[TrialResult]]:
        """Run several sessions' trials, one pool task per session.

        Returns per-session ``TrialResult`` lists in task order.  On
        any pool failure the *whole batch* re-runs serially (trials are
        pure functions of their plans, so the serial re-run reproduces
        exactly what the pool would have returned) and the pool is
        retired.
        """
        obs = get_instrumentation()
        payloads: List[SessionTask] = [
            (context, tuple(plans), obs.enabled) for context, plans in tasks
        ]
        if self.pooled and len(payloads) > 0:
            pool = self._ensure_pool()
            if pool is not None:
                try:
                    outputs = pool.map(_session_work, payloads)
                except Exception:
                    self._retire()
                else:
                    merged: Dict[str, int] = {}
                    results: List[List[TrialResult]] = []
                    for session_results, deltas in outputs:
                        results.append(session_results)
                        for name, value in deltas.items():
                            merged[name] = merged.get(name, 0) + value
                    if obs.enabled:
                        for name in sorted(merged):
                            obs.metrics.counter(name).inc(merged[name])
                    return results
        return [
            [_run_planned_trial(context, plan) for plan in plans]
            for context, plans, _ in payloads
        ]

    def close(self) -> None:
        """Shut the pool down cleanly (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.close()
                pool.join()
            except Exception:
                pass


__all__ = ["SessionPool", "SessionTask"]
