"""The non-adaptive multi-probe decision tree (Section V-B).

"By selecting a sequence of probe flows, the adversary actually
constructs a decision tree with each layer corresponding to an attack
flow.  The leaf nodes of the tree are the decisions whether the flow f̂
occurred or not according to the conditional distribution
P(X̂ | Q_{f_1}, ..., Q_{f_m})."

:class:`DecisionTree` materialises that object from an
:class:`~repro.core.inference.OutcomeTable`: each root-to-leaf path is
one probe-outcome vector, each leaf stores the MAP decision and its
posterior.  The tree doubles as the classifier the attacker runs after
observing real probe outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.gain import Outcome
from repro.core.inference import OutcomeTable, ReconInference


@dataclass(frozen=True)
class Leaf:
    """One leaf: the decision for a full probe-outcome vector."""

    outcome: Outcome
    decision: int
    posterior_present: float
    probability: float


class DecisionTree:
    """Outcome-vector classifier for a fixed probe sequence."""

    def __init__(self, table: OutcomeTable) -> None:
        self.probes = table.probes
        self._leaves: Dict[Outcome, Leaf] = {}
        for outcome, p_q in table.outcome_probs.items():
            posterior = table.posterior_present(outcome)
            self._leaves[outcome] = Leaf(
                outcome=outcome,
                decision=1 if posterior > 0.5 else 0,
                posterior_present=posterior,
                probability=p_q,
            )
        self._default_decision = self._majority_decision()

    @classmethod
    def build(
        cls, inference: ReconInference, probes: Sequence[int]
    ) -> "DecisionTree":
        """Build the tree for ``probes`` from a fitted inference object."""
        return cls(inference.outcome_table(tuple(probes)))

    def _majority_decision(self) -> int:
        """Decision for never-predicted outcomes: the prior MAP."""
        present_mass = sum(
            leaf.posterior_present * leaf.probability
            for leaf in self._leaves.values()
        )
        total = sum(leaf.probability for leaf in self._leaves.values())
        if total <= 0.0:
            return 0
        return 1 if present_mass / total > 0.5 else 0

    @property
    def leaves(self) -> Tuple[Leaf, ...]:
        """All leaves, ordered by outcome vector."""
        return tuple(
            self._leaves[key] for key in sorted(self._leaves.keys())
        )

    def predict(self, outcome: Sequence[int]) -> int:
        """Classify an observed outcome vector.

        Outcomes the model assigned zero probability fall back to the
        prior MAP decision (they can still occur in reality because the
        model is approximate).
        """
        key = tuple(int(bit) for bit in outcome)
        if len(key) != len(self.probes):
            raise ValueError(
                f"expected {len(self.probes)} outcome bits, got {len(key)}"
            )
        leaf = self._leaves.get(key)
        if leaf is None:
            return self._default_decision
        return leaf.decision

    def predict_partial(self, outcome: Sequence[Optional[int]]) -> int:
        """Classify an outcome vector with unobserved (``None``) bits.

        Marginalises the missing bits: sums leaf mass over every leaf
        whose outcome agrees with the observed bits, and answers with
        the MAP of the aggregated posterior.  With no ``None`` bits this
        reduces to :meth:`predict`; with *only* ``None`` bits (or when
        no matching leaf carries mass) it falls back to the prior MAP
        decision, same as an unmodelled outcome.
        """
        bits = list(outcome)
        if len(bits) != len(self.probes):
            raise ValueError(
                f"expected {len(self.probes)} outcome bits, got {len(bits)}"
            )
        if all(bit is not None for bit in bits):
            return self.predict([int(bit) for bit in bits if bit is not None])
        present_mass = 0.0
        total = 0.0
        for leaf in self._leaves.values():
            if any(
                bit is not None and int(bit) != leaf_bit
                for bit, leaf_bit in zip(bits, leaf.outcome)
            ):
                continue
            present_mass += leaf.posterior_present * leaf.probability
            total += leaf.probability
        if total <= 0.0:
            return self._default_decision
        return 1 if present_mass / total > 0.5 else 0

    def expected_accuracy(self) -> float:
        """Model-predicted accuracy of the MAP decisions.

        For each leaf the decision is correct with probability
        ``max(posterior, 1 - posterior)``; weight by leaf probability.
        """
        total = sum(leaf.probability for leaf in self._leaves.values())
        if total <= 0.0:
            return 0.5
        weighted = sum(
            max(leaf.posterior_present, 1.0 - leaf.posterior_present)
            * leaf.probability
            for leaf in self._leaves.values()
        )
        return weighted / total

    def describe(self) -> str:
        """Multi-line rendering of the tree's leaves."""
        lines = [f"probes: {list(self.probes)}"]
        for leaf in self.leaves:
            bits = "".join(str(b) for b in leaf.outcome)
            lines.append(
                f"  Q={bits}  ->  X̂={leaf.decision} "
                f"(P(X̂=1|Q)={leaf.posterior_present:.3f}, "
                f"P(Q)={leaf.probability:.3f})"
            )
        return "\n".join(lines)
