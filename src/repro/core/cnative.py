"""Optional native (C) kernel for the float32 screening pre-pass.

The fast-path candidate screen (:mod:`repro.core.fastscreen`) spends
nearly all of its time powering two transition chains per candidate --
``window_steps`` sparse matvecs against the full and target-excluded
matrices.  scipy's float64 matvec is the exact reference; profiling
showed the float32 screen gets no speedup from scipy (the matrices fit
in L2, so the loop is core-bound on scalar index gathers, not
memory-bound), which is why this module exists: a small C kernel,
compiled on demand with the system ``gcc``, that fuses the whole
``steps``-long pair of chains into one call using

* ``float32`` data with ``uint16`` column indices (halves the per-entry
  footprint and decode cost; transition spaces here are far below the
  65536-state limit), and
* an AVX-512 inner loop with two 16-lane gather+FMA streams in flight
  (~2.2x over scipy on the headline workload), guarded by
  ``__builtin_cpu_supports`` with a portable unrolled-scalar fallback
  selected at runtime.

The kernel is *approximate by construction* (float32); it is only ever
used behind the certified screen, which falls back to the exact float64
path whenever the float32 error bounds cannot certify a verdict.  When
``gcc`` (or a writable cache directory) is unavailable the module
degrades to ``available() == False`` and the screen runs exact-only --
behaviour stays correct, only slower.

Shared objects are cached under :func:`cache_dir` keyed by a digest of
the C source and compiler, so the one-time compile (~1 s) is paid per
machine, not per run.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from typing import Optional, Tuple

import numpy as np

#: Environment override for the shared-object cache directory.
CACHE_ENV_VAR = "REPRO_CKERNEL_CACHE"

#: Environment kill switch: set to "1" to refuse the native kernel even
#: when it would compile (forces the exact screening path; used by the
#: differential tests to exercise the fallback).
DISABLE_ENV_VAR = "REPRO_NO_CKERNEL"

#: uint16 column indices bound the state-space size the kernel accepts.
MAX_STATES = 65536

_SOURCE = r"""
#include <stdint.h>
#include <string.h>
#include <immintrin.h>

/* Portable scalar inner matvec: f32 data, u16 column indices, four
   accumulators to break the dependency chain. */
static void matvec_scalar(int64_t n, const int32_t *indptr,
                          const uint16_t *indices, const float *data,
                          const float *x, float *y) {
    for (int64_t i = 0; i < n; i++) {
        int32_t lo = indptr[i], hi = indptr[i + 1];
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        int32_t jj = lo;
        for (; jj + 4 <= hi; jj += 4) {
            s0 += data[jj] * x[indices[jj]];
            s1 += data[jj + 1] * x[indices[jj + 1]];
            s2 += data[jj + 2] * x[indices[jj + 2]];
            s3 += data[jj + 3] * x[indices[jj + 3]];
        }
        for (; jj < hi; jj++)
            s0 += data[jj] * x[indices[jj]];
        y[i] = (s0 + s1) + (s2 + s3);
    }
}

/* AVX-512 inner matvec: two 16-lane gather+FMA streams in flight. */
__attribute__((target("avx512f,avx512bw,avx512vl")))
static void matvec_avx512(int64_t n, const int32_t *indptr,
                          const uint16_t *indices, const float *data,
                          const float *x, float *y) {
    const __m512 vz = _mm512_setzero_ps();
    for (int64_t i = 0; i < n; i++) {
        int32_t lo = indptr[i], hi = indptr[i + 1];
        __m512 acc0 = vz, acc1 = vz;
        int32_t jj = lo;
        for (; jj + 32 <= hi; jj += 32) {
            __m512i idx0 = _mm512_cvtepu16_epi32(
                _mm256_loadu_si256((const __m256i *)(indices + jj)));
            __m512i idx1 = _mm512_cvtepu16_epi32(
                _mm256_loadu_si256((const __m256i *)(indices + jj + 16)));
            __m512 xv0 = _mm512_i32gather_ps(idx0, x, 4);
            __m512 xv1 = _mm512_i32gather_ps(idx1, x, 4);
            acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(data + jj), xv0, acc0);
            acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(data + jj + 16), xv1, acc1);
        }
        for (; jj + 16 <= hi; jj += 16) {
            __m512i idx = _mm512_cvtepu16_epi32(
                _mm256_loadu_si256((const __m256i *)(indices + jj)));
            __m512 xv = _mm512_i32gather_ps(idx, x, 4);
            acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(data + jj), xv, acc0);
        }
        int32_t rem = hi - jj;
        if (rem) {
            __mmask16 m = (__mmask16)((1u << rem) - 1u);
            __m512i idx = _mm512_cvtepu16_epi32(
                _mm256_maskz_loadu_epi16(m, (const void *)(indices + jj)));
            __m512 d = _mm512_maskz_loadu_ps(m, data + jj);
            __m512 xv = _mm512_mask_i32gather_ps(vz, m, idx, x, 4);
            acc0 = _mm512_fmadd_ps(d, xv, acc0);
        }
        y[i] = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
    }
}

static int avx512_supported(void) {
    static int cached = -1;
    if (cached < 0) {
        __builtin_cpu_init();
        cached = __builtin_cpu_supports("avx512f")
                 && __builtin_cpu_supports("avx512bw")
                 && __builtin_cpu_supports("avx512vl");
    }
    return cached;
}

int repro_simd_level(void) { return avx512_supported() ? 1 : 0; }

/* The fused entry point: power two chains (full / target-excluded)
   for `steps` steps.  x1/x2 hold the initial distributions on entry
   and the final ones on return; t1/t2 are caller-provided scratch. */
void repro_pair_chain_f32(int64_t n, int64_t steps,
                          const int32_t *aptr, const uint16_t *aidx,
                          const float *adata,
                          const int32_t *bptr, const uint16_t *bidx,
                          const float *bdata,
                          float *x1, float *x2, float *t1, float *t2) {
    void (*matvec)(int64_t, const int32_t *, const uint16_t *,
                   const float *, const float *, float *) =
        avx512_supported() ? matvec_avx512 : matvec_scalar;
    for (int64_t s = 0; s < steps; s++) {
        matvec(n, aptr, aidx, adata, x1, t1);
        matvec(n, bptr, bidx, bdata, x2, t2);
        float *tmp;
        tmp = x1; x1 = t1; t1 = tmp;
        tmp = x2; x2 = t2; t2 = tmp;
    }
    if (steps & 1) {  /* results sit in the caller's scratch: copy back */
        memcpy(t1, x1, (size_t)n * sizeof(float));
        memcpy(t2, x2, (size_t)n * sizeof(float));
    }
}
"""

_lock = threading.Lock()
_library: Optional[ctypes.CDLL] = None
_load_attempted = False
_load_error: Optional[str] = None


def cache_dir() -> str:
    """Directory holding compiled kernels (override: ``REPRO_CKERNEL_CACHE``)."""
    override = os.environ.get(CACHE_ENV_VAR, "").strip()
    if override:
        return override
    return os.path.join(
        tempfile.gettempdir(), f"repro-ckernels-{os.getuid()}"
    )


def _source_digest() -> str:
    return hashlib.sha256(_SOURCE.encode("utf-8")).hexdigest()[:16]


def _compile(target: str) -> None:
    """Compile the kernel to ``target`` (atomic rename, race-safe)."""
    directory = os.path.dirname(target)
    os.makedirs(directory, exist_ok=True)
    source_path = None
    object_path = None
    try:
        fd, source_path = tempfile.mkstemp(suffix=".c", dir=directory)
        with os.fdopen(fd, "w") as handle:
            handle.write(_SOURCE)
        object_path = source_path[:-2] + ".so"
        subprocess.run(
            ["gcc", "-O3", "-shared", "-fPIC", source_path, "-o", object_path],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(object_path, target)  # atomic: concurrent builds race safely
        object_path = None
    finally:
        for path in (source_path, object_path):
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass


def _bind(library: ctypes.CDLL) -> ctypes.CDLL:
    i32p = ctypes.POINTER(ctypes.c_int32)
    u16p = ctypes.POINTER(ctypes.c_uint16)
    f32p = ctypes.POINTER(ctypes.c_float)
    library.repro_simd_level.restype = ctypes.c_int
    library.repro_simd_level.argtypes = []
    library.repro_pair_chain_f32.restype = None
    library.repro_pair_chain_f32.argtypes = [
        ctypes.c_int64, ctypes.c_int64,
        i32p, u16p, f32p,
        i32p, u16p, f32p,
        f32p, f32p, f32p, f32p,
    ]
    return library


def _load() -> Optional[ctypes.CDLL]:
    global _library, _load_attempted, _load_error
    if _load_attempted:
        return _library
    with _lock:
        if _load_attempted:
            return _library
        if os.environ.get(DISABLE_ENV_VAR, "").strip() == "1":
            _load_error = f"disabled via {DISABLE_ENV_VAR}=1"
            _load_attempted = True
            return None
        target = os.path.join(
            cache_dir(), f"screenkernel-{_source_digest()}.so"
        )
        try:
            if not os.path.exists(target):
                _compile(target)
            _library = _bind(ctypes.CDLL(target))
        except Exception as exc:  # gcc missing, unwritable cache, ...
            _load_error = f"{type(exc).__name__}: {exc}"
            _library = None
        _load_attempted = True
        return _library


def available() -> bool:
    """Whether the compiled kernel loaded (compiling it if needed)."""
    return _load() is not None


def load_error() -> Optional[str]:
    """Why the kernel is unavailable, or ``None`` when it loaded."""
    _load()
    return _load_error


def simd_level() -> str:
    """``"avx512"``, ``"scalar"``, or ``"none"`` (no native kernel)."""
    library = _load()
    if library is None:
        return "none"
    return "avx512" if library.repro_simd_level() else "scalar"


def _reset_for_tests() -> None:
    """Forget the loaded library so env overrides take effect (tests)."""
    global _library, _load_attempted, _load_error
    with _lock:
        _library = None
        _load_attempted = False
        _load_error = None


def _as_ptr(array: np.ndarray, ctype) -> "ctypes._Pointer":
    return array.ctypes.data_as(ctypes.POINTER(ctype))


def pair_chain_f32(
    indptr_a: np.ndarray,
    indices_a: np.ndarray,
    data_a: np.ndarray,
    indptr_b: np.ndarray,
    indices_b: np.ndarray,
    data_b: np.ndarray,
    x0: np.ndarray,
    steps: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Power two float32 chains ``steps`` times; returns the final pair.

    The matrices arrive pre-transposed in CSR pieces (``int32`` indptr,
    ``uint16`` indices, ``float32`` data) so ``y = M x`` walks rows of
    the transposed operator -- the same orientation scipy's reference
    chains use.  ``x0`` is the shared float32 initial distribution.
    """
    library = _load()
    if library is None:
        raise RuntimeError(f"native kernel unavailable: {_load_error}")
    n = x0.shape[0]
    if n > MAX_STATES:
        raise ValueError(f"state space too large for uint16 indices: {n}")
    x1 = np.ascontiguousarray(x0, dtype=np.float32).copy()
    x2 = x1.copy()
    t1 = np.empty_like(x1)
    t2 = np.empty_like(x2)
    library.repro_pair_chain_f32(
        ctypes.c_int64(n),
        ctypes.c_int64(int(steps)),
        _as_ptr(indptr_a, ctypes.c_int32),
        _as_ptr(indices_a, ctypes.c_uint16),
        _as_ptr(data_a, ctypes.c_float),
        _as_ptr(indptr_b, ctypes.c_int32),
        _as_ptr(indices_b, ctypes.c_uint16),
        _as_ptr(data_b, ctypes.c_float),
        _as_ptr(x1, ctypes.c_float),
        _as_ptr(x2, ctypes.c_float),
        _as_ptr(t1, ctypes.c_float),
        _as_ptr(t2, ctypes.c_float),
    )
    return x1, x2
