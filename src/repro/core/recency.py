"""Recency (``u``-function) estimators for the compact model.

The compact model (Section IV-B) throws away per-rule timers; to decide
*which* cached rule is evicted on a full-cache install, and *when* cached
rules time out, the paper reconstructs a distribution over the
most-recent-match sequence ``u`` -- ``u(j)`` being the number of steps
since cached rule ``j`` was last matched -- and sums ``P(u)`` over the
events of interest (Eqns. 1-7):

* rule ``j`` is cached            iff ``u(j) <= t_j``              (Eqn. 2)
* rule ``j`` has the shortest remaining time
                                  iff ``t_j - u(j) <= t_j' - u(j')`` (Eqn. 4)
* rule ``j`` times out now        iff ``u(j) = t_j``               (Eqn. 6)

The exact sums range over *injective* ``u`` (at most one flow arrives per
step) and are exponential in the cached-set size; the paper computed them
offline in MATLAB/C++ on a large server.  This module offers three
interchangeable estimators:

:class:`ExactRecencyEstimator`
    Literal enumeration of injective ``u``.  Exact per the paper's
    definition, usable for small timeouts and small cached sets; the
    reference the other two are validated against.

:class:`MonteCarloRecencyEstimator`
    Sequential importance sampling.  ``P(u)`` factorises over cached
    rules in descending priority order (``gamma`` at rule ``j`` depends
    only on higher-priority rules' ``u``), so sampling in that order with
    per-rule normalisation constants as importance weights is unbiased.

:class:`IndependentRecencyEstimator` (default)
    Drops the cross-rule coupling ``u(j') > k`` in Eqn. 1, making each
    ``u(j)`` an independent truncated geometric with success probability
    ``1 - e^{-gamma_j}``; eviction and timeout probabilities then come in
    closed form.  O(n * t) per state -- this is what makes the full
    |Rules| = 12 experiments run on a laptop.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.context import ModelContext


@dataclass(frozen=True)
class RecencyStats:
    """Per-state outputs of a recency estimator.

    ``timeout_hazards[j]``: probability that cached rule ``j`` expires in
    the current step, given it is cached (Eqn. 7 / Eqn. 3).
    ``eviction[j]``: probability that rule ``j`` is the one evicted when
    a full-cache install forces an eviction (Eqn. 5 / Eqn. 3, normalised
    across the cached rules so the transition split is a distribution).
    """

    timeout_hazards: Dict[int, float]
    eviction: Dict[int, float]


class RecencyEstimator(ABC):
    """Interface: state bitmask -> :class:`RecencyStats`."""

    def __init__(self, context: ModelContext) -> None:
        self.context = context
        self._cache: Dict[int, RecencyStats] = {}
        #: ``state -> position`` into the bulk tables (see seed_bulk).
        self._bulk_index: Dict[int, int] = {}
        self._bulk_tables: Optional[
            Sequence[np.ndarray]
        ] = None

    def stats(self, state: int) -> RecencyStats:
        """Memoised per-state statistics."""
        found = self._cache.get(state)
        if found is None:
            position = self._bulk_index.pop(state, None)
            if position is not None:
                found = self._materialize_bulk(position)
            else:
                found = self._compute(state)
            self._cache[state] = found
        return found

    def seed(self, state: int, stats: RecencyStats) -> None:
        """Pre-populate the memo for ``state`` (first writer wins).

        The vectorised kernel tables (repro.core.transition_build)
        compute whole-model statistics in bulk and seed them here so
        later per-state lookups (e.g. ``probe_matrix``) are free.  The
        bulk values are bitwise-equal to :meth:`_compute`'s, so seeding
        never changes observable results.
        """
        self._cache.setdefault(state, stats)

    def seed_bulk(
        self,
        states: Sequence[int],
        rules: np.ndarray,
        hazards: np.ndarray,
        eviction: np.ndarray,
    ) -> None:
        """Register bulk-computed rows, materialised lazily on lookup.

        Row ``p`` of ``rules`` / ``hazards`` / ``eviction`` holds the
        cached rules of ``states[p]`` (ascending) with their timeout
        hazards and eviction split.  Like :meth:`seed` the values must
        be bitwise-equal to :meth:`_compute`'s; unlike it, nothing is
        allocated per state until the state is actually looked up --
        most states of a screened-out model never are.
        """
        self._bulk_tables = (rules, hazards, eviction)
        cache = self._cache
        index = self._bulk_index
        for position, state in enumerate(states):
            if state not in cache:
                index[state] = position

    def _materialize_bulk(self, position: int) -> RecencyStats:
        assert self._bulk_tables is not None
        rules, hazards, eviction = self._bulk_tables
        rule_row = rules[position].tolist()
        return RecencyStats(
            timeout_hazards=dict(zip(rule_row, hazards[position].tolist())),
            eviction=dict(zip(rule_row, eviction[position].tolist())),
        )

    @abstractmethod
    def _compute(self, state: int) -> RecencyStats:
        """Compute statistics for one cached-set bitmask."""


# ----------------------------------------------------------------------
# Independence approximation (closed form)
# ----------------------------------------------------------------------
class IndependentRecencyEstimator(RecencyEstimator):
    """Closed-form estimator under per-rule independence.

    With the coupling dropped, ``u(j)`` for cached rule ``j`` follows a
    geometric distribution with per-step match probability
    ``a_j = 1 - e^{-gamma_j}`` truncated to ``{1..t_j}`` (conditioning on
    the rule being cached).  As ``a_j -> 0`` the truncated geometric
    degenerates to the uniform distribution on ``{1..t_j}`` -- exactly
    the right limit for a rule that is never re-matched after install.

    Ties in remaining time are resolved by the midpoint smoothing
    ``P(r' > r) + P(r' = r)/2`` (equivalent to adding an independent
    uniform jitter and evaluating at its mean), then normalising.
    """

    def _u_pmf(self, gamma: float, timeout: int) -> np.ndarray:
        """Truncated-geometric pmf of ``u`` over ``1..timeout``.

        Index 0 of the returned array corresponds to ``u = 1``.
        """
        a = -math.expm1(-gamma)  # 1 - e^{-gamma}, numerically stable
        if a <= 0.0:
            return np.full(timeout, 1.0 / timeout)
        k = np.arange(timeout, dtype=np.float64)
        pmf = a * np.power(1.0 - a, k)
        total = pmf.sum()
        if total <= 0.0:  # gamma enormous: all mass at u = 1
            pmf = np.zeros(timeout)
            pmf[0] = 1.0
            return pmf
        return pmf / total

    def _compute(self, state: int) -> RecencyStats:
        ctx = self.context
        cached = ctx.cached_rules(state)
        if not cached:
            return RecencyStats(timeout_hazards={}, eviction={})

        pmfs: Dict[int, np.ndarray] = {}
        hazards: Dict[int, float] = {}
        for rule in cached:
            timeout = ctx.timeouts[rule]
            if ctx.policy[rule].hard:
                # Hard timeouts ignore matches: the timer runs from the
                # install.  Conditioned on being cached, the age is
                # uniform on {1..t_j} under steady arrivals, which is
                # exactly the gamma -> 0 limit of the truncated
                # geometric.
                pmf = np.full(timeout, 1.0 / timeout)
            else:
                gamma = ctx.gamma_cached(rule, state)
                pmf = self._u_pmf(gamma, timeout)
            pmfs[rule] = pmf
            hazards[rule] = float(pmf[timeout - 1])  # P(u = t_j)

        eviction = self._eviction_distribution(cached, pmfs)
        return RecencyStats(timeout_hazards=hazards, eviction=eviction)

    def _eviction_distribution(
        self, cached: Sequence[int], pmfs: Dict[int, np.ndarray]
    ) -> Dict[int, float]:
        """P(rule j has the minimal remaining time), midpoint tie-break.

        Vectorised: per rule the remaining-time pmf (support
        ``0..t_j - 1``, zero-padded to the longest timeout), the
        exclusive survival ``P(r' > r)``, and leave-one-out products via
        prefix/suffix cumulative products along the rule axis.
        """
        ctx = self.context
        n_cached = len(cached)
        if n_cached == 1:
            return {cached[0]: 1.0}
        max_support = max(ctx.timeouts[rule] for rule in cached)
        # Remaining time r = t - u, support 0..t-1; pmf_r[r] = pmf_u[t-r].
        pmf = np.zeros((n_cached, max_support))
        for row, rule in enumerate(cached):
            reversed_pmf = pmfs[rule][::-1]
            pmf[row, : reversed_pmf.shape[0]] = reversed_pmf
        # survival[k, r] = P(r_k > r); term = P(>r) + P(=r)/2.
        survival = pmf[:, ::-1].cumsum(axis=1)[:, ::-1] - pmf
        term = survival + 0.5 * pmf
        # Leave-one-out product over rules at each r.
        prefix = np.ones((n_cached + 1, max_support))
        suffix = np.ones((n_cached + 1, max_support))
        for row in range(n_cached):
            prefix[row + 1] = prefix[row] * term[row]
        for row in range(n_cached - 1, -1, -1):
            suffix[row] = suffix[row + 1] * term[row]
        loo = prefix[:n_cached] * suffix[1:]
        raw = (pmf * loo).sum(axis=1)
        total = float(raw.sum())
        if total <= 0.0:
            uniform = 1.0 / n_cached
            return {rule: uniform for rule in cached}
        return {
            rule: float(raw[row]) / total for row, rule in enumerate(cached)
        }


# ----------------------------------------------------------------------
# Shared machinery for the exact and Monte Carlo estimators
# ----------------------------------------------------------------------
def _gamma_at_step(
    ctx: ModelContext,
    rule: int,
    step: int,
    state: int,
    assigned: Dict[int, int],
) -> float:
    """Eqn. 1: effective rate for ``rule`` at ``step`` steps in the past.

    Excludes flows covered by higher-priority *cached* rules whose most
    recent match is older than ``step`` (``u(j') > step``) -- had such a
    flow arrived at that step it would have matched the higher-priority
    rule instead, contradicting ``u(j')``.
    """
    mask = ctx.flow_masks[rule]
    for higher in range(rule):
        if not state & (1 << higher):
            continue
        u_higher = assigned.get(higher)
        if u_higher is not None and u_higher > step:
            mask &= ~ctx.flow_masks[higher]
    return ctx.rate_table.sum(mask)


def _cached_rule_log_term(
    ctx: ModelContext,
    rule: int,
    u_value: int,
    state: int,
    assigned: Dict[int, int],
) -> float:
    """log of one cached rule's factor in ``P(u)``.

    ``gamma(j, u(j)) e^{-gamma(j, u(j))} * prod_{k<u(j)} e^{-gamma(j, k)}``
    Returns ``-inf`` when the factor is zero.
    """
    gamma_at_u = _gamma_at_step(ctx, rule, u_value, state, assigned)
    if gamma_at_u <= 0.0:
        return float("-inf")
    log_term = math.log(gamma_at_u) - gamma_at_u
    for k in range(1, u_value):
        log_term -= _gamma_at_step(ctx, rule, k, state, assigned)
    return log_term


def _uncached_log_factor(
    ctx: ModelContext, state: int, assigned: Dict[int, int], at_capacity: bool
) -> float:
    """log of the no-arrival factor over uncached rules.

    When the cache is full, an uncached rule only needs to have seen no
    relevant arrival for ``u_max(j) = t_j - min_{j'}(t_{j'} - u(j'))``
    steps (an older arrival's rule would have been evicted since).
    """
    cached = ctx.cached_rules(state)
    if at_capacity and cached:
        min_remaining = min(ctx.timeouts[j] - assigned[j] for j in cached)
    else:
        min_remaining = None
    log_factor = 0.0
    for rule in ctx.uncached_rules(state):
        horizon = ctx.timeouts[rule]
        if min_remaining is not None:
            horizon = ctx.timeouts[rule] - min_remaining
        for k in range(1, horizon + 1):
            log_factor -= _gamma_at_step(ctx, rule, k, state, assigned)
    return log_factor


class ExactRecencyEstimator(RecencyEstimator):
    """Literal enumeration of injective ``u`` (reference implementation).

    Complexity is ``O(prod_j t_j)`` per state; construction raises when a
    state's enumeration would exceed ``max_assignments``.
    """

    def __init__(self, context: ModelContext, max_assignments: int = 2_000_000) -> None:
        super().__init__(context)
        self.max_assignments = max_assignments

    def _compute(self, state: int) -> RecencyStats:
        ctx = self.context
        cached = ctx.cached_rules(state)  # priority-descending
        if not cached:
            return RecencyStats(timeout_hazards={}, eviction={})
        total_assignments = 1
        for rule in cached:
            total_assignments *= ctx.timeouts[rule]
        if total_assignments > self.max_assignments:
            raise ValueError(
                f"exact enumeration too large ({total_assignments} assignments); "
                "use MonteCarloRecencyEstimator or IndependentRecencyEstimator"
            )
        at_capacity = len(cached) >= ctx.cache_size

        denom = 0.0
        timeout_num = {rule: 0.0 for rule in cached}
        evict_num = {rule: 0.0 for rule in cached}

        assigned: Dict[int, int] = {}

        def recurse(position: int, log_prob: float) -> None:
            nonlocal denom
            if position == len(cached):
                log_total = log_prob + _uncached_log_factor(
                    ctx, state, assigned, at_capacity
                )
                prob = math.exp(log_total)
                denom_local = prob
                denom += denom_local
                remaining = {
                    rule: ctx.timeouts[rule] - assigned[rule] for rule in cached
                }
                min_rem = min(remaining.values())
                for rule in cached:
                    if assigned[rule] == ctx.timeouts[rule]:
                        timeout_num[rule] += prob
                    if remaining[rule] == min_rem:
                        evict_num[rule] += prob
                return
            rule = cached[position]
            used = set(assigned.values())
            for u_value in range(1, ctx.timeouts[rule] + 1):
                if u_value in used:
                    continue  # injectivity: one arrival per step
                log_term = _cached_rule_log_term(
                    ctx, rule, u_value, state, assigned
                )
                if log_term == float("-inf"):
                    continue
                assigned[rule] = u_value
                recurse(position + 1, log_prob + log_term)
                del assigned[rule]

        recurse(0, 0.0)

        if denom <= 0.0:
            # No feasible recency sequence (e.g. all relevant rates zero
            # and injectivity unsatisfiable); fall back to uniform.
            uniform = 1.0 / len(cached)
            return RecencyStats(
                timeout_hazards={rule: 1.0 / ctx.timeouts[rule] for rule in cached},
                eviction={rule: uniform for rule in cached},
            )

        hazards = {rule: timeout_num[rule] / denom for rule in cached}
        evict_total = sum(evict_num.values())
        if evict_total <= 0.0:
            uniform = 1.0 / len(cached)
            eviction = {rule: uniform for rule in cached}
        else:
            eviction = {
                rule: evict_num[rule] / evict_total for rule in cached
            }
        return RecencyStats(timeout_hazards=hazards, eviction=eviction)


class MonteCarloRecencyEstimator(RecencyEstimator):
    """Sequential importance sampling over injective ``u``.

    Samples ``u(j)`` rule by rule in descending priority order from the
    normalised per-rule factor (which depends only on already-sampled
    higher-priority values), then weights each complete sample by the
    product of the per-rule normalisation constants times the uncached
    no-arrival factor.  Unbiased for the paper's sums; variance shrinks
    as ``n_samples`` grows.
    """

    def __init__(
        self,
        context: ModelContext,
        n_samples: int = 400,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(context)
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        self.n_samples = n_samples
        self._rng = np.random.default_rng(seed)

    def _compute(self, state: int) -> RecencyStats:
        ctx = self.context
        cached = ctx.cached_rules(state)
        if not cached:
            return RecencyStats(timeout_hazards={}, eviction={})
        at_capacity = len(cached) >= ctx.cache_size

        denom = 0.0
        timeout_num = {rule: 0.0 for rule in cached}
        evict_num = {rule: 0.0 for rule in cached}

        for _ in range(self.n_samples):
            assigned: Dict[int, int] = {}
            log_weight = 0.0
            feasible = True
            for rule in cached:
                used = set(assigned.values())
                values: List[int] = []
                probs: List[float] = []
                for u_value in range(1, ctx.timeouts[rule] + 1):
                    if u_value in used:
                        continue
                    log_term = _cached_rule_log_term(
                        ctx, rule, u_value, state, assigned
                    )
                    if log_term == float("-inf"):
                        continue
                    values.append(u_value)
                    probs.append(math.exp(log_term))
                normaliser = sum(probs)
                if normaliser <= 0.0 or not values:
                    feasible = False
                    break
                choice = self._rng.choice(
                    len(values), p=np.asarray(probs) / normaliser
                )
                assigned[rule] = values[int(choice)]
                log_weight += math.log(normaliser)
            if not feasible:
                continue
            log_weight += _uncached_log_factor(ctx, state, assigned, at_capacity)
            weight = math.exp(log_weight)
            denom += weight
            remaining = {
                rule: ctx.timeouts[rule] - assigned[rule] for rule in cached
            }
            min_rem = min(remaining.values())
            for rule in cached:
                if assigned[rule] == ctx.timeouts[rule]:
                    timeout_num[rule] += weight
                if remaining[rule] == min_rem:
                    evict_num[rule] += weight

        if denom <= 0.0:
            uniform = 1.0 / len(cached)
            return RecencyStats(
                timeout_hazards={rule: 1.0 / ctx.timeouts[rule] for rule in cached},
                eviction={rule: uniform for rule in cached},
            )
        hazards = {rule: timeout_num[rule] / denom for rule in cached}
        evict_total = sum(evict_num.values())
        eviction = (
            {rule: evict_num[rule] / evict_total for rule in cached}
            if evict_total > 0.0
            else {rule: 1.0 / len(cached) for rule in cached}
        )
        return RecencyStats(timeout_hazards=hazards, eviction=eviction)


def make_estimator(
    name: str,
    context: ModelContext,
    **kwargs: object,
) -> RecencyEstimator:
    """Factory: ``"independent"``, ``"exact"``, or ``"montecarlo"``."""
    name = name.lower()
    if name in ("independent", "indep"):
        return IndependentRecencyEstimator(context, **kwargs)
    if name == "exact":
        return ExactRecencyEstimator(context, **kwargs)
    if name in ("montecarlo", "mc", "monte-carlo"):
        return MonteCarloRecencyEstimator(context, **kwargs)
    raise ValueError(f"unknown recency estimator: {name!r}")
