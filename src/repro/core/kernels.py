"""Kernel selection for the probability machinery.

The reproduction keeps two implementations of every probability kernel:

* ``dense`` -- the reference path.  Transition matrices are built by the
  original per-state Python loop and returned as dense, read-only
  ``np.ndarray``.  Slow, simple, and the ground truth the optimized
  paths are tested against (tests/core/test_golden_kernels.py and
  tests/core/test_sparse_dense_diff.py).
* ``sparse`` -- the production path.  Transition entries are built by
  the vectorized builder (repro.core.transition_build), matrices stay
  ``scipy.sparse.csr_matrix``, and repeated powering goes through the
  cached-transpose operator and incremental power chains in
  repro.core.chain.
* ``auto`` -- ``sparse``, plus the compiled (numba) inner matvec kernel
  when the optional ``fast`` extra is importable.  Falls back to the
  pure-numpy sparse path silently when numba is absent, so ``auto`` is
  always safe to request.

The resolved kernel is plumbed into experiment provenance
(ResultDocument) so persisted results record which path produced them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core._fastmath import HAVE_NUMBA

#: Kernel names accepted by models, params, and the CLI.
KERNEL_CHOICES = ("dense", "sparse", "auto")

#: Environment override for the default kernel (same choices).
KERNEL_ENV_VAR = "REPRO_KERNEL"


@dataclass(frozen=True)
class ResolvedKernel:
    """A concrete kernel choice after ``auto`` resolution."""

    #: What the caller asked for ("dense", "sparse", or "auto").
    requested: str
    #: The matrix/build implementation actually used.
    name: str
    #: Whether the compiled (numba) matvec kernel is active.
    compiled: bool

    def describe(self) -> str:
        """Human/provenance label, e.g. ``"sparse+numba"``."""
        return f"{self.name}+numba" if self.compiled else self.name


def resolve_kernel(name: Optional[str] = None) -> ResolvedKernel:
    """Resolve a kernel request (or the ambient default) to an impl.

    ``None`` consults :data:`KERNEL_ENV_VAR` and falls back to
    ``"auto"``.  ``auto`` means the sparse path, compiled when numba is
    importable.
    """
    requested = name if name is not None else _default_kernel_name()
    if requested not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {requested!r}; choose from {KERNEL_CHOICES}"
        )
    if requested == "auto":
        return ResolvedKernel("auto", "sparse", HAVE_NUMBA)
    return ResolvedKernel(requested, requested, False)


def _default_kernel_name() -> str:
    value = os.environ.get(KERNEL_ENV_VAR, "").strip()
    return value if value else "auto"


@contextmanager
def kernel_override(name: str) -> Iterator[None]:
    """Temporarily force the ambient default kernel (tests/benchmarks)."""
    resolve_kernel(name)  # validate eagerly
    previous = os.environ.get(KERNEL_ENV_VAR)
    os.environ[KERNEL_ENV_VAR] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV_VAR, None)
        else:
            os.environ[KERNEL_ENV_VAR] = previous
