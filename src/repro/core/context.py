"""Shared precomputed context for the analytic models.

:class:`ModelContext` binds a :class:`~repro.flows.policy.Policy` to a
:class:`~repro.flows.universe.FlowUniverse` and step duration ``Delta``,
precomputing everything the Markov models and recency estimators query in
inner loops: per-rule flow bitmasks, per-flow covering rule lists, the
subset rate table for ``gamma`` sums, and switch-semantics lookups.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.masks import RateTable, mask_from_indices
from repro.flows.policy import Policy
from repro.flows.universe import FlowUniverse


class ModelContext:
    """Precomputed views of a policy + universe + step duration.

    Rule indices are policy ranks (0 = highest priority); flow indices are
    universe positions.  ``state`` arguments are bitmasks over rule
    indices describing the cached set.
    """

    def __init__(
        self,
        policy: Policy,
        universe: FlowUniverse,
        delta: float,
        cache_size: int,
    ) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.policy = policy
        self.universe = universe
        self.delta = float(delta)
        self.cache_size = int(cache_size)
        self.n_rules = len(policy)
        self.n_flows = len(universe)

        #: Per-step expected arrivals ``lambda_f * Delta`` per flow.
        self.step_rates: Tuple[float, ...] = tuple(universe.step_rates(delta))
        #: Subset-sum table over step rates (``gamma`` computations).
        self.rate_table = RateTable(self.step_rates)
        #: Per-rule covered-flow bitmask.
        self.flow_masks: Tuple[int, ...] = tuple(
            mask_from_indices(rule.flows) for rule in policy
        )
        #: Per-rule timeout in steps (``t_j``).
        self.timeouts: Tuple[int, ...] = tuple(
            rule.timeout_steps for rule in policy
        )
        #: Per-flow covering rules, highest priority (lowest index) first.
        self.covering: Tuple[Tuple[int, ...], ...] = tuple(
            policy.covering(f) for f in range(self.n_flows)
        )
        #: Per-flow rule installed on a miss (or ``None`` if uncovered).
        self.install_rule: Tuple[Optional[int], ...] = tuple(
            covering[0] if covering else None for covering in self.covering
        )

    # ------------------------------------------------------------------
    # Switch semantics over bitmask states
    # ------------------------------------------------------------------
    def match_in_cache(self, flow: int, state: int) -> Optional[int]:
        """Highest-priority cached rule covering ``flow`` (switch lookup)."""
        for rule in self.covering[flow]:
            if state & (1 << rule):
                return rule
        return None

    def state_covers(self, flow: int, state: int) -> bool:
        """Whether any cached rule covers ``flow`` (the probe hit bit)."""
        return self.match_in_cache(flow, state) is not None

    # ------------------------------------------------------------------
    # Effective rates (Section IV-A1)
    # ------------------------------------------------------------------
    def gamma_cached(self, rule: int, state: int) -> float:
        """Effective per-step rate ``gamma`` for a *cached* rule.

        Relevant flows are those covered by ``rule`` but by no cached rule
        of higher priority (the paper's ``flowIds_l(j)`` for cached
        rules).
        """
        mask = self.flow_masks[rule]
        for higher in range(rule):
            if state & (1 << higher):
                mask &= ~self.flow_masks[higher]
        return self.rate_table.sum(mask)

    def gamma_uncached(self, rule: int, state: int) -> float:
        """Effective rate for an *uncached* rule.

        Relevant flows are those covered by ``rule`` but not by any cached
        rule (they would hit the cache) nor by a higher-priority uncached
        rule (the controller would install that rule instead).
        """
        mask = self.flow_masks[rule]
        for other in range(self.n_rules):
            if other == rule:
                continue
            cached = bool(state & (1 << other))
            if cached or other < rule:
                mask &= ~self.flow_masks[other]
        return self.rate_table.sum(mask)

    def cached_rules(self, state: int) -> List[int]:
        """Cached rule indices, highest priority first."""
        return [j for j in range(self.n_rules) if state & (1 << j)]

    def uncached_rules(self, state: int) -> List[int]:
        """Uncached rule indices, highest priority first."""
        return [j for j in range(self.n_rules) if not state & (1 << j)]

    def total_step_rate(self) -> float:
        """Aggregate per-step rate ``Lambda * Delta``."""
        return self.rate_table.total
