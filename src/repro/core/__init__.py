"""The paper's contribution: switch Markov models and probe selection.

* :mod:`repro.core.basic_model` -- the Section IV-A full-fidelity chain
  over complete cache contents (rule, remaining-time) tuples.
* :mod:`repro.core.compact_model` -- the Section IV-B compact chain over
  cached-rule *sets*, with eviction/timeout probabilities estimated from
  the recency (``u``) distribution.
* :mod:`repro.core.recency` -- exact, Monte Carlo, and independence-based
  estimators of the ``u``-function sums (Eqns. 1-7).
* :mod:`repro.core.inference` -- ``P(Q_f)``, ``P(X̂ ∧ Q_f)``, posteriors.
* :mod:`repro.core.gain` -- entropies and information gain (Section V).
* :mod:`repro.core.selection` -- optimal single- and multi-probe choice.
* :mod:`repro.core.decision_tree` -- the non-adaptive m-probe classifier.
* :mod:`repro.core.attacker` -- naive / model / constrained / random
  attacker policies used in the evaluation.
"""

from repro.core.basic_model import BasicModel, BasicState, CacheEntry
from repro.core.compact_model import CompactModel
from repro.core.recency import (
    ExactRecencyEstimator,
    IndependentRecencyEstimator,
    MonteCarloRecencyEstimator,
    RecencyEstimator,
    make_estimator,
)
from repro.core.inference import ReconInference
from repro.core.gain import binary_entropy, entropy, information_gain
from repro.core.selection import ProbeChoice, best_probe_set, best_single_probe
from repro.core.decision_tree import DecisionTree
from repro.core.attacker import (
    Attacker,
    ConstrainedModelAttacker,
    ModelAttacker,
    NaiveAttacker,
    RandomAttacker,
)
from repro.core.adaptive import AdaptiveModelAttacker, AdaptiveSession

__all__ = [
    "BasicModel",
    "BasicState",
    "CacheEntry",
    "CompactModel",
    "RecencyEstimator",
    "ExactRecencyEstimator",
    "IndependentRecencyEstimator",
    "MonteCarloRecencyEstimator",
    "make_estimator",
    "ReconInference",
    "entropy",
    "binary_entropy",
    "information_gain",
    "ProbeChoice",
    "best_single_probe",
    "best_probe_set",
    "DecisionTree",
    "Attacker",
    "NaiveAttacker",
    "ModelAttacker",
    "ConstrainedModelAttacker",
    "RandomAttacker",
    "AdaptiveModelAttacker",
    "AdaptiveSession",
]
