"""Vectorised construction of compact-model transition entries.

This is the sparse kernel's builder: it produces exactly the
``(rows, cols, probs, tags)`` arrays of
:meth:`repro.core.compact_model.CompactModel._build_entries` -- same
entry order, same floating-point values bit-for-bit -- by replacing the
per-state Python loops with batched numpy passes:

* per-rule hazard tables from the truncated-geometric recency pmf
  (Eqns. 6-7), computed for all states at once via the subset rate
  table;
* bulk eviction distributions (Eqns. 3-5) for the at-capacity states,
  grouped by per-state support so the padding matches the reference's
  per-state arrays exactly;
* arrival/no-arrival event vectors ordered like the reference emission
  loop, then a batched at-most-one-expiry expansion whose multiply and
  add sequences mirror the reference's ascending-rule accumulation.

Bitwise equality is load-bearing: it means switching the default kernel
cannot shift any persisted experiment number, and the golden suite pins
both kernels to the same literals.  The differential suite
(tests/core/test_sparse_dense_diff.py) checks the equivalence on random
models.

Only the default configuration is supported -- the closed-form
independent estimator, at-most-one expiry, and a rule count small
enough for the mask lookup table; :func:`supports` reports whether a
model qualifies, and the model falls back to the reference builder
otherwise (exact/Monte-Carlo estimators, ``multi_expiry=True``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.chain import per_flow_step_probabilities
from repro.core.recency import IndependentRecencyEstimator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compact_model import CompactModel

#: Rule-count ceiling for the dense ``mask -> state index`` lookup
#: (2^20 int64 entries = 8 MiB; the paper uses 12 rules).
MAX_LOOKUP_RULES = 20

EntryArrays = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

#: Normalised recency pmf rows as ``(unique_rows, inverse)``: state
#: ``i``'s row is ``unique_rows[inverse[i]]``.
PmfTable = Tuple[np.ndarray, np.ndarray]


def supports(model: "CompactModel") -> bool:
    """Whether the vectorised builder reproduces this model's semantics."""
    return (
        not model.multi_expiry
        and type(model.estimator) is IndependentRecencyEstimator
        and model.context.n_rules <= MAX_LOOKUP_RULES
    )


def build_entries(model: "CompactModel") -> EntryArrays:
    """All transition entries as (rows, cols, probs, flow tags)."""
    if not supports(model):  # pragma: no cover - guarded by the caller
        raise ValueError("model configuration requires the reference builder")
    ctx = model.context
    n_rules = ctx.n_rules
    n_states = model.n_states
    states = np.asarray(model.states, dtype=np.int64)
    popcounts = model.state_popcounts()
    membership = model.state_membership_matrix().astype(bool)  # (R, n)
    bits = np.int64(1) << np.arange(n_rules, dtype=np.int64)
    lookup = np.full(1 << n_rules, -1, dtype=np.int64)
    lookup[states] = np.arange(n_states, dtype=np.int64)

    hazard, pmfs = _hazard_tables(model, membership)
    cached_t = membership.T  # (n, R)
    certain = cached_t & (hazard >= 1.0)
    candidate = cached_t & (hazard > 0.0) & (hazard < 1.0)
    certain_mask = (certain * bits).sum(axis=1)
    candidate_mask = (candidate * bits).sum(axis=1)

    full_idx = np.nonzero(popcounts == ctx.cache_size)[0]
    evict_rules, evict_probs = _eviction_tables(
        model, membership, full_idx, pmfs
    )
    _seed_estimator_cache(model, hazard, full_idx, evict_rules, evict_probs)

    events = _arrival_events(model, membership, full_idx, evict_rules,
                             evict_probs)
    return _expand_expiries(
        model, events, hazard, certain_mask, candidate_mask, bits, lookup
    )


# ----------------------------------------------------------------------
# Recency tables (Eqns. 1, 6-7): hazards and normalised u-pmfs
# ----------------------------------------------------------------------
def _hazard_tables(
    model: "CompactModel", membership: np.ndarray
) -> Tuple[np.ndarray, List[Optional[PmfTable]]]:
    """Per-(state, rule) hazards and per-rule normalised pmf tables.

    Returns ``(hazard, pmfs)``: ``hazard[i, j]`` is rule ``j``'s
    per-step timeout hazard in state ``i`` (0 where not cached), and
    ``pmfs[j]`` a ``(unique_rows, inverse)`` pair giving each state's
    normalised recency pmf row as ``unique_rows[inverse[state]]``
    (meaningful where cached).  The pmf only depends on the state
    through the rule's effective gamma, which takes a handful of
    distinct values, so each distinct row is computed once.  Every
    arithmetic step mirrors ``IndependentRecencyEstimator._u_pmf``
    element-for-element.
    """
    ctx = model.context
    n_rules, n_states = membership.shape
    flow_masks = np.asarray(ctx.flow_masks, dtype=np.int64)
    hazard = np.zeros((n_states, n_rules))
    pmfs: List[Optional[PmfTable]] = [None] * n_rules
    for rule in range(n_rules):
        cached = membership[rule]
        timeout = ctx.timeouts[rule]
        if ctx.policy[rule].hard:
            pmf_n = np.full((1, timeout), 1.0 / timeout)
            hazard[cached, rule] = 1.0 / timeout
            pmfs[rule] = (pmf_n, np.zeros(n_states, dtype=np.int64))
            continue
        # gamma_cached: rule flows minus higher-priority cached coverage.
        effective = np.where(cached, flow_masks[rule], np.int64(0))
        for higher in range(rule):
            drop = cached & membership[higher]
            effective[drop] &= ~flow_masks[higher]
        gamma = ctx.rate_table.sums(effective)
        # math.expm1 and np.expm1 disagree in the last ulp; the
        # reference uses the scalar, so evaluate it once per distinct
        # gamma to stay bit-identical.
        unique, inverse = np.unique(gamma, return_inverse=True)
        a = np.array([-math.expm1(-g) for g in unique])
        k = np.arange(timeout, dtype=np.float64)
        pmf = a[:, None] * np.power(1.0 - a[:, None], k[None, :])
        total = pmf.sum(axis=1)
        geometric = a > 0.0
        degenerate = geometric & ~(total > 0.0)
        normal = geometric & (total > 0.0)
        pmf_n = np.empty_like(pmf)
        pmf_n[~geometric] = 1.0 / timeout
        pmf_n[degenerate] = 0.0
        pmf_n[degenerate, 0] = 1.0
        pmf_n[normal] = pmf[normal] / total[normal, None]
        hazard[cached, rule] = pmf_n[inverse[cached], timeout - 1]
        pmfs[rule] = (pmf_n, inverse)
    return hazard, pmfs


# ----------------------------------------------------------------------
# Bulk eviction distributions (Eqns. 3-5) for at-capacity states
# ----------------------------------------------------------------------
def _eviction_tables(
    model: "CompactModel",
    membership: np.ndarray,
    full_idx: np.ndarray,
    pmfs: List[Optional[PmfTable]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Eviction splits for every at-capacity state.

    Returns ``(rules, probs)``, both ``(n_full, cache_size)``: the
    cached rules of each full state in ascending order and their
    eviction probabilities.  The prefix/suffix leave-one-out products
    mirror ``IndependentRecencyEstimator._eviction_distribution``;
    states are grouped by their maximum cached timeout so the support
    padding (and hence every partial sum) matches the reference's
    per-state arrays bit-for-bit.
    """
    ctx = model.context
    capacity = ctx.cache_size
    n_full = full_idx.size
    if n_full == 0:
        empty = np.empty((0, capacity), dtype=np.int64)
        return empty, np.empty((0, capacity))
    state_rows, rule_cols = np.nonzero(membership[:, full_idx].T)
    del state_rows  # row-major nonzero: rules ascending within each state
    rules = rule_cols.reshape(n_full, capacity)
    if capacity == 1:
        return rules, np.ones((n_full, 1))
    timeouts = np.asarray(ctx.timeouts, dtype=np.int64)
    max_support = timeouts[rules].max(axis=1)
    probs = np.empty((n_full, capacity))
    for support in np.unique(max_support):
        group = np.nonzero(max_support == support)[0]
        group_rules = rules[group]
        pmf = np.zeros((group.size, capacity, int(support)))
        # One stable argsort groups the (state, slot) cells by rule;
        # within a rule the positions stay ascending, matching the
        # row-major nonzero scan it replaces.
        flat = group_rules.ravel()
        grouping = np.argsort(flat, kind="stable")
        bounds = np.searchsorted(
            flat[grouping], np.arange(ctx.n_rules + 1)
        )
        full_group = full_idx[group]
        for rule in range(ctx.n_rules):
            cells = grouping[bounds[rule]:bounds[rule + 1]]
            if cells.size == 0:
                continue
            timeout = int(timeouts[rule])
            in_state = cells // capacity
            slot = cells - in_state * capacity
            table = pmfs[rule]
            assert table is not None
            unique_rows, inverse = table
            source = unique_rows[inverse[full_group[in_state]]]
            pmf[in_state, slot, :timeout] = source[:, ::-1]
        survival = pmf[:, :, ::-1].cumsum(axis=2)[:, :, ::-1] - pmf
        term = survival + 0.5 * pmf
        # Only the boundary rows need the identity; the loops overwrite
        # every other row before it is read.
        prefix = np.empty((group.size, capacity + 1, int(support)))
        prefix[:, 0] = 1.0
        suffix = np.empty_like(prefix)
        suffix[:, capacity] = 1.0
        for row in range(capacity):
            prefix[:, row + 1] = prefix[:, row] * term[:, row]
        for row in range(capacity - 1, -1, -1):
            suffix[:, row] = suffix[:, row + 1] * term[:, row]
        leave_one_out = prefix[:, :capacity] * suffix[:, 1:]
        raw = (pmf * leave_one_out).sum(axis=2)
        total = raw.sum(axis=1)
        group_probs = np.empty((group.size, capacity))
        positive = total > 0.0
        group_probs[positive] = raw[positive] / total[positive, None]
        group_probs[~positive] = 1.0 / capacity
        probs[group] = group_probs
    return rules, probs


def _seed_estimator_cache(
    model: "CompactModel",
    hazard: np.ndarray,
    full_idx: np.ndarray,
    evict_rules: np.ndarray,
    evict_probs: np.ndarray,
) -> None:
    """Pre-populate the estimator memo for at-capacity states.

    ``probe_matrix`` queries the eviction split of every full state; the
    bulk tables make those lookups free instead of re-running the
    per-state reference computation.  Values are bitwise-equal to the
    reference, so seeding is observationally transparent.
    """
    states = model.states
    hazard_rows = hazard[full_idx[:, None], evict_rules]
    model.estimator.seed_bulk(
        [states[int(state_idx)] for state_idx in full_idx],
        evict_rules,
        hazard_rows,
        evict_probs,
    )


# ----------------------------------------------------------------------
# Arrival/no-arrival events in reference emission order
# ----------------------------------------------------------------------
class _Events:
    """Columnar accumulator for pre-expiry transition events."""

    def __init__(self) -> None:
        self.rows: List[np.ndarray] = []
        self.counts: List[int] = []
        self.seq: List[int] = []
        self.interim: List[np.ndarray] = []
        self.protected: List[object] = []
        self.base: List[object] = []
        self.tag: List[int] = []
        self.expiry: List[bool] = []

    def add(
        self,
        rows: np.ndarray,
        seq: int,
        interim: np.ndarray,
        protected: object,
        base: object,
        tag: int,
        expiry: bool,
    ) -> None:
        count = rows.size
        if count == 0:
            return
        self.rows.append(rows.astype(np.int64, copy=False))
        self.counts.append(count)
        self.seq.append(int(seq))
        self.interim.append(interim.astype(np.int64, copy=False))
        self.protected.append(protected)
        self.base.append(base)
        self.tag.append(int(tag))
        self.expiry.append(bool(expiry))

    def sorted_columns(
        self,
    ) -> Tuple[np.ndarray, ...]:
        # seq/tag/expiry are constant within a chunk, and protected/base
        # are often scalars; expand them here via repeat/slice-assign
        # instead of allocating a filled array per add().
        counts = np.asarray(self.counts, dtype=np.int64)
        total = int(counts.sum())
        rows = np.concatenate(self.rows)
        seq = np.repeat(np.asarray(self.seq, dtype=np.int64), counts)
        order = np.lexsort((seq, rows))
        protected = np.empty(total, dtype=np.int64)
        base = np.empty(total)
        position = 0
        for index, count in enumerate(self.counts):
            stop = position + count
            protected[position:stop] = self.protected[index]
            base[position:stop] = self.base[index]
            position = stop
        return (
            rows[order],
            np.concatenate(self.interim)[order],
            protected[order],
            base[order],
            np.repeat(np.asarray(self.tag, dtype=np.int64), counts)[order],
            np.repeat(np.asarray(self.expiry, dtype=bool), counts)[order],
        )


def _arrival_events(
    model: "CompactModel",
    membership: np.ndarray,
    full_idx: np.ndarray,
    evict_rules: np.ndarray,
    evict_probs: np.ndarray,
) -> _Events:
    """One event per (state, arrival outcome), reference emission order.

    ``seq`` reproduces the reference loop's within-row order: the
    no-arrival event first, then flows ascending, eviction victims in
    cached order.
    """
    from repro.core.compact_model import NO_FLOW

    ctx = model.context
    n_states = model.n_states
    states = np.asarray(model.states, dtype=np.int64)
    popcounts = model.state_popcounts()
    capacity = ctx.cache_size
    p_flows, p_none = per_flow_step_probabilities(np.asarray(ctx.step_rates))
    all_rows = np.arange(n_states, dtype=np.int64)
    full_position = np.full(n_states, -1, dtype=np.int64)
    full_position[full_idx] = np.arange(full_idx.size, dtype=np.int64)

    events = _Events()
    events.add(
        rows=all_rows, seq=0, interim=states, protected=np.int64(-1),
        base=np.float64(p_none), tag=NO_FLOW, expiry=True,
    )
    expire_arrivals = model.expire_on_arrival
    for flow in range(ctx.n_flows):
        p_flow = float(p_flows[flow])
        if p_flow <= 0.0:
            continue
        seq_base = 1 + flow * capacity
        covering = ctx.covering[flow]
        if not covering:
            events.add(
                rows=all_rows, seq=seq_base, interim=states,
                protected=np.int64(-1), base=np.float64(p_flow), tag=flow,
                expiry=expire_arrivals,
            )
            continue
        matched = np.full(n_states, -1, dtype=np.int64)
        for rule in covering:
            matched = np.where(
                (matched < 0) & membership[rule], np.int64(rule), matched
            )
        hit = matched >= 0
        hit_idx = np.nonzero(hit)[0]
        events.add(
            rows=hit_idx, seq=seq_base, interim=states[hit_idx],
            protected=matched[hit_idx], base=np.float64(p_flow), tag=flow,
            expiry=expire_arrivals,
        )
        install = covering[0]
        install_bit = np.int64(1) << np.int64(install)
        miss = ~hit
        room_idx = np.nonzero(miss & (popcounts < capacity))[0]
        events.add(
            rows=room_idx, seq=seq_base,
            interim=states[room_idx] | install_bit,
            protected=np.int64(install), base=np.float64(p_flow), tag=flow,
            expiry=expire_arrivals,
        )
        evicting_idx = np.nonzero(miss & (popcounts == capacity))[0]
        if evicting_idx.size:
            position = full_position[evicting_idx]
            for slot in range(capacity):
                victims = evict_rules[position, slot]
                weights = evict_probs[position, slot]
                keep = weights > 0.0
                kept_idx = evicting_idx[keep]
                victim_bits = np.int64(1) << victims[keep]
                events.add(
                    rows=kept_idx, seq=seq_base + slot,
                    interim=(states[kept_idx] & ~victim_bits) | install_bit,
                    protected=np.int64(install),
                    base=p_flow * weights[keep], tag=flow,
                    expiry=expire_arrivals,
                )
    return events


# ----------------------------------------------------------------------
# Batched at-most-one-expiry expansion
# ----------------------------------------------------------------------
def _expand_expiries(
    model: "CompactModel",
    events: _Events,
    hazard: np.ndarray,
    certain_mask: np.ndarray,
    candidate_mask: np.ndarray,
    bits: np.ndarray,
    lookup: np.ndarray,
) -> EntryArrays:
    """Expand events into entries, mirroring ``_expiry_branches_from``.

    Entry layout per event: the keep-all branch, then one expiry branch
    per rule ascending (masked to the live set) -- the reference
    emission order.  The keep-all product, the leave-one-out weights,
    and the normaliser all accumulate over rules in ascending order with
    exact-identity factors for non-live rules, so every float matches
    the reference's sequential loops bit-for-bit.
    """
    n_rules = model.context.n_rules
    rows, interim, protected, base, tag, expiry = events.sorted_columns()
    count = rows.size
    protected_bit = np.where(
        protected >= 0, bits[np.maximum(protected, 0)], np.int64(0)
    )
    cleared = interim & ~(certain_mask[rows] & ~protected_bit)
    interim = np.where(expiry, cleared, interim)
    live = np.where(
        expiry, interim & candidate_mask[rows] & ~protected_bit, np.int64(0)
    )
    live_bits = (live[:, None] & bits[None, :]) != 0  # (E, R)

    # The recurrences below depend only on (source row, live mask):
    # events sharing that pair run identical scalar sequences.  Collapse
    # to unique pairs (the hazard row *is* the source row, so the key is
    # two already-computed integers), run the loops once per pair, and
    # gather the bit-identical results back per event.
    key = (rows << np.int64(n_rules)) | live
    _, first_idx, inverse = np.unique(
        key, return_index=True, return_inverse=True
    )
    live_u = live_bits[first_idx]  # (U, R)
    hazards_u = hazard[rows[first_idx]]  # (U, R)

    # Sequential leave-one-out products in ascending rule order, exactly
    # as the reference accumulates them.  Non-live rules contribute the
    # exact identity factor 1.0, so restricting every multiply to the
    # rows where the rule *is* live performs the identical float
    # operations while skipping the (majority) no-op rows.
    keep_u = np.ones(first_idx.size)
    weights_u = np.where(live_u, hazards_u, 0.0)
    for rule in range(n_rules):
        idx = np.nonzero(live_u[:, rule])[0]
        if idx.size == 0:
            continue
        factor = 1.0 - hazards_u[idx, rule]
        keep_u[idx] *= factor
        if rule > 0:
            weights_u[idx, :rule] *= factor[:, None]
        if rule + 1 < n_rules:
            weights_u[idx, rule + 1:] *= factor[:, None]
    total_u = keep_u.copy()
    for rule in range(n_rules):
        idx = np.nonzero(live_u[:, rule])[0]
        if idx.size:
            total_u[idx] += weights_u[idx, rule]
    # Normalised branch fractions, one division per unique pair; events
    # gather the already-divided values (identical quotients).
    keep_frac_u = keep_u / total_u
    weight_frac_u = weights_u / total_u[:, None]

    # Emit the keep-all branch plus one branch per live rule (ascending),
    # assembled directly in the reference's per-event order instead of
    # materialising the dense (events x rules+1) slot arrays.
    ev_idx, rule_idx = np.nonzero(live_bits)  # event-major, rules ascending
    pairs = ev_idx.size
    counts = np.bincount(ev_idx, minlength=count)
    offsets = np.cumsum(1 + counts) - (1 + counts)
    pair_starts = np.cumsum(counts) - counts
    within = np.arange(pairs, dtype=np.int64) - pair_starts[ev_idx]
    keep_pos = offsets
    pair_pos = offsets[ev_idx] + 1 + within

    size = count + pairs
    out_rows = np.empty(size, dtype=np.int64)
    out_cols = np.empty(size, dtype=np.int64)
    out_probs = np.empty(size)
    out_tags = np.empty(size, dtype=np.int64)
    out_rows[keep_pos] = rows
    out_cols[keep_pos] = lookup[interim]
    out_probs[keep_pos] = base * keep_frac_u[inverse]
    out_tags[keep_pos] = tag
    out_rows[pair_pos] = rows[ev_idx]
    out_cols[pair_pos] = lookup[interim[ev_idx] & ~bits[rule_idx]]
    out_probs[pair_pos] = base[ev_idx] * (
        weight_frac_u[inverse[ev_idx], rule_idx]
    )
    out_tags[pair_pos] = tag[ev_idx]

    emit = out_probs > 0.0
    return (
        out_rows[emit],
        out_cols[emit],
        out_probs[emit],
        out_tags[emit],
    )
