"""Optimal probe selection (Section V).

Single-probe selection maximises ``IG(X̂ | Q_f)`` over the candidate
flows the attacker can launch; multi-probe selection maximises
``IG(X̂ | Q_{f_1}, ..., Q_{f_m})`` over candidate subsets, either
exhaustively or greedily.  Because each probe perturbs the cache, the
joint outcome distribution depends on probe *order*; following the
paper's non-adaptive formulation we evaluate each chosen set in a fixed
canonical order (ascending flow index).

Two implementations coexist:

* the **engine path** (default) -- the batched, cached, optionally
  parallel :class:`~repro.core.engine.ProbeScoringEngine`; pass
  ``n_jobs > 1`` to fan candidate scoring out over processes;
* the **serial reference** -- ``best_single_probe_serial`` /
  ``best_probe_set_serial``, the original dict-walk loops, kept as the
  ground truth the differential test suite checks the engine against.

Both return identical probes; gains agree to well below 1e-12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional, Sequence, Tuple

from repro.core.engine import ProbeScoringEngine, ScoringStats
from repro.core.inference import ReconInference
from repro.deprecation import keyword_only


@dataclass(frozen=True)
class ProbeChoice:
    """A selected probe set with its predicted information gain."""

    probes: Tuple[int, ...]
    gain: float
    #: Engine instrumentation for the selection run (``None`` on the
    #: serial reference path).  Excluded from equality so choices
    #: compare by what was chosen, not how fast.
    stats: Optional[ScoringStats] = field(
        default=None, compare=False, repr=False
    )


@keyword_only
def best_single_probe(
    inference: ReconInference,
    *,
    candidates: Optional[Sequence[int]] = None,
    n_jobs: int = 1,
    engine: Optional[ProbeScoringEngine] = None,
) -> ProbeChoice:
    """The single probe flow with the largest information gain.

    ``candidates`` defaults to every flow in the universe; restrict it to
    model an attacker who cannot launch certain flows (e.g. the
    constrained attacker of Figure 7, who cannot probe the target).
    Ties break toward the lowest flow index for determinism.  Scoring
    runs on the batched engine; pass ``n_jobs > 1`` for multiprocess
    fan-out or ``engine`` to reuse one across calls.
    """
    if engine is None:
        engine = ProbeScoringEngine(inference, n_jobs=n_jobs)
    probes, gain = engine.best_single(candidates)
    return ProbeChoice(probes=probes, gain=gain, stats=engine.stats)


@keyword_only
def best_probe_set(
    inference: ReconInference,
    n_probes: int,
    *,
    candidates: Optional[Sequence[int]] = None,
    method: str = "exhaustive",
    n_jobs: int = 1,
    engine: Optional[ProbeScoringEngine] = None,
) -> ProbeChoice:
    """The best set of ``n_probes`` probes by joint information gain.

    ``method="exhaustive"`` scores every size-``n_probes`` combination;
    ``method="greedy"`` grows the set one probe at a time (standard
    submodular-style heuristic, much cheaper for large candidate pools).
    Scoring runs on the batched engine; pass ``n_jobs > 1`` for
    multiprocess fan-out or ``engine`` to reuse one across calls.
    """
    if engine is None:
        engine = ProbeScoringEngine(inference, n_jobs=n_jobs)
    probes, gain = engine.best_set(n_probes, candidates, method=method)
    return ProbeChoice(probes=probes, gain=gain, stats=engine.stats)


def rank_probes(
    inference: ReconInference,
    candidates: Optional[Sequence[int]] = None,
) -> Tuple[ProbeChoice, ...]:
    """All single-probe candidates ranked by information gain (desc)."""
    if candidates is None:
        candidates = range(inference.model.context.n_flows)
    scored = [
        ProbeChoice(probes=(int(flow),), gain=inference.information_gain((flow,)))
        for flow in candidates
    ]
    return tuple(sorted(scored, key=lambda c: (-c.gain, c.probes)))


# ----------------------------------------------------------------------
# Serial reference implementations (differential-test ground truth)
# ----------------------------------------------------------------------
def best_single_probe_serial(
    inference: ReconInference,
    candidates: Optional[Sequence[int]] = None,
) -> ProbeChoice:
    """Original per-flow dict-walk loop of :func:`best_single_probe`."""
    if candidates is None:
        candidates = range(inference.model.context.n_flows)
    candidates = list(candidates)
    if not candidates:
        raise ValueError("no candidate probes")
    best_flow = None
    best_gain = -1.0
    for flow in candidates:
        gain = inference.information_gain((flow,))
        if gain > best_gain + 1e-15:
            best_flow = flow
            best_gain = gain
    assert best_flow is not None
    return ProbeChoice(probes=(best_flow,), gain=max(best_gain, 0.0))


def best_probe_set_serial(
    inference: ReconInference,
    n_probes: int,
    candidates: Optional[Sequence[int]] = None,
    method: str = "exhaustive",
) -> ProbeChoice:
    """Original per-combination loop of :func:`best_probe_set`."""
    if n_probes < 1:
        raise ValueError("n_probes must be >= 1")
    if candidates is None:
        candidates = range(inference.model.context.n_flows)
    candidates = sorted(set(int(f) for f in candidates))
    if len(candidates) < n_probes:
        raise ValueError(
            f"need {n_probes} candidates, have {len(candidates)}"
        )
    if n_probes == 1:
        return best_single_probe_serial(inference, candidates)

    if method == "exhaustive":
        best: Optional[ProbeChoice] = None
        for combo in combinations(candidates, n_probes):
            gain = inference.information_gain(combo)
            if best is None or gain > best.gain + 1e-15:
                best = ProbeChoice(probes=combo, gain=gain)
        assert best is not None
        return best

    if method == "greedy":
        chosen: Tuple[int, ...] = ()
        gain = 0.0
        remaining = list(candidates)
        for _ in range(n_probes):
            best_flow = None
            best_gain = -1.0
            for flow in remaining:
                probes = tuple(sorted(chosen + (flow,)))
                candidate_gain = inference.information_gain(probes)
                if candidate_gain > best_gain + 1e-15:
                    best_flow = flow
                    best_gain = candidate_gain
            assert best_flow is not None
            chosen = tuple(sorted(chosen + (best_flow,)))
            remaining.remove(best_flow)
            gain = best_gain
        return ProbeChoice(probes=chosen, gain=gain)

    raise ValueError(f"unknown selection method: {method!r}")
