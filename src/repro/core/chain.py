"""Markov chain utilities shared by the basic and compact models.

Conventions: distributions are 1-D numpy row vectors; transition matrices
``A`` satisfy ``A[i, j] = P(state_i -> state_j)``, so one step of
evolution is ``d @ A``.  The paper writes the same computation as
``I_T = A^T I_0`` with column vectors (Eqn. 8).

Matrices may be *substochastic* (rows summing to less than one) when the
target flow's transitions have been removed to compute joint events with
``X̂ = 0`` (Section V-A); the missing mass is exactly the probability of
the target flow having occurred.

Two pieces of machinery keep repeated powering cheap:

* :class:`TransitionOperator` precomputes ``A^T`` in CSR layout once, so
  every subsequent step is a single CSR matvec instead of the per-step
  transpose hidden in ``d @ A`` for sparse ``A``.  The accumulation
  order matches scipy's ``d @ A`` path element-for-element, so results
  are bit-identical to the naive loop.
* :class:`PowerChain` memoises ``A^T^k I_0`` at every requested ``k``,
  so adjacent window lengths ``T' > T`` pay ``T' - T`` matvecs instead
  of a full re-powering (the fig6/fig7 window sweeps and the window
  ablation benchmark).  Because powering is a fixed sequence of
  matvecs, resuming from a checkpoint is bit-identical to starting
  over.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from repro.obs import counter_inc

MatrixLike = Union[np.ndarray, sparse.spmatrix]

try:  # scipy's raw CSR matvec: skips per-call wrapper/validation overhead
    from scipy.sparse import _sparsetools

    _csr_matvec = _sparsetools.csr_matvec
except (ImportError, AttributeError):  # pragma: no cover - older scipy
    _csr_matvec = None


def _as_dense(distribution: Union[np.ndarray, sparse.spmatrix]) -> np.ndarray:
    """Distribution input -> float64 ndarray (1-D, or 2-D row stack).

    Sparse inputs are densified explicitly; a single sparse row comes
    back as a 1-D vector (the row-vector convention), a multi-row
    sparse input as a 2-D stack.  ``np.matrix`` is demoted to a plain
    ndarray so downstream arithmetic keeps ndarray semantics.
    """
    if sparse.issparse(distribution):
        dense = np.asarray(distribution.todense(), dtype=np.float64)
        return dense.ravel() if dense.shape[0] == 1 else dense
    return np.asarray(distribution, dtype=np.float64)


class TransitionOperator:
    """Repeated application of ``d -> d @ A`` with the transpose hoisted.

    For sparse ``A`` the operator stores ``A^T`` in CSR layout once;
    each step is then one CSR matvec (compiled via numba when
    ``compiled=True`` and the ``fast`` extra is installed -- the jit
    kernel mirrors scipy's row-sequential accumulation, so both paths
    agree bit-for-bit).  Dense matrices keep the plain ``@`` loop.
    """

    # The operator re-lays-out a matrix its caller already routed
    # through validate_stochastic; re-validating the transpose here
    # would reject legitimately substochastic inputs.
    def __init__(self, matrix: MatrixLike, compiled: bool = False) -> None:  # repro: noqa[STO001]
        from repro.core._fastmath import HAVE_NUMBA

        if sparse.issparse(matrix):
            self._dense: Optional[np.ndarray] = None
            transposed = sparse.csr_matrix(matrix.T)
            transposed.data.setflags(write=False)
            transposed.indices.setflags(write=False)
            transposed.indptr.setflags(write=False)
            self._csr_t: Optional[sparse.csr_matrix] = transposed
        else:
            self._dense = np.asarray(matrix, dtype=np.float64)
            self._csr_t = None
        self.compiled = bool(compiled) and HAVE_NUMBA and self._csr_t is not None
        self.shape: Tuple[int, int] = tuple(matrix.shape)  # type: ignore[assignment]

    @property
    def is_sparse(self) -> bool:
        """Whether the operator wraps a sparse matrix."""
        return self._csr_t is not None

    def power(self, distribution: np.ndarray, steps: int) -> np.ndarray:
        """``distribution @ A^steps`` for a 1-D vector or 2-D row stack."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        current = _as_dense(distribution).copy()
        if steps == 0:
            return current
        if self._csr_t is None:
            matrix = self._dense
            stacked = current.ndim > 1
            for _ in range(steps):
                current = np.asarray(current @ matrix)
                if not stacked:
                    current = current.ravel()
            return current
        transposed = self._csr_t
        if current.ndim == 1:
            counter_inc("kernel.sparse.matvecs", steps)
            if self.compiled:
                from repro.core._fastmath import csr_power

                return csr_power(
                    transposed.indptr,
                    transposed.indices,
                    transposed.data,
                    current,
                    steps,
                )
            n_rows = transposed.shape[0]
            if _csr_matvec is not None:
                n_cols = transposed.shape[1]
                indptr = transposed.indptr
                indices = transposed.indices
                data = transposed.data
                scratch = np.zeros(n_rows, dtype=np.float64)
                fill = scratch.fill
                current_fill = current.fill
                for _ in range(steps):
                    fill(0.0)
                    _csr_matvec(
                        n_rows, n_cols, indptr, indices, data, current, scratch
                    )
                    current, scratch = scratch, current
                    fill, current_fill = current_fill, fill
                return current
            for _ in range(steps):
                current = transposed @ current
            return current
        # Row stack: (k, n) @ A == (A^T @ (k, n)^T)^T, all rows per step.
        counter_inc("kernel.sparse.matvecs", steps * current.shape[0])
        for _ in range(steps):
            current = np.ascontiguousarray((transposed @ current.T).T)
        return current


class PowerChain:
    """Incremental powering ``I_k = A^T^k I_0`` with checkpoint reuse.

    ``advance(T)`` returns the frozen distribution after ``T`` steps,
    resuming from the largest previously computed checkpoint ``<= T``.
    Since the matvec sequence from a checkpoint is exactly the suffix of
    the full sequence, incremental results are bit-identical to a full
    re-powering from the start distribution.
    """

    def __init__(
        self, operator: TransitionOperator, start: np.ndarray
    ) -> None:
        self._operator = operator
        frozen = np.array(start, dtype=np.float64)
        frozen.setflags(write=False)
        self._checkpoints: Dict[int, np.ndarray] = {0: frozen}

    @property
    def operator(self) -> TransitionOperator:
        """The underlying one-step operator."""
        return self._operator

    def advance(self, steps: int) -> np.ndarray:
        """Frozen distribution after ``steps`` chain steps (memoised)."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        cached = self._checkpoints.get(steps)
        if cached is not None:
            if steps > 0:
                counter_inc("kernel.power_chain.reuses")
            return cached
        base = max(k for k in self._checkpoints if k <= steps)
        if base > 0:
            counter_inc("kernel.power_chain.reuses")
        result = self._operator.power(self._checkpoints[base], steps - base)
        result.setflags(write=False)
        self._checkpoints[steps] = result
        return result


def evolve(
    distribution: Union[np.ndarray, sparse.spmatrix],
    matrix: MatrixLike,
    steps: int,
) -> np.ndarray:
    """Apply ``steps`` chain steps: ``d <- d @ A`` repeated.

    Works for dense and scipy-sparse matrices *and* distributions: a
    sparse distribution is densified explicitly (a single sparse row
    becomes a 1-D vector), so the result is always a plain writable
    ``np.ndarray`` -- never ``np.matrix`` or a sparse product.
    ``steps == 0`` returns a copy of the input distribution.  A 2-D
    input is treated as a stack of row distributions, all evolved in
    one matrix product per step (the batched path of the probe-scoring
    engine).
    """
    return TransitionOperator(matrix).power(_as_dense(distribution), steps)


def point_distribution(size: int, index: int) -> np.ndarray:
    """Distribution concentrated on one state."""
    if not 0 <= index < size:
        raise IndexError(f"state index {index} out of range for size {size}")
    dist = np.zeros(size, dtype=np.float64)
    dist[index] = 1.0
    return dist


def row_sums(matrix: MatrixLike) -> np.ndarray:
    """Per-row transition mass (1.0 for a proper stochastic matrix)."""
    if sparse.issparse(matrix):
        return np.asarray(matrix.sum(axis=1)).ravel()
    return np.asarray(np.asarray(matrix).sum(axis=1)).ravel()


def validate_stochastic(
    matrix: MatrixLike, atol: float = 1e-9, substochastic: bool = False
) -> None:
    """Raise ``ValueError`` unless rows sum to one (or at most one).

    With ``substochastic=True``, rows may sum to anything in ``[0, 1]``
    (the target-excluded matrices of Section V-A).  Accepts dense
    arrays, ``np.matrix``, and every scipy-sparse format.
    """
    sums = row_sums(matrix)
    if substochastic:
        if (sums > 1.0 + atol).any() or (sums < -atol).any():
            raise ValueError("matrix is not substochastic")
        return
    if not np.allclose(sums, 1.0, atol=atol):
        worst = int(np.argmax(np.abs(sums - 1.0)))
        raise ValueError(
            f"matrix is not row-stochastic: row {worst} sums to {sums[worst]!r}"
        )


def stationary_distribution(
    matrix: MatrixLike,
    tol: float = 1e-12,
    max_iterations: int = 100000,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Stationary distribution by power iteration.

    Suitable for the irreducible, aperiodic chains produced by the models
    (every state reaches the empty cache through timeouts, and the empty
    cache has a self-loop through the no-arrival event).  Sparse
    matrices iterate through the cached-transpose operator, so the
    per-iteration cost is one CSR matvec.
    """
    size = matrix.shape[0]
    current = (
        np.full(size, 1.0 / size)
        if initial is None
        else _as_dense(initial).copy()
    )
    operator = TransitionOperator(matrix)
    for _ in range(max_iterations):
        nxt = operator.power(current, 1)
        if np.abs(nxt - current).max() < tol:
            return nxt
        current = nxt
    raise RuntimeError("power iteration did not converge")


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two distributions."""
    return float(0.5 * np.abs(np.asarray(p) - np.asarray(q)).sum())


def per_flow_step_probabilities(
    step_rates: Union[np.ndarray, sparse.spmatrix],
) -> Tuple[np.ndarray, float]:
    """Normalised per-step event probabilities for Poisson arrivals.

    The paper assigns each rule the unnormalised probability
    ``(gamma e^{-gamma}) e^{-Gamma}`` of being the step's (single) arrival
    and then normalises over all transitions (Section IV-A1).  Decomposed
    per flow, the unnormalised weights are ``lambda_f Delta e^{-Lambda
    Delta}`` for each flow and ``e^{-Lambda Delta}`` for "no arrival";
    after normalisation:

    ``p_f = lambda_f Delta / (1 + Lambda Delta)``,
    ``p_none = 1 / (1 + Lambda Delta)``.

    Returns ``(p_flows, p_none)``; the decomposition is what allows the
    target flow's transitions to be zeroed exactly (Section V-A).
    Sparse inputs (a sparse row of rates) are densified explicitly.
    """
    rates = _as_dense(step_rates)
    if (rates < 0).any():
        raise ValueError("negative step rates")
    denominator = 1.0 + float(rates.sum())
    return rates / denominator, 1.0 / denominator
