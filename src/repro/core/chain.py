"""Markov chain utilities shared by the basic and compact models.

Conventions: distributions are 1-D numpy row vectors; transition matrices
``A`` satisfy ``A[i, j] = P(state_i -> state_j)``, so one step of
evolution is ``d @ A``.  The paper writes the same computation as
``I_T = A^T I_0`` with column vectors (Eqn. 8).

Matrices may be *substochastic* (rows summing to less than one) when the
target flow's transitions have been removed to compute joint events with
``X̂ = 0`` (Section V-A); the missing mass is exactly the probability of
the target flow having occurred.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from scipy import sparse

MatrixLike = Union[np.ndarray, sparse.spmatrix]


def evolve(
    distribution: np.ndarray, matrix: MatrixLike, steps: int
) -> np.ndarray:
    """Apply ``steps`` chain steps: ``d <- d @ A`` repeated.

    Works for dense and scipy-sparse matrices.  ``steps == 0`` returns a
    copy of the input distribution.  A 2-D input is treated as a stack
    of row distributions, all evolved in one matrix product per step
    (the batched path of the probe-scoring engine).
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    current = np.asarray(distribution, dtype=np.float64).copy()
    stacked = current.ndim > 1
    for _ in range(steps):
        current = np.asarray(current @ matrix)
        if not stacked:
            current = current.ravel()
    return current


def point_distribution(size: int, index: int) -> np.ndarray:
    """Distribution concentrated on one state."""
    if not 0 <= index < size:
        raise IndexError(f"state index {index} out of range for size {size}")
    dist = np.zeros(size, dtype=np.float64)
    dist[index] = 1.0
    return dist


def row_sums(matrix: MatrixLike) -> np.ndarray:
    """Per-row transition mass (1.0 for a proper stochastic matrix)."""
    if sparse.issparse(matrix):
        return np.asarray(matrix.sum(axis=1)).ravel()
    return np.asarray(matrix).sum(axis=1)


def validate_stochastic(
    matrix: MatrixLike, atol: float = 1e-9, substochastic: bool = False
) -> None:
    """Raise ``ValueError`` unless rows sum to one (or at most one).

    With ``substochastic=True``, rows may sum to anything in ``[0, 1]``
    (the target-excluded matrices of Section V-A).
    """
    sums = row_sums(matrix)
    if substochastic:
        if (sums > 1.0 + atol).any() or (sums < -atol).any():
            raise ValueError("matrix is not substochastic")
        return
    if not np.allclose(sums, 1.0, atol=atol):
        worst = int(np.argmax(np.abs(sums - 1.0)))
        raise ValueError(
            f"matrix is not row-stochastic: row {worst} sums to {sums[worst]!r}"
        )


def stationary_distribution(
    matrix: MatrixLike,
    tol: float = 1e-12,
    max_iterations: int = 100000,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Stationary distribution by power iteration.

    Suitable for the irreducible, aperiodic chains produced by the models
    (every state reaches the empty cache through timeouts, and the empty
    cache has a self-loop through the no-arrival event).
    """
    if sparse.issparse(matrix):
        size = matrix.shape[0]
    else:
        size = np.asarray(matrix).shape[0]
    current = (
        np.full(size, 1.0 / size)
        if initial is None
        else np.asarray(initial, dtype=np.float64).copy()
    )
    for _ in range(max_iterations):
        nxt = np.asarray(current @ matrix).ravel()
        if np.abs(nxt - current).max() < tol:
            return nxt
        current = nxt
    raise RuntimeError("power iteration did not converge")


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two distributions."""
    return float(0.5 * np.abs(np.asarray(p) - np.asarray(q)).sum())


def per_flow_step_probabilities(
    step_rates: np.ndarray,
) -> Tuple[np.ndarray, float]:
    """Normalised per-step event probabilities for Poisson arrivals.

    The paper assigns each rule the unnormalised probability
    ``(gamma e^{-gamma}) e^{-Gamma}`` of being the step's (single) arrival
    and then normalises over all transitions (Section IV-A1).  Decomposed
    per flow, the unnormalised weights are ``lambda_f Delta e^{-Lambda
    Delta}`` for each flow and ``e^{-Lambda Delta}`` for "no arrival";
    after normalisation:

    ``p_f = lambda_f Delta / (1 + Lambda Delta)``,
    ``p_none = 1 / (1 + Lambda Delta)``.

    Returns ``(p_flows, p_none)``; the decomposition is what allows the
    target flow's transitions to be zeroed exactly (Section V-A).
    """
    rates = np.asarray(step_rates, dtype=np.float64)
    if (rates < 0).any():
        raise ValueError("negative step rates")
    denominator = 1.0 + float(rates.sum())
    return rates / denominator, 1.0 / denominator
