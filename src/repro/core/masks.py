"""Bitmask utilities for flow sets and cached-rule sets.

The analytic models spend almost all of their time on set algebra over
small universes (<= 16 flows, <= 12 rules in the paper's experiments).
Representing flow sets and rule sets as Python integers turns unions,
intersections, and complements into single machine operations, and lets
rate sums over arbitrary flow sets come from a precomputed table.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

#: Largest universe for which :class:`RateTable` precomputes all subsets.
_MAX_TABLE_BITS = 20


def mask_from_indices(indices: Iterable[int]) -> int:
    """Pack an iterable of non-negative indices into a bitmask."""
    mask = 0
    for index in indices:
        if index < 0:
            raise ValueError(f"negative index: {index}")
        mask |= 1 << index
    return mask


def indices_from_mask(mask: int) -> List[int]:
    """Unpack a bitmask into a sorted list of set-bit indices."""
    indices = []
    index = 0
    while mask:
        if mask & 1:
            indices.append(index)
        mask >>= 1
        index += 1
    return indices


def iter_bits(mask: int) -> Iterator[int]:
    """Yield set-bit indices of ``mask`` in ascending order."""
    index = 0
    while mask:
        if mask & 1:
            yield index
        mask >>= 1
        index += 1


try:  # int.bit_count: Python >= 3.10
    (0).bit_count

    def popcount(mask: int) -> int:
        """Number of set bits."""
        return mask.bit_count()

except AttributeError:  # pragma: no cover - Python 3.9 fallback

    def popcount(mask: int) -> int:
        """Number of set bits."""
        return bin(mask).count("1")


class RateTable:
    """Fast ``sum(rates[i] for i in subset)`` over bitmask subsets.

    For universes up to ``2**20`` subsets the sums are tabulated with the
    standard subset-DP (``table[m] = table[m without lowest bit] +
    rate[lowest bit]``); beyond that, sums fall back to a per-call loop.
    """

    def __init__(self, rates: Sequence[float]) -> None:
        self._rates = tuple(float(rate) for rate in rates)
        self._n = len(self._rates)
        if self._n <= _MAX_TABLE_BITS:
            size = 1 << self._n
            table = np.zeros(size, dtype=np.float64)
            # Subset-DP ``table[m] = table[m ^ low] + rate[low]`` done one
            # bit at a time, highest lowest-bit first: every mask whose
            # lowest set bit is ``b`` is its parent (bits above ``b``
            # only) plus ``rate[b]`` -- the exact addition the per-mask
            # loop performs, so the table is bit-identical to it.
            for b in range(self._n - 1, -1, -1):
                view = table[: size].reshape(-1, 1 << (b + 1))
                view[:, 1 << b] = view[:, 0] + self._rates[b]
            self._table = table
        else:  # pragma: no cover - exercised only for huge universes
            self._table = None

    def __len__(self) -> int:
        return self._n

    @property
    def full_mask(self) -> int:
        """Mask with every universe element present."""
        return (1 << self._n) - 1

    @property
    def total(self) -> float:
        """Sum of all rates."""
        return self.sum(self.full_mask)

    def sum(self, mask: int) -> float:
        """Sum of rates over the subset encoded by ``mask``."""
        if self._table is not None:
            return float(self._table[mask])
        total = 0.0  # pragma: no cover - huge-universe fallback
        for index in iter_bits(mask):
            total += self._rates[index]
        return total

    def sums(self, masks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`sum` over an integer array of masks.

        The batched gather the vectorised transition builder uses;
        identical values to calling :meth:`sum` per element.
        """
        if self._table is not None:
            return self._table[masks]
        return np.fromiter(  # pragma: no cover - huge-universe fallback
            (self.sum(int(mask)) for mask in np.ravel(masks)),
            dtype=np.float64,
            count=np.size(masks),
        ).reshape(np.shape(masks))


def enumerate_subsets(n_items: int, max_size: int) -> List[int]:
    """All bitmask subsets of ``{0..n_items-1}`` of size ``<= max_size``.

    Ordered by (size, numeric value): the empty set first, then
    singletons, etc.  This is the compact model's state enumeration
    (Section IV-B counts ``sum_{k<=n} C(|Rules|, k)`` non-empty states;
    we include the empty cache as the chain's natural initial state).
    """
    from itertools import combinations

    if max_size < 0:
        raise ValueError("max_size must be non-negative")
    bits = [1 << index for index in range(n_items)]
    subsets: List[int] = []
    append = subsets.append
    for size in range(0, min(max_size, n_items) + 1):
        for combo in combinations(bits, size):
            append(sum(combo))
    return subsets
