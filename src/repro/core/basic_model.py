"""The basic Markov model of the switch cache (Section IV-A).

A state is the complete cache contents: an ordered tuple of
``(rule, exp)`` pairs, most recently touched first, where ``exp`` is the
remaining time in steps.  Transitions follow the paper exactly:

* **Timeout (takes priority).** If any entry has ``exp = 0``, the single
  outgoing transition (probability 1) removes the deepest such entry and
  shifts later entries up.  No timers decrement on a timeout step.
* **Flow arrival, covering rule cached.** The matched rule (highest
  priority among cached covering rules) moves to the front with its
  timer reset to ``t_j`` (idle timeout) or decremented (hard timeout);
  all other timers decrement.
* **Flow arrival, no covering rule cached.** The highest-priority
  covering rule in the full policy is installed at the front with timer
  ``t_j``; if the cache was full, the entry with the smallest remaining
  time is evicted (ties broken toward the least recently touched entry);
  all other timers decrement.
* **No arrival** (including arrivals of flows the policy does not
  cover): all timers decrement.

Per-step event probabilities use the same normalised Poisson
decomposition as the compact model, and every transition is tagged with
the flow that caused it so the target-excluded substochastic dynamics of
Section V-A are available here too.

The state space is enormous (Section IV-A2 gives the closed form; see
:func:`repro.analysis.statecount.basic_state_count`), so the model never
materialises a matrix: distributions are evolved lazily as sparse
``{state: probability}`` dictionaries with optional pruning, and the
reachable state set can be enumerated breadth-first under a cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.core.chain import per_flow_step_probabilities, validate_stochastic
from repro.core.context import ModelContext
from repro.flows.policy import Policy
from repro.flows.universe import FlowUniverse

#: Flow tag for the no-arrival / uncovered-arrival event.
NO_FLOW = -1


@dataclass(frozen=True, order=True)
class CacheEntry:
    """One cache slot: rule index and remaining time in steps."""

    rule: int
    exp: int


#: A full cache state: entries front (most recent) to back.
BasicState = Tuple[CacheEntry, ...]

#: One outgoing transition: (next state, probability, causing flow tag).
Transition = Tuple[BasicState, float, int]


class BasicModel:
    """Full-fidelity chain over complete cache contents."""

    def __init__(
        self,
        policy: Policy,
        universe: FlowUniverse,
        delta: float,
        cache_size: int,
    ) -> None:
        self.context = ModelContext(policy, universe, delta, cache_size)
        self._transition_cache: Dict[BasicState, List[Transition]] = {}
        p_flows, p_none = per_flow_step_probabilities(
            np.asarray(self.context.step_rates)
        )
        self._p_flows = p_flows
        # Arrivals of flows the policy does not cover leave the cache set
        # unchanged but still consume a step; fold them into "no arrival".
        uncovered = sum(
            float(p_flows[f])
            for f in range(self.context.n_flows)
            if self.context.install_rule[f] is None
        )
        self._p_none = float(p_none) + uncovered

    # ------------------------------------------------------------------
    # Single-state transition function
    # ------------------------------------------------------------------
    @staticmethod
    def _decrement(entries: Iterable[CacheEntry]) -> Tuple[CacheEntry, ...]:
        return tuple(CacheEntry(e.rule, e.exp - 1) for e in entries)

    def _timeout_successor(self, state: BasicState) -> Optional[BasicState]:
        """The paper's timeout transition, or ``None`` if inapplicable."""
        expired_positions = [i for i, e in enumerate(state) if e.exp == 0]
        if not expired_positions:
            return None
        deepest = max(expired_positions)
        return state[:deepest] + state[deepest + 1 :]

    def _hit_successor(
        self, state: BasicState, position: int
    ) -> BasicState:
        """Matched cached rule at ``position`` moves to front, timer reset."""
        ctx = self.context
        entry = state[position]
        rule = ctx.policy[entry.rule]
        if rule.hard:
            front = CacheEntry(entry.rule, entry.exp - 1)
        else:
            front = CacheEntry(entry.rule, ctx.timeouts[entry.rule])
        before = self._decrement(state[:position])
        after = self._decrement(state[position + 1 :])
        return (front,) + before + after

    def _install_successor(
        self, state: BasicState, rule: int
    ) -> BasicState:
        """Install ``rule`` at the front, evicting if at capacity."""
        ctx = self.context
        entries = state
        if len(entries) >= ctx.cache_size:
            # Evict smallest remaining time; ties toward the deepest
            # (least recently touched) entry.
            victim = max(
                range(len(entries)),
                key=lambda i: (-entries[i].exp, i),
            )
            entries = entries[:victim] + entries[victim + 1 :]
        front = CacheEntry(rule, ctx.timeouts[rule])
        return (front,) + self._decrement(entries)

    def transitions(self, state: BasicState) -> List[Transition]:
        """All outgoing transitions of ``state`` (memoised)."""
        cached = self._transition_cache.get(state)
        if cached is not None:
            return cached

        ctx = self.context
        result: List[Transition] = []
        timeout_successor = self._timeout_successor(state)
        if timeout_successor is not None:
            # Timeout takes priority: it is the only transition.
            result.append((timeout_successor, 1.0, NO_FLOW))
        else:
            result.append((self._decrement(state), self._p_none, NO_FLOW))
            cached_mask = 0
            for entry in state:
                cached_mask |= 1 << entry.rule
            for flow in range(ctx.n_flows):
                p_flow = float(self._p_flows[flow])
                if p_flow <= 0.0:
                    continue
                install = ctx.install_rule[flow]
                if install is None:
                    continue  # folded into the no-arrival event
                matched = ctx.match_in_cache(flow, cached_mask)
                if matched is not None:
                    position = next(
                        i for i, e in enumerate(state) if e.rule == matched
                    )
                    successor = self._hit_successor(state, position)
                else:
                    successor = self._install_successor(state, install)
                result.append((successor, p_flow, flow))

        self._transition_cache[state] = result
        return result

    # ------------------------------------------------------------------
    # Target-excluded (substochastic) dynamics
    # ------------------------------------------------------------------
    def _excluded_probabilities(
        self, excluded: Iterable[int]
    ) -> Tuple[float, float]:
        """``(total arrival mass, uncovered arrival mass)`` of a flow set."""
        p_excluded = 0.0
        p_uncovered = 0.0
        for flow in excluded:
            p_flow = float(self._p_flows[flow])
            p_excluded += p_flow
            if self.context.install_rule[flow] is None:
                p_uncovered += p_flow
        return p_excluded, p_uncovered

    def _transitions_excluding(
        self,
        state: BasicState,
        excluded: FrozenSet[int],
        p_excluded: float,
        p_uncovered: float,
    ) -> List[Transition]:
        """Outgoing transitions with the excluded flows' mass removed.

        Every step must shed exactly the per-step probability of an
        excluded flow arriving, so that the surviving mass after ``T``
        steps is ``(1 - sum p_f)^T`` -- the Section V-A joint
        ``P(no excluded flow occurred ∧ state)``, and the same quantity
        the compact model's tagged-entry construction yields.  Three
        cases per state:

        * covered excluded flows own tagged transitions: drop them;
        * uncovered excluded flows were folded into the no-arrival
          event at construction: subtract their mass from it;
        * timeout states have a single probability-1 transition carrying
          no arrival at all ("timeout takes priority"): scale it by the
          survival probability instead.
        """
        transitions = self.transitions(state)
        if not excluded or p_excluded <= 0.0:
            return transitions
        if self._timeout_successor(state) is not None:
            successor, prob, tag = transitions[0]
            return [(successor, prob * (1.0 - p_excluded), tag)]
        result: List[Transition] = []
        for successor, prob, tag in transitions:
            if tag in excluded:
                continue
            if tag == NO_FLOW and p_uncovered > 0.0:
                prob -= p_uncovered
                if prob <= 0.0:
                    continue
            result.append((successor, prob, tag))
        return result

    # ------------------------------------------------------------------
    # Distribution evolution
    # ------------------------------------------------------------------
    @staticmethod
    def initial_distribution() -> Dict[BasicState, float]:
        """All mass on the empty cache."""
        return {(): 1.0}

    def evolve(
        self,
        distribution: Dict[BasicState, float],
        steps: int,
        exclude_flows: Iterable[int] = (),
        prune: float = 1e-12,
    ) -> Dict[BasicState, float]:
        """Evolve a sparse distribution ``steps`` steps.

        ``exclude_flows`` drops transitions caused by those flows (the
        substochastic Section V-A dynamics); ``prune`` discards states
        whose mass falls below the threshold to bound the support size.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        excluded = frozenset(int(f) for f in exclude_flows)
        p_excluded, p_uncovered = self._excluded_probabilities(excluded)
        current = dict(distribution)
        for _ in range(steps):
            nxt: Dict[BasicState, float] = {}
            for state, mass in current.items():
                if mass <= prune:
                    continue
                for successor, prob, tag in self._transitions_excluding(
                    state, excluded, p_excluded, p_uncovered
                ):
                    weight = mass * prob
                    if weight <= 0.0:
                        continue
                    nxt[successor] = nxt.get(successor, 0.0) + weight
            current = nxt
        return current

    def distribution_after(
        self,
        steps: int,
        exclude_flows: Iterable[int] = (),
        prune: float = 1e-12,
    ) -> Dict[BasicState, float]:
        """Evolve from the empty cache for ``steps`` steps."""
        return self.evolve(
            self.initial_distribution(), steps, exclude_flows, prune
        )

    # ------------------------------------------------------------------
    # Projections and summaries
    # ------------------------------------------------------------------
    @staticmethod
    def state_rule_set(state: BasicState) -> FrozenSet[int]:
        """Project a full state to its cached-rule set (compact state)."""
        return frozenset(entry.rule for entry in state)

    def project_to_sets(
        self, distribution: Dict[BasicState, float]
    ) -> Dict[FrozenSet[int], float]:
        """Marginalise a basic distribution onto compact states."""
        projected: Dict[FrozenSet[int], float] = {}
        for state, mass in distribution.items():
            key = self.state_rule_set(state)
            projected[key] = projected.get(key, 0.0) + mass
        return projected

    def rule_presence_marginals(
        self, distribution: Dict[BasicState, float]
    ) -> np.ndarray:
        """``P(rule_j in cache)`` under a basic distribution."""
        marginals = np.zeros(self.context.n_rules)
        for state, mass in distribution.items():
            for entry in state:
                marginals[entry.rule] += mass
        return marginals

    def state_covers_flow(self, state: BasicState, flow: int) -> bool:
        """Whether a probe for ``flow`` would hit in ``state``."""
        mask = 0
        for entry in state:
            mask |= 1 << entry.rule
        return self.context.state_covers(flow, mask)

    # ------------------------------------------------------------------
    # Explicit matrix construction (tiny instances only)
    # ------------------------------------------------------------------
    def transition_matrix(
        self,
        start: Optional[BasicState] = None,
        max_states: int = 200_000,
        exclude_flows: Iterable[int] = (),
    ) -> Tuple[List[BasicState], sparse.csr_matrix]:
        """Sparse transition matrix over the reachable state space.

        Only feasible for small policies/timeouts (the Section IV-A2
        blow-up); raises like :meth:`enumerate_reachable` beyond
        ``max_states``.  Returns ``(states, csr_matrix)`` where row/
        column indices follow the returned state order.
        """
        states = self.enumerate_reachable(start=start, max_states=max_states)
        index = {state: i for i, state in enumerate(states)}
        excluded = frozenset(int(f) for f in exclude_flows)
        p_excluded, p_uncovered = self._excluded_probabilities(excluded)
        rows: List[int] = []
        cols: List[int] = []
        probs: List[float] = []
        for row, state in enumerate(states):
            for successor, prob, tag in self._transitions_excluding(
                state, excluded, p_excluded, p_uncovered
            ):
                if prob <= 0.0:
                    continue
                rows.append(row)
                cols.append(index[successor])
                probs.append(prob)
        matrix = sparse.coo_matrix(
            (probs, (rows, cols)), shape=(len(states), len(states))
        ).tocsr()
        # Same read-only discipline as the compact model's matrices: the
        # chain helpers accept sparse inputs without copying, so frozen
        # buffers turn accidental in-place writes into errors.
        matrix.data.setflags(write=False)
        matrix.indices.setflags(write=False)
        matrix.indptr.setflags(write=False)
        validate_stochastic(matrix, substochastic=bool(excluded))
        return states, matrix

    def stationary_rule_marginals(
        self, max_states: int = 200_000
    ) -> np.ndarray:
        """``P(rule_j cached)`` under the chain's stationary distribution."""
        from repro.core.chain import stationary_distribution

        states, matrix = self.transition_matrix(max_states=max_states)
        pi = stationary_distribution(matrix)
        marginals = np.zeros(self.context.n_rules)
        for weight, state in zip(pi, states):
            for entry in state:
                marginals[entry.rule] += weight
        return marginals

    # ------------------------------------------------------------------
    # Reachable state enumeration (for scalability studies)
    # ------------------------------------------------------------------
    def enumerate_reachable(
        self,
        start: Optional[BasicState] = None,
        max_states: int = 1_000_000,
    ) -> List[BasicState]:
        """Breadth-first reachable states from ``start`` (default empty).

        Raises ``RuntimeError`` when the frontier exceeds ``max_states``
        -- the expected outcome for realistic parameters, illustrating
        the Section IV-A2 blow-up that motivates the compact model.
        """
        from collections import deque

        start_state: BasicState = start if start is not None else ()
        seen = {start_state}
        order = [start_state]
        queue = deque([start_state])
        while queue:
            state = queue.popleft()
            for successor, prob, _ in self.transitions(state):
                if prob <= 0.0 or successor in seen:
                    continue
                seen.add(successor)
                order.append(successor)
                if len(order) > max_states:
                    raise RuntimeError(
                        f"reachable state count exceeds {max_states}"
                    )
                queue.append(successor)
        return order
