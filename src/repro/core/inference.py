"""Reconnaissance inference: ``P(Q)``, ``P(X̂ ∧ Q)``, posteriors.

This module implements Section V's probability computations on top of a
:class:`~repro.core.compact_model.CompactModel`:

* Evolve the chain ``T`` steps to the cache-state distribution
  ``I_T = A^T I_0`` (Eqn. 8).
* Evolve the *target-excluded* substochastic chain to the joint
  weighting whose total mass is ``P(X̂ = 0)`` and whose per-state mass
  is ``P(X̂ = 0 ∧ state)``.
* Push both weightings through any probe sequence (accounting for the
  probes' own cache perturbations) to obtain ``P(Q = q)`` and
  ``P(X̂ = 0 ∧ Q = q)`` for every outcome vector ``q``, hence
  posteriors and information gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chain import evolve
from repro.core.compact_model import CompactModel
from repro.obs import sanitize
from repro.core.gain import (
    Outcome,
    binary_entropy,
    conditional_entropy_binary,
    information_gain,
)
from repro.core.probe import walk_probes

#: Weight threshold below which distribution entries are dropped; the
#: same value the dict-based frontier walk (`walk_probes`) uses, so the
#: vectorised prefix cache prunes identically.
PRUNE = 1e-15


@dataclass(frozen=True)
class OutcomeTable:
    """Joint outcome probabilities for one probe sequence.

    ``outcome_probs[q] = P(Q = q)`` and
    ``joint_absent[q] = P(X̂ = 0 ∧ Q = q)``.
    """

    probes: Tuple[int, ...]
    outcome_probs: Dict[Outcome, float]
    joint_absent: Dict[Outcome, float]

    def posterior_absent(self, outcome: Outcome) -> float:
        """``P(X̂ = 0 | Q = outcome)``; 0.5 for impossible outcomes."""
        p_q = self.outcome_probs.get(outcome, 0.0)
        if p_q <= 0.0:
            return 0.5
        p_joint = min(max(self.joint_absent.get(outcome, 0.0), 0.0), p_q)
        return p_joint / p_q

    def posterior_present(self, outcome: Outcome) -> float:
        """``P(X̂ = 1 | Q = outcome)``."""
        return 1.0 - self.posterior_absent(outcome)

    def decide(self, outcome: Outcome) -> int:
        """MAP decision: 1 iff the target more likely occurred."""
        return 1 if self.posterior_present(outcome) > 0.5 else 0


class ReconInference:
    """Precomputed inference state for one target flow and window.

    Parameters
    ----------
    model:
        The compact switch model.
    target_flow:
        Universe index of the target flow ``f̂``.
    window_steps:
        The detection window ``T`` in steps.
    initial:
        Optional initial state distribution (default: empty cache).
    """

    def __init__(
        self,
        model: CompactModel,
        target_flow: int,
        window_steps: int,
        initial: Optional[np.ndarray] = None,
        precomputed_full: Optional[np.ndarray] = None,
    ) -> None:
        if window_steps < 0:
            raise ValueError("window_steps must be non-negative")
        self.model = model
        self.target_flow = int(target_flow)
        self.window_steps = int(window_steps)

        start = model.initial_distribution() if initial is None else initial
        # Private copy, frozen: the start distribution feeds every cache
        # entry, so neither the caller's array nor ours may drift.
        self._start = np.array(start, dtype=np.float64)
        self._start.setflags(write=False)
        # Whether evolutions can share the model's default-start power
        # chains (reused across every inference on this model).
        self._default_start = initial is None
        #: Work counters read by the probe-scoring engine's
        #: :class:`~repro.core.engine.ScoringStats`.
        self.counters: Dict[str, int] = {
            "evolutions": 0,
            "prefix_cache_hits": 0,
            "prefix_cache_misses": 0,
            "prefix_extensions": 0,
        }
        #: ``exclusion tuple -> T-step evolved distribution``.
        self._evolution_cache: Dict[Tuple[int, ...], np.ndarray] = {}
        #: ``(exclusion tuple, probe prefix) -> stacked per-outcome rows``.
        self._prefix_cache: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...]], np.ndarray
        ] = {}

        if precomputed_full is not None:
            # The full-chain distribution does not depend on the target;
            # callers fitting many targets on one model (e.g. leakage
            # maps) compute it once and pass it in.  Copied and frozen
            # like every other cache entry.
            self.dist_full = np.array(precomputed_full, dtype=np.float64)
            self.dist_full.setflags(write=False)
            self._evolution_cache[()] = self.dist_full
        else:
            #: ``I_T``: distribution over cache states after ``T`` steps.
            self.dist_full = self.evolution(())
        #: Substochastic weighting: mass[state] = P(X̂=0 ∧ state).
        self.dist_absent = self.evolution((self.target_flow,))
        if sanitize.is_active():
            sanitize.guard_array("inference.dist_full", self.dist_full)
            sanitize.guard_array("inference.dist_absent", self.dist_absent)
        self._table_cache: Dict[Tuple[int, ...], OutcomeTable] = {}

    # ------------------------------------------------------------------
    # Shared evolution + prefix caches (the probe-scoring engine's core)
    # ------------------------------------------------------------------
    @staticmethod
    def _exclusion_key(exclusion: Sequence[int]) -> Tuple[int, ...]:
        return tuple(sorted(set(int(f) for f in exclusion)))

    def evolution(self, exclusion: Sequence[int] = ()) -> np.ndarray:
        """The ``T``-step evolved distribution, memoised per exclusion set.

        With ``exclusion`` empty this is ``I_T``; with flows excluded it
        is the substochastic weighting whose per-state mass is
        ``P(no excluded flow occurred ∧ state)`` (Section V-A).
        """
        key = self._exclusion_key(exclusion)
        cached = self._evolution_cache.get(key)
        if cached is not None:
            return cached
        self.counters["evolutions"] += 1
        # The model's power chain memoises A^T I_0 checkpoints across
        # every inference sharing the default start, so re-windowing the
        # same model pays only the step delta.  Chain results arrive
        # frozen -- aliased cache entries stay read-only (the runtime
        # complement of lint rule MUT001).
        chain = self.model.power_chain(
            key, None if self._default_start else self._start
        )
        dist = chain.advance(self.window_steps)
        self._evolution_cache[key] = dist
        if sanitize.is_active():
            sanitize.guard_array(f"inference.evolution[{key}]", dist)
        return dist

    def prefix_distribution(
        self,
        prefix: Sequence[int] = (),
        exclusion: Sequence[int] = (),
    ) -> np.ndarray:
        """Per-outcome state weightings after a probe prefix, memoised.

        Returns a ``(2**len(prefix), n_states)`` array whose row ``r``
        holds the joint weighting ``P(outcome(prefix) = r ∧ state)``
        (under the excluded chain when ``exclusion`` is non-empty).  Row
        encoding: the first probe's bit is the most significant, so a
        parent row ``r`` splits into children ``2r`` (miss) and
        ``2r + 1`` (hit).  Entries at or below :data:`PRUNE` are zeroed,
        mirroring the dict walk's frontier pruning.
        """
        excl_key = self._exclusion_key(exclusion)
        probes = tuple(int(f) for f in prefix)
        key = (excl_key, probes)
        cached = self._prefix_cache.get(key)
        if cached is not None:
            self.counters["prefix_cache_hits"] += 1
            return cached
        self.counters["prefix_cache_misses"] += 1
        if not probes:
            base = self.evolution(excl_key)
            rows = np.where(base > PRUNE, base, 0.0)[np.newaxis, :]
        else:
            parent = self.prefix_distribution(probes[:-1], excl_key)
            rows = self._extend_prefix(parent, probes[-1])
        rows.setflags(write=False)
        self._prefix_cache[key] = rows
        if sanitize.is_active():
            sanitize.guard_array(f"inference.prefix[{key}]", rows)
        return rows

    def _extend_prefix(self, parent: np.ndarray, flow: int) -> np.ndarray:
        """Split every parent row by one probe's outcome and perturb.

        The probe's outcome is read off the state *before* its cache
        perturbation (install/evict) is applied; both halves are then
        pushed through the probe's perturbation matrix so they can feed
        the next probe -- the Section V-B incremental adjustment, done
        for all outcome rows in one stacked sparse product.
        """
        self.counters["prefix_extensions"] += 1
        coverage = self.model.coverage_vector(flow)
        hit = parent * coverage
        miss = parent - hit
        stacked = np.empty((2 * parent.shape[0], parent.shape[1]))
        stacked[0::2] = miss
        stacked[1::2] = hit
        pushed = evolve(stacked, self.model.probe_matrix(flow), 1)
        return np.where(pushed > PRUNE, pushed, 0.0)

    # ------------------------------------------------------------------
    # Priors
    # ------------------------------------------------------------------
    def prior_absent(self) -> float:
        """Chain-consistent ``P(X̂ = 0)``: total target-excluded mass.

        Equals ``(1 - p_f̂)^T`` for the normalised chain; the paper's
        closed form ``e^{-lambda T Delta}`` is
        :meth:`prior_absent_poisson`.
        """
        return float(self.dist_absent.sum())

    def prior_absent_poisson(self) -> float:
        """The paper's closed-form prior ``e^{-lambda_f̂ T Delta}``."""
        import math

        rate = self.model.context.step_rates[self.target_flow]
        return math.exp(-rate * self.window_steps)

    def prior_entropy(self) -> float:
        """``H(X̂)`` in bits."""
        return binary_entropy(self.prior_absent())

    # ------------------------------------------------------------------
    # Outcome tables and gains
    # ------------------------------------------------------------------
    def _weights_dict(self, dist: np.ndarray) -> Dict[int, float]:
        states = self.model.states
        idx = np.nonzero(dist > 1e-15)[0]
        return dict(
            zip((states[i] for i in idx.tolist()), dist[idx].tolist())
        )

    def outcome_table(self, probes: Sequence[int]) -> OutcomeTable:
        """Joint outcome table for an ordered probe sequence (memoised)."""
        key = tuple(int(f) for f in probes)
        cached = self._table_cache.get(key)
        if cached is not None:
            return cached
        # The two walks visit largely the same states; share the
        # (flow, state) branch memo so probe application runs once.
        branch_cache: Dict[
            Tuple[int, int], Tuple[int, List[Tuple[int, float]]]
        ] = {}
        outcome_probs = walk_probes(
            self.model,
            self._weights_dict(self.dist_full),
            key,
            branch_cache=branch_cache,
        )
        joint_absent = walk_probes(
            self.model,
            self._weights_dict(self.dist_absent),
            key,
            branch_cache=branch_cache,
        )
        table = OutcomeTable(
            probes=key,
            outcome_probs=outcome_probs,
            joint_absent=joint_absent,
        )
        self._table_cache[key] = table
        return table

    def information_gain(self, probes: Sequence[int]) -> float:
        """``IG(X̂ | Q_{f_1}, ..., Q_{f_m})`` in bits."""
        table = self.outcome_table(probes)
        return information_gain(
            self.prior_absent(), table.joint_absent, table.outcome_probs
        )

    def conditional_entropy(self, probes: Sequence[int]) -> float:
        """``H(X̂ | Q)`` in bits."""
        table = self.outcome_table(probes)
        return conditional_entropy_binary(
            table.joint_absent, table.outcome_probs
        )

    # ------------------------------------------------------------------
    # Hit probabilities and detector viability
    # ------------------------------------------------------------------
    def hit_probability(self, flow: int) -> float:
        """``P(Q_f = 1)``: mass of states with a rule covering ``flow``."""
        total = 0.0
        for index, state in enumerate(self.model.states):
            if self.model.context.state_covers(flow, state):
                total += float(self.dist_full[index])
        return total

    def is_viable_detector(self, flow: int) -> bool:
        """The paper's screening condition for probe flow ``f``.

        ``P(X̂=0 | Q_f=0) > 0.5`` and ``P(X̂=1 | Q_f=1) > 0.5``: the
        probe's outcome, read directly as the decision, beats a coin on
        both sides (Section VI-B).
        """
        table = self.outcome_table((flow,))
        p_miss = table.outcome_probs.get((0,), 0.0)
        p_hit = table.outcome_probs.get((1,), 0.0)
        if p_miss <= 0.0 or p_hit <= 0.0:
            return False
        return (
            table.posterior_absent((0,)) > 0.5
            and table.posterior_present((1,)) > 0.5
        )
