"""Reconnaissance inference: ``P(Q)``, ``P(X̂ ∧ Q)``, posteriors.

This module implements Section V's probability computations on top of a
:class:`~repro.core.compact_model.CompactModel`:

* Evolve the chain ``T`` steps to the cache-state distribution
  ``I_T = A^T I_0`` (Eqn. 8).
* Evolve the *target-excluded* substochastic chain to the joint
  weighting whose total mass is ``P(X̂ = 0)`` and whose per-state mass
  is ``P(X̂ = 0 ∧ state)``.
* Push both weightings through any probe sequence (accounting for the
  probes' own cache perturbations) to obtain ``P(Q = q)`` and
  ``P(X̂ = 0 ∧ Q = q)`` for every outcome vector ``q``, hence
  posteriors and information gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.chain import evolve
from repro.core.compact_model import CompactModel
from repro.core.gain import (
    Outcome,
    binary_entropy,
    conditional_entropy_binary,
    information_gain,
)
from repro.core.probe import walk_probes


@dataclass(frozen=True)
class OutcomeTable:
    """Joint outcome probabilities for one probe sequence.

    ``outcome_probs[q] = P(Q = q)`` and
    ``joint_absent[q] = P(X̂ = 0 ∧ Q = q)``.
    """

    probes: Tuple[int, ...]
    outcome_probs: Dict[Outcome, float]
    joint_absent: Dict[Outcome, float]

    def posterior_absent(self, outcome: Outcome) -> float:
        """``P(X̂ = 0 | Q = outcome)``; 0.5 for impossible outcomes."""
        p_q = self.outcome_probs.get(outcome, 0.0)
        if p_q <= 0.0:
            return 0.5
        p_joint = min(max(self.joint_absent.get(outcome, 0.0), 0.0), p_q)
        return p_joint / p_q

    def posterior_present(self, outcome: Outcome) -> float:
        """``P(X̂ = 1 | Q = outcome)``."""
        return 1.0 - self.posterior_absent(outcome)

    def decide(self, outcome: Outcome) -> int:
        """MAP decision: 1 iff the target more likely occurred."""
        return 1 if self.posterior_present(outcome) > 0.5 else 0


class ReconInference:
    """Precomputed inference state for one target flow and window.

    Parameters
    ----------
    model:
        The compact switch model.
    target_flow:
        Universe index of the target flow ``f̂``.
    window_steps:
        The detection window ``T`` in steps.
    initial:
        Optional initial state distribution (default: empty cache).
    """

    def __init__(
        self,
        model: CompactModel,
        target_flow: int,
        window_steps: int,
        initial: Optional[np.ndarray] = None,
        precomputed_full: Optional[np.ndarray] = None,
    ):
        if window_steps < 0:
            raise ValueError("window_steps must be non-negative")
        self.model = model
        self.target_flow = int(target_flow)
        self.window_steps = int(window_steps)

        start = model.initial_distribution() if initial is None else initial
        matrix_absent = model.transition_matrix(
            exclude_flows=(self.target_flow,)
        )
        if precomputed_full is not None:
            # The full-chain distribution does not depend on the target;
            # callers fitting many targets on one model (e.g. leakage
            # maps) compute it once and pass it in.
            self.dist_full = np.asarray(precomputed_full, dtype=np.float64)
        else:
            matrix_full = model.transition_matrix()
            #: ``I_T``: distribution over cache states after ``T`` steps.
            self.dist_full = evolve(start, matrix_full, window_steps)
        #: Substochastic weighting: mass[state] = P(X̂=0 ∧ state).
        self.dist_absent = evolve(start, matrix_absent, window_steps)
        self._table_cache: Dict[Tuple[int, ...], OutcomeTable] = {}

    # ------------------------------------------------------------------
    # Priors
    # ------------------------------------------------------------------
    def prior_absent(self) -> float:
        """Chain-consistent ``P(X̂ = 0)``: total target-excluded mass.

        Equals ``(1 - p_f̂)^T`` for the normalised chain; the paper's
        closed form ``e^{-lambda T Delta}`` is
        :meth:`prior_absent_poisson`.
        """
        return float(self.dist_absent.sum())

    def prior_absent_poisson(self) -> float:
        """The paper's closed-form prior ``e^{-lambda_f̂ T Delta}``."""
        import math

        rate = self.model.context.step_rates[self.target_flow]
        return math.exp(-rate * self.window_steps)

    def prior_entropy(self) -> float:
        """``H(X̂)`` in bits."""
        return binary_entropy(self.prior_absent())

    # ------------------------------------------------------------------
    # Outcome tables and gains
    # ------------------------------------------------------------------
    def _weights_dict(self, dist: np.ndarray) -> Dict[int, float]:
        states = self.model.states
        return {
            states[i]: float(dist[i])
            for i in np.nonzero(dist > 1e-15)[0]
        }

    def outcome_table(self, probes: Sequence[int]) -> OutcomeTable:
        """Joint outcome table for an ordered probe sequence (memoised)."""
        key = tuple(int(f) for f in probes)
        cached = self._table_cache.get(key)
        if cached is not None:
            return cached
        outcome_probs = walk_probes(
            self.model, self._weights_dict(self.dist_full), key
        )
        joint_absent = walk_probes(
            self.model, self._weights_dict(self.dist_absent), key
        )
        table = OutcomeTable(
            probes=key,
            outcome_probs=outcome_probs,
            joint_absent=joint_absent,
        )
        self._table_cache[key] = table
        return table

    def information_gain(self, probes: Sequence[int]) -> float:
        """``IG(X̂ | Q_{f_1}, ..., Q_{f_m})`` in bits."""
        table = self.outcome_table(probes)
        return information_gain(
            self.prior_absent(), table.joint_absent, table.outcome_probs
        )

    def conditional_entropy(self, probes: Sequence[int]) -> float:
        """``H(X̂ | Q)`` in bits."""
        table = self.outcome_table(probes)
        return conditional_entropy_binary(
            table.joint_absent, table.outcome_probs
        )

    # ------------------------------------------------------------------
    # Hit probabilities and detector viability
    # ------------------------------------------------------------------
    def hit_probability(self, flow: int) -> float:
        """``P(Q_f = 1)``: mass of states with a rule covering ``flow``."""
        total = 0.0
        for index, state in enumerate(self.model.states):
            if self.model.context.state_covers(flow, state):
                total += float(self.dist_full[index])
        return total

    def is_viable_detector(self, flow: int) -> bool:
        """The paper's screening condition for probe flow ``f``.

        ``P(X̂=0 | Q_f=0) > 0.5`` and ``P(X̂=1 | Q_f=1) > 0.5``: the
        probe's outcome, read directly as the decision, beats a coin on
        both sides (Section VI-B).
        """
        table = self.outcome_table((flow,))
        p_miss = table.outcome_probs.get((0,), 0.0)
        p_hit = table.outcome_probs.get((1,), 0.0)
        if p_miss <= 0.0 or p_hit <= 0.0:
            return False
        return (
            table.posterior_absent((0,)) > 0.5
            and table.posterior_present((1,)) > 0.5
        )
