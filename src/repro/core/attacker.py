"""Attacker strategies evaluated in the paper (Section VI).

Every attacker exposes the same two-phase interface driven by the trial
runners: :meth:`Attacker.plan` returns the ordered probe flows to inject,
and :meth:`Attacker.decide` maps the observed hit/miss outcome vector to
the attacker's verdict on ``X̂`` (1 = "target flow occurred within the
window").

* :class:`NaiveAttacker` -- probes the target flow itself and returns
  the raw outcome bit (the paper's baseline).
* :class:`ModelAttacker` -- selects the probe(s) maximising information
  gain using the compact model; with a single probe it returns the
  outcome bit directly (the paper's decision rule, valid under the
  viability screen), with multiple probes it classifies through the
  decision tree's MAP posteriors.
* :class:`ConstrainedModelAttacker` -- the Figure 7 attacker: model
  based but barred from probing the target flow (wrong vantage point,
  or probing the target would raise alerts).
* :class:`RandomAttacker` -- sends no probes; guesses from the prior
  (the paper's "random attacker" reference line).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.decision_tree import DecisionTree
from repro.core.inference import ReconInference
from repro.core.selection import best_probe_set


class Attacker(ABC):
    """Common interface: plan probes, then decide from their outcomes."""

    #: Short identifier used in result tables.
    name: str = "attacker"

    @abstractmethod
    def plan(self) -> Tuple[int, ...]:
        """Ordered probe flow indices to inject."""

    @abstractmethod
    def decide(self, outcomes: Sequence[Optional[int]]) -> int:
        """Verdict on ``X̂`` given the observed outcome bits.

        A ``None`` entry marks a probe that went unanswered (timed out
        despite retries -- see ``Prober``); implementations must degrade
        gracefully rather than crash or silently assume a miss.
        """


class NaiveAttacker(Attacker):
    """Probe the target flow; answer with the raw hit bit."""

    name = "naive"

    def __init__(self, target_flow: int) -> None:
        self.target_flow = int(target_flow)

    def plan(self) -> Tuple[int, ...]:
        return (self.target_flow,)

    def decide(self, outcomes: Sequence[Optional[int]]) -> int:
        if len(outcomes) != 1:
            raise ValueError("naive attacker expects exactly one outcome")
        if outcomes[0] is None:
            # The naive attacker has no model to marginalise with; an
            # unanswered probe carries no timing signal, so it answers
            # "absent" (the paper's naive rule answers the raw bit).
            return 0
        return int(outcomes[0])


class ModelAttacker(Attacker):
    """Information-gain-optimal probing via the compact model.

    Parameters
    ----------
    inference:
        Fitted :class:`~repro.core.inference.ReconInference` for the
        target flow and window.
    candidates:
        Flows the attacker is able to launch (default: all).
    n_probes:
        Number of non-adaptive probes (Section V-B).
    decision:
        ``"query"`` returns the (single) probe's outcome bit, exactly as
        in the paper's evaluation; ``"map"`` classifies through the
        posterior decision tree.  Multi-probe attackers always use the
        tree.
    selection_method:
        ``"exhaustive"`` or ``"greedy"`` probe-set search.
    n_jobs:
        Fan probe scoring out over this many processes (engine option).
    """

    name = "model"

    def __init__(
        self,
        inference: ReconInference,
        candidates: Optional[Sequence[int]] = None,
        n_probes: int = 1,
        decision: str = "query",
        selection_method: str = "exhaustive",
        n_jobs: int = 1,
    ) -> None:
        if decision not in ("query", "map"):
            raise ValueError(f"unknown decision rule: {decision!r}")
        self.inference = inference
        self.n_probes = int(n_probes)
        self.decision = decision
        choice = best_probe_set(
            inference,
            self.n_probes,
            candidates=candidates,
            method=selection_method,
            n_jobs=n_jobs,
        )
        self.choice = choice
        # Built on first decision: the screening pipelines construct
        # (and discard) attackers for every rejection-sampled candidate
        # configuration, and only read the probe choice.
        self._tree_cache: Optional[DecisionTree] = None

    @property
    def _tree(self) -> DecisionTree:
        """The outcome classifier, built lazily from the probe choice."""
        if self._tree_cache is None:
            self._tree_cache = DecisionTree.build(
                self.inference, self.choice.probes
            )
        return self._tree_cache

    def plan(self) -> Tuple[int, ...]:
        return self.choice.probes

    def decide(self, outcomes: Sequence[Optional[int]]) -> int:
        if len(outcomes) != len(self.choice.probes):
            raise ValueError(
                f"expected {len(self.choice.probes)} outcomes, "
                f"got {len(outcomes)}"
            )
        if any(bit is None for bit in outcomes):
            # Unanswered probe(s): marginalise the missing bits over the
            # decision tree's leaf masses instead of assuming a miss.
            return self._tree.predict_partial(outcomes)
        observed = [int(bit) for bit in outcomes if bit is not None]
        if self.decision == "query" and len(observed) == 1:
            return observed[0]
        return self._tree.predict(observed)

    @property
    def probes(self) -> Tuple[int, ...]:
        """The selected probe flows."""
        return self.choice.probes

    @property
    def predicted_gain(self) -> float:
        """Model-predicted information gain of the selected probes."""
        return self.choice.gain


class ConstrainedModelAttacker(ModelAttacker):
    """Model attacker that may not probe the target flow (Figure 7)."""

    name = "constrained"

    def __init__(
        self,
        inference: ReconInference,
        candidates: Optional[Sequence[int]] = None,
        n_probes: int = 1,
        decision: str = "query",
        selection_method: str = "exhaustive",
        n_jobs: int = 1,
    ) -> None:
        if candidates is None:
            candidates = range(inference.model.context.n_flows)
        allowed = [
            int(f) for f in candidates if int(f) != inference.target_flow
        ]
        if not allowed:
            raise ValueError("no candidate probes besides the target")
        super().__init__(
            inference,
            candidates=allowed,
            n_probes=n_probes,
            decision=decision,
            selection_method=selection_method,
            n_jobs=n_jobs,
        )


class RandomAttacker(Attacker):
    """No probes; guess from the prior probability of occurrence.

    ``mode="sample"`` draws the verdict Bernoulli(P(X̂=1)) per trial (the
    paper's random attacker, which "simply chooses whether the flow
    occurred based on its a priori probability");  ``mode="map"`` always
    answers with the prior MAP.
    """

    name = "random"

    def __init__(
        self,
        prior_present: float,
        rng: Optional[np.random.Generator] = None,
        mode: str = "sample",
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= prior_present <= 1.0:
            raise ValueError(f"prior out of range: {prior_present}")
        if mode not in ("sample", "map"):
            raise ValueError(f"unknown mode: {mode!r}")
        self.prior_present = float(prior_present)
        self.mode = mode
        # Reproducible by default: an explicit generator wins, then an
        # explicit seed, then a fixed seed -- never OS entropy.
        self._rng = (
            rng
            if rng is not None
            else np.random.default_rng(0 if seed is None else seed)
        )

    def plan(self) -> Tuple[int, ...]:
        return ()

    def decide(self, outcomes: Sequence[Optional[int]]) -> int:
        if outcomes:
            raise ValueError("random attacker sends no probes")
        if self.mode == "map":
            return 1 if self.prior_present > 0.5 else 0
        return int(self._rng.random() < self.prior_present)
