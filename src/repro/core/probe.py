"""Probe semantics over compact states.

A probe is itself a flow: it either hits a cached covering rule
(``Q_f = 1``) or misses (``Q_f = 0``) -- and, on a miss that the policy
covers, perturbs the cache exactly like any other arrival (the
controller installs the highest-priority covering rule, evicting if
necessary).  Multi-probe inference (Section V-B) must account for this
perturbation, which is why probe application returns a *branching* over
successor states when an eviction is involved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.compact_model import CompactModel
from repro.core.masks import popcount


def probe_outcome(model: CompactModel, state: int, flow: int) -> int:
    """``Q_f`` for a probe of ``flow`` against a (bitmask) state."""
    return 1 if model.context.state_covers(flow, state) else 0


def apply_probe(
    model: CompactModel, state: int, flow: int
) -> List[Tuple[int, float]]:
    """Successor states (with weights) after probing ``flow``.

    * hit: the cache set is unchanged (the matched rule's timer resets);
    * miss, covered by the policy: the install rule enters, with the
      eviction split applied when the cache is full;
    * miss, uncovered: unchanged (the controller just forwards).
    """
    ctx = model.context
    if ctx.match_in_cache(flow, state) is not None:
        return [(state, 1.0)]
    install = ctx.install_rule[flow]
    if install is None:
        return [(state, 1.0)]
    if popcount(state) < ctx.cache_size:
        return [(state | (1 << install), 1.0)]
    branches: List[Tuple[int, float]] = []
    for victim, prob in model.eviction_distribution(state).items():
        if prob <= 0.0:
            continue
        branches.append(((state & ~(1 << victim)) | (1 << install), prob))
    return branches


def walk_probes(
    model: CompactModel,
    weights_by_state: Dict[int, float],
    probes: Tuple[int, ...],
    prune: float = 1e-15,
    branch_cache: Optional[
        Dict[Tuple[int, int], Tuple[int, List[Tuple[int, float]]]]
    ] = None,
) -> Dict[Tuple[int, ...], float]:
    """Push a state distribution through a probe sequence.

    Returns the probability of each probe-outcome vector under the given
    (possibly substochastic) state weighting.  Probes are applied in
    order; each probe's outcome is read off the state *before* the
    probe's own perturbation is applied, and the perturbation feeds the
    next probe -- the Section V-B incremental adjustment.

    ``branch_cache`` optionally memoises ``(flow, state) -> (outcome
    bit, successor branches)`` across calls; both are pure functions of
    the model, so sharing a cache between walks (e.g. the joint and
    marginal walks of one outcome table) changes nothing observable.
    """
    outcome_probs: Dict[Tuple[int, ...], float] = {}
    if branch_cache is None:
        branch_cache = {}
    if len(probes) == 1:
        return _walk_single_probe(
            model, weights_by_state, probes[0], prune, branch_cache
        )
    # Frontier entries: (state, outcome prefix) -> weight.
    frontier: Dict[Tuple[int, Tuple[int, ...]], float] = {
        (state, ()): weight
        for state, weight in weights_by_state.items()
        if weight > prune
    }
    cache_get = branch_cache.get
    for flow in probes:
        next_frontier: Dict[Tuple[int, Tuple[int, ...]], float] = {}
        get = next_frontier.get
        for (state, prefix), weight in frontier.items():
            entry = cache_get((flow, state))
            if entry is None:
                entry = (
                    probe_outcome(model, state, flow),
                    apply_probe(model, state, flow),
                )
                branch_cache[(flow, state)] = entry
            bit, branches = entry
            outcome = prefix + (bit,)
            for successor, branch_prob in branches:
                new_weight = weight * branch_prob
                if new_weight <= prune:
                    continue
                key = (successor, outcome)
                next_frontier[key] = get(key, 0.0) + new_weight
        frontier = next_frontier
    for (state, outcome), weight in frontier.items():
        outcome_probs[outcome] = outcome_probs.get(outcome, 0.0) + weight
    return outcome_probs


def _walk_single_probe(
    model: CompactModel,
    weights_by_state: Dict[int, float],
    flow: int,
    prune: float,
    branch_cache: Dict[Tuple[int, int], Tuple[int, List[Tuple[int, float]]]],
) -> Dict[Tuple[int, ...], float]:
    """One-probe fast path: plain-int keys instead of tuple keys.

    Replicates the generic walk exactly: per-outcome successor dicts
    merge contributions in the same insertion order the combined
    ``(state, outcome)`` frontier would, outcome dicts are created at
    the first *surviving* insertion (so the returned key order matches),
    and each outcome's total accumulates over its successors in that
    same insertion order -- bit-identical sums.
    """
    by_bit: Dict[int, Dict[int, float]] = {}
    cache_get = branch_cache.get
    for state, weight in weights_by_state.items():
        if weight <= prune:
            continue
        entry = cache_get((flow, state))
        if entry is None:
            entry = (
                probe_outcome(model, state, flow),
                apply_probe(model, state, flow),
            )
            branch_cache[(flow, state)] = entry
        bit, branches = entry
        target = by_bit.get(bit)
        for successor, branch_prob in branches:
            new_weight = weight * branch_prob
            if new_weight <= prune:
                continue
            if target is None:
                target = {}
                by_bit[bit] = target
            target[successor] = target.get(successor, 0.0) + new_weight
    return {
        (bit,): sum(successors.values())
        for bit, successors in by_bit.items()
    }
