"""Adaptive (sequential) probe selection — an extension of Section V.

The paper selects its ``m`` probes *non-adaptively*: the set is fixed
before any outcome is observed (Section V-B).  A strictly stronger
attacker chooses each next probe *after* seeing the previous outcomes,
conditioning the switch-state distribution as it goes.  This module
implements that attacker on top of the compact model:

* :class:`AdaptiveSession` carries the joint weightings
  ``P(state ∧ observations)`` and ``P(X̂=0 ∧ state ∧ observations)``,
  updated after every observed probe (including the probe's own cache
  perturbation);
* each step greedily picks the candidate flow with the largest
  *conditional* information gain about ``X̂`` given everything seen;
* the session stops after its probe budget or when no candidate gains
  more than ``min_gain``.

A note on optimality: the session is *myopic* — each probe maximises
the immediate conditional gain.  Against a non-adaptive plan executed
in the same first-probe order, myopic adaptivity weakly dominates
(each branch re-optimises the remaining probes).  A non-adaptive plan
executed in a *different order* can occasionally edge it out, because
probe order changes the cache perturbation and the canonical
(sorted-order) evaluation may exploit an ordering the myopic policy
never considers.  In practice the two are within a fraction of a
millibit of each other; the benchmarks report both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


from repro.core.compact_model import CompactModel
from repro.core.engine import batched_conditional_gains
from repro.core.gain import binary_entropy, information_gain
from repro.core.inference import ReconInference
from repro.core.probe import apply_probe, probe_outcome


class AdaptiveSession:
    """One adaptive probing session against one target flow.

    Usage (driven by a trial runner or a live attack loop)::

        session = AdaptiveSession(inference, candidates=range(16))
        while True:
            flow = session.next_probe()
            if flow is None:
                break
            bit = measure(flow)          # the real timing probe
            session.observe(bit)
        verdict = session.decide()
    """

    def __init__(
        self,
        inference: ReconInference,
        candidates: Optional[Sequence[int]] = None,
        max_probes: int = 3,
        min_gain: float = 1e-9,
        allow_repeats: bool = False,
        n_jobs: int = 1,
    ) -> None:
        if max_probes < 1:
            raise ValueError("max_probes must be >= 1")
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.inference = inference
        self.model: CompactModel = inference.model
        if candidates is None:
            candidates = range(self.model.context.n_flows)
        self.candidates = sorted(set(int(f) for f in candidates))
        if not self.candidates:
            raise ValueError("no candidate probes")
        self.max_probes = max_probes
        self.min_gain = min_gain
        self.allow_repeats = allow_repeats
        self.n_jobs = int(n_jobs)

        states = self.model.states
        self._weights_full: Dict[int, float] = {
            states[i]: float(w)
            for i, w in enumerate(inference.dist_full)
            if w > 1e-15
        }
        self._weights_absent: Dict[int, float] = {
            states[i]: float(w)
            for i, w in enumerate(inference.dist_absent)
            if w > 1e-15
        }
        self.history: List[Tuple[int, int]] = []  # (flow, outcome)
        self._pending_flow: Optional[int] = None

    # ------------------------------------------------------------------
    # Posterior bookkeeping
    # ------------------------------------------------------------------
    @property
    def evidence_mass(self) -> float:
        """``P(observations so far)`` under the model."""
        return sum(self._weights_full.values())

    def posterior_absent(self) -> float:
        """``P(X̂ = 0 | observations)``; 0.5 when evidence mass is zero."""
        mass = self.evidence_mass
        if mass <= 0.0:
            return 0.5
        return min(sum(self._weights_absent.values()) / mass, 1.0)

    def decide(self) -> int:
        """MAP verdict on ``X̂`` from the current posterior."""
        return 1 if (1.0 - self.posterior_absent()) > 0.5 else 0

    # ------------------------------------------------------------------
    # Probe planning
    # ------------------------------------------------------------------
    def _split_by_outcome(
        self, weights: Dict[int, float], flow: int
    ) -> Dict[int, Dict[int, float]]:
        """Partition + perturb a weighting by a probe's outcome bit."""
        split: Dict[int, Dict[int, float]] = {0: {}, 1: {}}
        for state, weight in weights.items():
            bit = probe_outcome(self.model, state, flow)
            bucket = split[bit]
            for successor, prob in apply_probe(self.model, state, flow):
                value = weight * prob
                if value <= 0.0:
                    continue
                bucket[successor] = bucket.get(successor, 0.0) + value
        return split

    def _conditional_gain(self, flow: int) -> float:
        """IG about ``X̂`` of probing ``flow`` now, given the history."""
        mass = self.evidence_mass
        if mass <= 0.0:
            return 0.0
        split_full = self._split_by_outcome(self._weights_full, flow)
        split_absent = self._split_by_outcome(self._weights_absent, flow)
        outcome_probs = {
            (bit,): sum(split_full[bit].values()) / mass for bit in (0, 1)
        }
        joint_absent = {
            (bit,): sum(split_absent[bit].values()) / mass for bit in (0, 1)
        }
        prior_absent = self.posterior_absent()
        return information_gain(prior_absent, joint_absent, outcome_probs)

    def next_probe(self) -> Optional[int]:
        """The next probe flow, or ``None`` when the session is done.

        Must be followed by :meth:`observe` with the measured bit before
        the next call.  Candidate scoring runs on the engine's batched
        conditional-gain path (fanned out over processes when the
        session was built with ``n_jobs > 1``); the winner scan is the
        same canonical-order loop as the per-flow reference
        (:meth:`_conditional_gain`), so the chosen probe is identical.
        """
        if self._pending_flow is not None:
            raise RuntimeError("observe() the pending probe first")
        if len(self.history) >= self.max_probes:
            return None
        used = {flow for flow, _ in self.history}
        allowed = [
            flow
            for flow in self.candidates
            if self.allow_repeats or flow not in used
        ]
        gains = batched_conditional_gains(
            self.model,
            self._weights_full,
            self._weights_absent,
            allowed,
            n_jobs=self.n_jobs,
        )
        best_flow: Optional[int] = None
        best_gain = self.min_gain
        for flow, gain in zip(allowed, gains):
            if gain > best_gain + 1e-15:
                best_flow = flow
                best_gain = float(gain)
        if best_flow is None:
            return None
        self._pending_flow = best_flow
        return best_flow

    def observe(self, outcome: int) -> None:
        """Condition the session on the measured outcome bit."""
        if self._pending_flow is None:
            raise RuntimeError("no probe pending")
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0/1, got {outcome!r}")
        flow = self._pending_flow
        self._pending_flow = None
        self._weights_full = self._split_by_outcome(
            self._weights_full, flow
        )[outcome]
        self._weights_absent = self._split_by_outcome(
            self._weights_absent, flow
        )[outcome]
        self.history.append((flow, outcome))

    # ------------------------------------------------------------------
    # Model-predicted performance (no real network needed)
    # ------------------------------------------------------------------
    def expected_information(self) -> float:
        """Expected total information of a fresh session, in bits.

        Computed by expanding the adaptive policy's outcome tree under
        the model: ``H(X̂) - E[H(X̂ | leaf)]``.
        """
        root = AdaptiveSession(
            self.inference,
            candidates=self.candidates,
            max_probes=self.max_probes,
            min_gain=self.min_gain,
            allow_repeats=self.allow_repeats,
            n_jobs=self.n_jobs,
        )
        prior = self.inference.prior_absent()
        leaf_entropy = _expected_leaf_entropy(root)
        return max(binary_entropy(prior) - leaf_entropy, 0.0)


def _expected_leaf_entropy(session: AdaptiveSession) -> float:
    """Recursive expansion of the adaptive policy's outcome tree."""
    flow = session.next_probe()
    if flow is None:
        return binary_entropy(session.posterior_absent())
    total = 0.0
    mass = session.evidence_mass
    if mass <= 0.0:
        return 0.0
    for bit in (0, 1):
        child = AdaptiveSession(
            session.inference,
            candidates=session.candidates,
            max_probes=session.max_probes,
            min_gain=session.min_gain,
            allow_repeats=session.allow_repeats,
            n_jobs=session.n_jobs,
        )
        child._weights_full = dict(session._weights_full)
        child._weights_absent = dict(session._weights_absent)
        child.history = list(session.history)
        child._pending_flow = flow
        branch_mass = sum(
            child._split_by_outcome(child._weights_full, flow)[bit].values()
        )
        if branch_mass <= 0.0:
            continue
        child.observe(bit)
        total += (branch_mass / mass) * _expected_leaf_entropy(child)
    return total


class AdaptiveModelAttacker:
    """Trial-runner-facing wrapper around :class:`AdaptiveSession`.

    Unlike the non-adaptive :class:`~repro.core.attacker.Attacker`
    interface (plan once, decide once), adaptive attackers interleave
    probing and observation; trial runners drive them through
    :meth:`start_session`.
    """

    name = "adaptive"

    def __init__(
        self,
        inference: ReconInference,
        candidates: Optional[Sequence[int]] = None,
        max_probes: int = 3,
        min_gain: float = 1e-9,
        n_jobs: int = 1,
    ) -> None:
        self.inference = inference
        self.candidates = candidates
        self.max_probes = max_probes
        self.min_gain = min_gain
        self.n_jobs = int(n_jobs)

    def start_session(self) -> AdaptiveSession:
        """A fresh session for one trial."""
        return AdaptiveSession(
            self.inference,
            candidates=self.candidates,
            max_probes=self.max_probes,
            min_gain=self.min_gain,
            n_jobs=self.n_jobs,
        )
