"""Parallel cached probe-scoring engine (the Section V inner loop).

Probe selection evaluates ``IG(X̂ | Q_{f_1}, ..., Q_{f_m})`` over many
candidate probe sequences.  The serial reference path
(:func:`repro.core.selection.best_probe_set_serial`) rebuilds every
sequence's outcome table from scratch through dict-based frontier
walks; this module replaces that inner loop with three ideas:

* **shared prefix cache** -- sibling candidates evaluated in canonical
  (ascending) order share long common prefixes; the per-inference cache
  (:meth:`~repro.core.inference.ReconInference.prefix_distribution`,
  keyed by ``(exclusion set, probe prefix)``) evolves each shared prefix
  exactly once;
* **batched vectorised scoring** -- the final probe of every candidate
  sequence only *reads* the cached prefix state (its perturbation feeds
  no further probe), so a block of candidates is scored with one stacked
  matrix product against the coverage matrix instead of per-flow Python
  iteration.  Blocks have a fixed size (:data:`SCORE_BLOCK`) so the
  floating-point shapes -- and therefore the results, bit for bit -- do
  not depend on how the work is chunked across processes;
* **opt-in multiprocessing** -- ``n_jobs > 1`` fans the scoring blocks
  out over a fork-based pool (the inference handle is inherited through
  fork, never pickled).  Selection results are identical for every
  ``n_jobs`` because block shapes are fixed and the final argmax scan
  always runs serially over all gains in canonical candidate order.

Instrumentation counters (chain evolutions, prefix-cache hits/misses,
scored sequences, wall time per stage) are collected in
:class:`ScoringStats` and surfaced on
:class:`~repro.core.selection.ProbeChoice`.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from itertools import combinations
from multiprocessing.context import BaseContext
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.compact_model import CompactModel
from repro.core.gain import binary_entropy
from repro.core.inference import ReconInference
from repro.deprecation import keyword_only
from repro.obs import Instrumentation, get_instrumentation

#: Fixed scoring block size.  Keeping block shapes constant regardless
#: of ``n_jobs`` (and of how many candidates a caller passes) makes the
#: vectorised gains bitwise reproducible across parallel settings.
SCORE_BLOCK = 32

#: Strict-improvement margin of the selection scans; matches the serial
#: reference loops in :mod:`repro.core.selection`.
TIE_EPS = 1e-15

#: Inference-counter key -> exported observability counter name.  The
#: inference counters are totals (and fork workers accumulate their own
#: copies), so the engine exports *deltas* from the parent process only.
_OBS_COUNTER_NAMES = {
    "evolutions": "engine.evolutions",
    "prefix_cache_hits": "engine.cache.hits",
    "prefix_cache_misses": "engine.cache.misses",
    "prefix_extensions": "engine.cache.prefix_extensions",
}


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------
@dataclass
class ScoringStats:
    """Counters and stage timings for one probe-selection run.

    Counter semantics: totals over the lifetime of the underlying
    :class:`~repro.core.inference.ReconInference` (so the window
    evolutions performed at fit time are included), plus any work done
    inside multiprocessing workers on its behalf.
    """

    #: ``T``-step chain evolutions performed (full + per-exclusion).
    evolutions: int = 0
    #: Prefix-cache lookups served from the cache.
    cache_hits: int = 0
    #: Prefix-cache lookups that had to compute their entry.
    cache_misses: int = 0
    #: Single-probe pushes of a cached prefix distribution.
    prefix_extensions: int = 0
    #: Candidate probe sequences scored.
    sequences_scored: int = 0
    #: Stacked scoring blocks evaluated.
    batches: int = 0
    #: Pool batches re-scored serially after a fork-pool failure.
    pool_fallbacks: int = 0
    #: Parallelism the engine was configured with.
    n_jobs: int = 1
    #: Probability kernel the underlying model resolved to
    #: (``dense``, ``sparse``, or ``sparse+numba``).
    kernel: str = "dense"
    #: Simulation/screening path the run resolved to
    #: (``reference`` or ``fastpath``; repro.core.simpath).
    simpath: str = "reference"
    #: Wall-clock seconds per stage (``score``, ``select``, ``total``).
    wall_times: Dict[str, float] = field(default_factory=dict)

    def add_time(self, stage: str, seconds: float) -> None:
        """Accumulate wall time for a named stage."""
        self.wall_times[stage] = self.wall_times.get(stage, 0.0) + seconds

    def rows(self) -> List[List[object]]:
        """``[name, value]`` rows for plain-text tables (CLI output)."""
        rows: List[List[object]] = [
            ["evolutions", self.evolutions],
            ["prefix cache hits", self.cache_hits],
            ["prefix cache misses", self.cache_misses],
            ["prefix extensions", self.prefix_extensions],
            ["sequences scored", self.sequences_scored],
            ["scoring blocks", self.batches],
            ["pool fallbacks", self.pool_fallbacks],
            ["n_jobs", self.n_jobs],
            ["kernel", self.kernel],
            ["simpath", self.simpath],
        ]
        for stage in sorted(self.wall_times):
            rows.append([f"{stage} time (s)", f"{self.wall_times[stage]:.6f}"])
        return rows


# ----------------------------------------------------------------------
# Vectorised gain arithmetic
# ----------------------------------------------------------------------
def _xlogq(x: np.ndarray, p: np.ndarray) -> np.ndarray:
    """``x * log2(p / x)`` elementwise with the ``0 log 0 = 0`` convention.

    Callers guarantee ``0 <= x <= p`` so the ratio is well defined
    wherever ``x > 0``.
    """
    out = np.zeros_like(x)
    mask = x > 0.0
    # log2(p) - log2(x) rather than log2(p / x): the ratio overflows for
    # subnormal x even though the product is finite.
    out[mask] = x[mask] * (np.log2(p[mask]) - np.log2(x[mask]))
    return out


def gains_from_tables(
    prior_absent: float,
    joint_absent: np.ndarray,
    outcome_probs: np.ndarray,
) -> np.ndarray:
    """Vectorised ``IG(X̂ | Q)`` over stacked outcome tables.

    ``outcome_probs`` and ``joint_absent`` are ``(n_outcomes, c)`` arrays
    (one column per candidate); the result is the length-``c`` gain
    vector.  Mirrors :func:`repro.core.gain.information_gain` including
    its clamping of the joint into ``[0, P(Q=q)]`` and the clip at zero.
    """
    p_q = outcome_probs
    p_absent = np.clip(joint_absent, 0.0, p_q)
    p_present = p_q - p_absent
    conditional = (_xlogq(p_absent, p_q) + _xlogq(p_present, p_q)).sum(axis=0)
    return np.maximum(binary_entropy(prior_absent) - conditional, 0.0)


def _score_block_impl(
    inference: ReconInference,
    prefix: Tuple[int, ...],
    flows: Tuple[int, ...],
) -> np.ndarray:
    """Gains of ``prefix + (f,)`` for every ``f`` in one block.

    The shared prefix is fetched (or computed once) from the inference's
    prefix cache; the block's final-probe hit/miss split is one stacked
    matrix product against the coverage matrix.  The final probe's own
    cache perturbation is irrelevant to its score (the outcome is read
    before the perturbation and nothing follows), so no transition is
    applied for it.
    """
    target = inference.target_flow
    weights_full = inference.prefix_distribution(prefix)
    weights_absent = inference.prefix_distribution(prefix, exclusion=(target,))
    coverage = inference.model.coverage_matrix(flows)  # (c, n_states)

    hit_full = weights_full @ coverage.T  # (n_prefix_outcomes, c)
    miss_full = weights_full.sum(axis=1, keepdims=True) - hit_full
    hit_absent = weights_absent @ coverage.T
    miss_absent = weights_absent.sum(axis=1, keepdims=True) - hit_absent

    n_prefix_outcomes = weights_full.shape[0]
    outcome_probs = np.empty((2 * n_prefix_outcomes, len(flows)))
    outcome_probs[0::2] = miss_full
    outcome_probs[1::2] = hit_full
    joint_absent = np.empty_like(outcome_probs)
    joint_absent[0::2] = miss_absent
    joint_absent[1::2] = hit_absent

    return gains_from_tables(
        inference.prior_absent(), joint_absent, outcome_probs
    )


# ----------------------------------------------------------------------
# Multiprocessing plumbing (fork-based; inference inherited, not pickled)
# ----------------------------------------------------------------------
#: One scoring work item: (shared probe prefix, block of final probes).
WorkItem = Tuple[Tuple[int, ...], Tuple[int, ...]]

_WORKER_INFERENCE: Optional[ReconInference] = None


def _init_scoring_worker(inference: ReconInference) -> None:
    global _WORKER_INFERENCE
    _WORKER_INFERENCE = inference


def _scoring_work(item: WorkItem) -> Tuple[np.ndarray, Dict[str, int]]:
    prefix, flows = item
    inference = _WORKER_INFERENCE
    assert inference is not None, "worker used before initialisation"
    before = dict(inference.counters)
    gains = _score_block_impl(inference, prefix, flows)
    delta = {
        key: value - before.get(key, 0)
        for key, value in inference.counters.items()
    }
    return gains, delta


def _fork_context() -> Optional[BaseContext]:
    """The fork multiprocessing context, or ``None`` if unavailable."""
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except Exception:  # pragma: no cover - platform-specific
        pass
    return None


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ProbeScoringEngine:
    """Batched, cached, optionally parallel probe scoring.

    One engine wraps one fitted
    :class:`~repro.core.inference.ReconInference`; the prefix cache (and
    therefore most of the speedup) lives on the inference object, so
    repeated selections against the same inference keep getting cheaper.

    ``n_jobs > 1`` fans scoring blocks out over a fork pool.  Results
    are identical across ``n_jobs`` settings: block shapes are fixed at
    :data:`SCORE_BLOCK` and the winner scan always runs serially over
    all gains in canonical candidate order.
    """

    @keyword_only
    def __init__(
        self,
        inference: ReconInference,
        *,
        n_jobs: int = 1,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.inference = inference
        self.n_jobs = int(n_jobs)
        from repro.core.simpath import resolve_simpath

        self.stats = ScoringStats(
            n_jobs=self.n_jobs,
            kernel=inference.model.kernel.describe(),
            simpath=resolve_simpath().describe(),
        )
        self._worker_deltas: Dict[str, int] = {}
        # Observability backend: explicit argument wins, else whatever
        # `use_instrumentation` installed (the null backend by default).
        self._obs = (
            instrumentation
            if instrumentation is not None
            else get_instrumentation()
        )
        self._obs.metrics.gauge("engine.pool.n_jobs").set(self.n_jobs)
        self._obs_sequences = self._obs.metrics.counter(
            "engine.sequences_scored"
        )
        self._obs_batches = self._obs.metrics.counter("engine.batches")
        #: Last exported value per inference counter (for delta export).
        self._obs_base: Dict[str, int] = {}

    # -- scoring ------------------------------------------------------
    def score_tails(
        self, prefix: Sequence[int], tails: Sequence[int]
    ) -> np.ndarray:
        """Gains of ``prefix + (f,)`` for every tail flow ``f``."""
        items = self._block_items(
            tuple(int(f) for f in prefix), tuple(int(f) for f in tails)
        )
        started = time.perf_counter()
        gains = self._map(items)
        elapsed = time.perf_counter() - started
        self.stats.add_time("score", elapsed)
        if self._obs.enabled and items:
            # Per-batch latency, in ms: one scoring pass over `items`.
            self._obs.metrics.histogram("engine.score.batch_ms").observe(
                elapsed * 1000.0 / len(items)
            )
        self._refresh_counters()
        if not gains:
            return np.zeros(0)
        return np.concatenate(gains)

    def sequence_gain(self, probes: Sequence[int]) -> float:
        """``IG(X̂ | Q_{f_1}, ..., Q_{f_m})`` for one ordered sequence."""
        probes = tuple(int(f) for f in probes)
        if not probes:
            return 0.0
        return float(self.score_tails(probes[:-1], probes[-1:])[0])

    def _block_items(
        self, prefix: Tuple[int, ...], tails: Tuple[int, ...]
    ) -> List[WorkItem]:
        items = [
            (prefix, tails[start:start + SCORE_BLOCK])
            for start in range(0, len(tails), SCORE_BLOCK)
        ]
        self.stats.sequences_scored += len(tails)
        self.stats.batches += len(items)
        self._obs_sequences.inc(len(tails))
        self._obs_batches.inc(len(items))
        return items

    def _map(self, items: Sequence[WorkItem]) -> List[np.ndarray]:
        """Evaluate scoring blocks, serially or across the fork pool.

        If the pool fails mid-batch -- a worker dies, the fork fails,
        or an exception escapes the map -- the whole batch is
        re-scored serially in the parent (the serial path shares the
        parent's prefix cache, so nothing is lost but time).  The
        fallback is counted in ``stats.pool_fallbacks`` and the
        ``engine.pool.fallbacks`` metric.
        """
        jobs = min(self.n_jobs, len(items))
        context = _fork_context() if jobs > 1 else None
        if context is None:
            return self._map_serial(items)
        try:
            with context.Pool(
                jobs,
                initializer=_init_scoring_worker,
                initargs=(self.inference,),
            ) as pool:
                results = pool.map(_scoring_work, items)
        except Exception:
            # Worker death surfaces as BrokenProcessPool / BrokenPipeError
            # / the worker's own exception, depending on how it died.
            # Scoring is pure, so re-running every block serially yields
            # the identical gains the pool would have returned.
            self.stats.pool_fallbacks += 1
            self._obs.metrics.counter("engine.pool.fallbacks").inc()
            return self._map_serial(items)
        for _, delta in results:
            for key, value in delta.items():
                self._worker_deltas[key] = (
                    self._worker_deltas.get(key, 0) + value
                )
        return [gains for gains, _ in results]

    def _map_serial(self, items: Sequence[WorkItem]) -> List[np.ndarray]:
        """Score every block in the parent process."""
        return [
            _score_block_impl(self.inference, prefix, flows)
            for prefix, flows in items
        ]

    def _refresh_counters(self) -> None:
        """Fold inference counters + worker deltas into the stats."""
        merged = dict(self.inference.counters)
        for key, value in self._worker_deltas.items():
            merged[key] = merged.get(key, 0) + value
        self.stats.evolutions = merged.get("evolutions", 0)
        self.stats.cache_hits = merged.get("prefix_cache_hits", 0)
        self.stats.cache_misses = merged.get("prefix_cache_misses", 0)
        self.stats.prefix_extensions = merged.get("prefix_extensions", 0)
        if self._obs.enabled:
            # Export the growth since the previous refresh; the merged
            # totals already include fork-worker deltas, so counting in
            # the parent here loses nothing and double-counts nothing.
            for key, name in _OBS_COUNTER_NAMES.items():
                total = merged.get(key, 0)
                delta = total - self._obs_base.get(key, 0)
                if delta > 0:
                    self._obs.metrics.counter(name).inc(delta)
                self._obs_base[key] = total

    # -- selection ----------------------------------------------------
    def best_single(
        self, candidates: Optional[Sequence[int]] = None
    ) -> Tuple[Tuple[int, ...], float]:
        """Best single probe; candidate order is the tie-break order."""
        if candidates is None:
            candidates = range(self.inference.model.context.n_flows)
        candidates = [int(f) for f in candidates]
        if not candidates:
            raise ValueError("no candidate probes")
        started = time.perf_counter()
        with self._obs.span(
            "engine.select", method="single", n_candidates=len(candidates)
        ):
            gains = self.score_tails((), candidates)
            best_flow = None
            best_gain = -1.0
            for flow, gain in zip(candidates, gains):
                if gain > best_gain + TIE_EPS:
                    best_flow = flow
                    best_gain = float(gain)
            assert best_flow is not None
        self.stats.add_time("total", time.perf_counter() - started)
        return (best_flow,), max(best_gain, 0.0)

    def best_set(
        self,
        n_probes: int,
        candidates: Optional[Sequence[int]] = None,
        method: str = "exhaustive",
    ) -> Tuple[Tuple[int, ...], float]:
        """Best size-``n_probes`` set by joint gain (canonical order)."""
        if n_probes < 1:
            raise ValueError("n_probes must be >= 1")
        if candidates is None:
            candidates = range(self.inference.model.context.n_flows)
        candidates = sorted(set(int(f) for f in candidates))
        if len(candidates) < n_probes:
            raise ValueError(
                f"need {n_probes} candidates, have {len(candidates)}"
            )
        if n_probes == 1:
            return self.best_single(candidates)
        if method == "exhaustive":
            selector = self._best_set_exhaustive
        elif method == "greedy":
            selector = self._best_set_greedy
        else:
            raise ValueError(f"unknown selection method: {method!r}")
        with self._obs.span(
            "engine.select",
            method=method,
            n_probes=n_probes,
            n_candidates=len(candidates),
        ):
            return selector(candidates, n_probes)

    def _best_set_exhaustive(
        self, candidates: List[int], n_probes: int
    ) -> Tuple[Tuple[int, ...], float]:
        started = time.perf_counter()
        # Group the lexicographic combination order by shared prefix:
        # every size-(m-1) prefix is walked once and all of its tail
        # candidates are scored in stacked blocks.
        plan: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        items: List[WorkItem] = []
        for prefix in combinations(candidates, n_probes - 1):
            tails = tuple(c for c in candidates if c > prefix[-1])
            if not tails:
                continue
            plan.append((prefix, tails))
            items.extend(self._block_items(prefix, tails))
        gains = self._map(items)
        self.stats.add_time("score", time.perf_counter() - started)

        scan_started = time.perf_counter()
        best_probes: Optional[Tuple[int, ...]] = None
        best_gain = 0.0
        cursor = 0
        for prefix, tails in plan:
            for start in range(0, len(tails), SCORE_BLOCK):
                block_gains = gains[cursor]
                cursor += 1
                for tail, gain in zip(
                    tails[start:start + SCORE_BLOCK], block_gains
                ):
                    if best_probes is None or gain > best_gain + TIE_EPS:
                        best_probes = prefix + (tail,)
                        best_gain = float(gain)
        assert best_probes is not None
        self.stats.add_time("select", time.perf_counter() - scan_started)
        self.stats.add_time("total", time.perf_counter() - started)
        self._refresh_counters()
        return best_probes, best_gain

    def _best_set_greedy(
        self, candidates: List[int], n_probes: int
    ) -> Tuple[Tuple[int, ...], float]:
        started = time.perf_counter()
        chosen: Tuple[int, ...] = ()
        gain = 0.0
        remaining = list(candidates)
        for _ in range(n_probes):
            # Each remaining flow is evaluated as sorted(chosen + (flow,)).
            # Group flows by that sequence's prefix so flows extending the
            # same prefix score in shared stacked blocks (flows sorting
            # past the current set all share `chosen` itself).
            groups: Dict[Tuple[int, ...], List[Tuple[int, int]]] = {}
            for flow in remaining:
                sequence = tuple(sorted(chosen + (flow,)))
                groups.setdefault(sequence[:-1], []).append(
                    (flow, sequence[-1])
                )
            plan: List[Tuple[List[Tuple[int, int]], int]] = []
            items: List[WorkItem] = []
            for prefix in sorted(groups):
                members = groups[prefix]
                before = len(items)
                items.extend(
                    self._block_items(
                        prefix, tuple(tail for _, tail in members)
                    )
                )
                plan.append((members, len(items) - before))
            results = self._map(items)
            flow_gains: Dict[int, float] = {}
            cursor = 0
            for members, n_blocks in plan:
                values = np.concatenate(results[cursor:cursor + n_blocks])
                cursor += n_blocks
                for (flow, _), value in zip(members, values):
                    flow_gains[flow] = float(value)

            best_flow = None
            best_gain = -1.0
            for flow in remaining:
                candidate_gain = flow_gains[flow]
                if candidate_gain > best_gain + TIE_EPS:
                    best_flow = flow
                    best_gain = candidate_gain
            assert best_flow is not None
            chosen = tuple(sorted(chosen + (best_flow,)))
            remaining.remove(best_flow)
            gain = best_gain
        self.stats.add_time("total", time.perf_counter() - started)
        self._refresh_counters()
        return chosen, gain


# ----------------------------------------------------------------------
# Adaptive-session scoring (conditional gains given observed outcomes)
# ----------------------------------------------------------------------
def _weights_to_vector(
    model: CompactModel, weights: Dict[int, float]
) -> np.ndarray:
    vector = np.zeros(model.n_states)
    index = model.state_index
    for state, weight in weights.items():
        vector[index[state]] = weight
    return vector


#: Shared adaptive-worker state: (model, w_full, w_absent, mass, prior).
_AdaptiveState = Tuple[CompactModel, np.ndarray, np.ndarray, float, float]

_ADAPTIVE_STATE: Optional[_AdaptiveState] = None


def _init_adaptive_worker(
    model: CompactModel,
    w_full: np.ndarray,
    w_absent: np.ndarray,
    mass: float,
    prior: float,
) -> None:
    global _ADAPTIVE_STATE
    _ADAPTIVE_STATE = (model, w_full, w_absent, mass, prior)


def _adaptive_work(flows: Tuple[int, ...]) -> np.ndarray:
    assert _ADAPTIVE_STATE is not None, "worker used before initialisation"
    model, w_full, w_absent, mass, prior = _ADAPTIVE_STATE
    return _conditional_block(model, w_full, w_absent, mass, prior, flows)


def _conditional_block(
    model: CompactModel,
    w_full: np.ndarray,
    w_absent: np.ndarray,
    mass: float,
    prior: float,
    flows: Sequence[int],
) -> np.ndarray:
    """Conditional gains of one candidate block (2-outcome tables)."""
    coverage = model.coverage_matrix(flows)  # (c, n_states)
    hit_full = coverage @ w_full
    hit_absent = coverage @ w_absent
    outcome_probs = np.stack([mass - hit_full, hit_full]) / mass
    joint_absent = np.stack([w_absent.sum() - hit_absent, hit_absent]) / mass
    return gains_from_tables(prior, joint_absent, outcome_probs)


def batched_conditional_gains(
    model: CompactModel,
    weights_full: Dict[int, float],
    weights_absent: Dict[int, float],
    flows: Sequence[int],
    n_jobs: int = 1,
) -> np.ndarray:
    """Conditional ``IG`` about ``X̂`` of each candidate probe, batched.

    Vectorised replacement for the adaptive session's per-flow scan:
    the joint weightings (``P(state ∧ observations)`` and
    ``P(X̂=0 ∧ state ∧ observations)``) are densified once and every
    candidate's hit/miss split is a row of one coverage-matrix product.
    A candidate's own cache perturbation never affects its score (the
    outcome is read before the perturbation), so no transition applies.
    """
    flows = tuple(int(f) for f in flows)
    if not flows:
        return np.zeros(0)
    w_full = _weights_to_vector(model, weights_full)
    mass = float(w_full.sum())
    if mass <= 0.0:
        return np.zeros(len(flows))
    w_absent = _weights_to_vector(model, weights_absent)
    prior = min(float(w_absent.sum()) / mass, 1.0)
    blocks = [
        flows[start:start + SCORE_BLOCK]
        for start in range(0, len(flows), SCORE_BLOCK)
    ]
    context = _fork_context() if min(n_jobs, len(blocks)) > 1 else None
    if context is None:
        return np.concatenate(
            [
                _conditional_block(model, w_full, w_absent, mass, prior, block)
                for block in blocks
            ]
        )
    try:
        with context.Pool(
            min(n_jobs, len(blocks)),
            initializer=_init_adaptive_worker,
            initargs=(model, w_full, w_absent, mass, prior),
        ) as pool:
            return np.concatenate(pool.map(_adaptive_work, blocks))
    except Exception:
        # Same contract as ProbeScoringEngine._map: scoring is pure, so
        # a broken pool degrades to the identical serial computation.
        get_instrumentation().metrics.counter("engine.pool.fallbacks").inc()
        return np.concatenate(
            [
                _conditional_block(model, w_full, w_absent, mass, prior, block)
                for block in blocks
            ]
        )
