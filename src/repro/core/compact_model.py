"""The compact Markov model of the switch cache (Section IV-B).

States are the subsets of the policy's rules of size at most the cache
capacity ``n`` (the paper counts ``sum_{k=1..n} C(|Rules|, k)`` non-empty
states; the empty cache is included as the chain's natural start state).
Each step of duration ``Delta`` carries at most one flow arrival; the
per-flow/no-arrival probabilities come from the normalised Poisson
decomposition (:func:`repro.core.chain.per_flow_step_probabilities`).

Transition semantics per state ``S``:

* **arrival of flow f, hit** -- some cached rule covers ``f``; the set is
  unchanged (the matched rule's timer resets invisibly).
* **arrival of flow f, miss + install** -- no cached rule covers ``f``
  and the policy does; the controller installs the highest-priority
  covering rule ``j``.  If ``|S| = n`` one cached rule is evicted,
  split across the recency estimator's eviction distribution.
* **arrival of flow f, uncovered** -- the policy does not cover ``f``;
  the controller forwards without installing (set unchanged).
* **no arrival** -- set unchanged before expirations.

After the arrival phase, each cached rule that was not matched or
installed this step expires with its per-step timeout hazard from the
recency estimator.  By default at most one expiration is modelled per
step (matching the paper's Figure 5 transitions), with the at-most-one
branch probabilities renormalised; ``multi_expiry=True`` instead
enumerates all expiry subsets as independent events.

Every transition entry is tagged with the flow that caused it (or ``-1``
for the no-arrival event), so the target-excluded substochastic matrix
needed for ``P(X̂ = 0 ∧ Q_f = q)`` (Section V-A) is produced by dropping
exactly one flow's entries.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.core.chain import (
    MatrixLike,
    PowerChain,
    TransitionOperator,
    per_flow_step_probabilities,
    validate_stochastic,
)
from repro.core.context import ModelContext
from repro.core.kernels import ResolvedKernel, resolve_kernel
from repro.core.masks import enumerate_subsets, indices_from_mask, popcount
from repro.core.recency import (
    IndependentRecencyEstimator,
    RecencyEstimator,
)
from repro.flows.policy import Policy
from repro.flows.universe import FlowUniverse
from repro.obs import sanitize

#: Flow tag used for the no-arrival event in transition entries.
NO_FLOW = -1


class CompactModel:
    """Compact chain over cached-rule sets.

    Parameters
    ----------
    policy, universe, delta, cache_size:
        The modelled switch: abstract rules with priorities and step
        timeouts, the flow universe with Poisson rates, the step duration
        ``Delta`` (seconds), and the cache capacity ``n``.
    estimator:
        Recency estimator supplying eviction and timeout probabilities;
        defaults to :class:`IndependentRecencyEstimator`.
    multi_expiry:
        Model simultaneous expirations of several rules in one step
        (exact independent product) instead of the at-most-one
        approximation.
    expire_on_arrival:
        Apply expiration hazards on arrival steps too (timers run every
        step, as in the basic model), not only on no-arrival steps.
    kernel:
        Probability-kernel selection: ``"dense"`` (the reference
        per-state builder, dense matrices), ``"sparse"`` (the vectorised
        builder, CSR matrices and cached-transpose powering), or
        ``"auto"`` (sparse, compiled matvecs when the ``fast`` extra is
        installed).  ``None`` resolves the ambient default
        (:func:`repro.core.kernels.resolve_kernel`).  All kernels
        produce bitwise-identical probabilities; the choice only moves
        the compute.
    """

    def __init__(
        self,
        policy: Policy,
        universe: FlowUniverse,
        delta: float,
        cache_size: int,
        estimator: Optional[RecencyEstimator] = None,
        multi_expiry: bool = False,
        expire_on_arrival: bool = True,
        kernel: Optional[str] = None,
    ) -> None:
        self.context = ModelContext(policy, universe, delta, cache_size)
        self.estimator = estimator or IndependentRecencyEstimator(self.context)
        if self.estimator.context is not self.context:
            # Allow callers to pass an estimator built on an equivalent
            # context; rebind so memoisation keys stay consistent.
            self.estimator.context = self.context
        self.multi_expiry = multi_expiry
        self.expire_on_arrival = expire_on_arrival
        self.kernel: ResolvedKernel = resolve_kernel(kernel)

        self.states: List[int] = enumerate_subsets(
            self.context.n_rules, cache_size
        )
        self.state_index: Dict[int, int] = {
            state: index for index, state in enumerate(self.states)
        }
        self.n_states = len(self.states)

        self._entries: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._entries_sorted: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._coverage_cache: Dict[int, np.ndarray] = {}
        self._probe_matrix_cache: Dict[int, sparse.csr_matrix] = {}
        self._membership_matrix: Optional[np.ndarray] = None
        self._state_popcounts: Optional[np.ndarray] = None
        self._matrix_cache: Dict[Tuple[int, ...], MatrixLike] = {}
        self._operator_cache: Dict[Tuple[int, ...], TransitionOperator] = {}
        self._chain_cache: Dict[
            Tuple[Tuple[int, ...], Optional[bytes]], PowerChain
        ] = {}

    # ------------------------------------------------------------------
    # Public conveniences
    # ------------------------------------------------------------------
    @property
    def policy(self) -> Policy:
        """The underlying abstract policy."""
        return self.context.policy

    @property
    def empty_state_index(self) -> int:
        """Index of the empty-cache state (the standard start state)."""
        return self.state_index[0]

    def state_rules(self, index: int) -> FrozenSet[int]:
        """Cached rule indices of the state at ``index``."""
        return frozenset(indices_from_mask(self.states[index]))

    def state_covers_flow(self, index: int, flow: int) -> bool:
        """Whether the state at ``index`` would answer probe ``f`` with a hit."""
        return self.context.state_covers(flow, self.states[index])

    def eviction_distribution(self, state: int) -> Dict[int, float]:
        """Eviction split for a (bitmask) state, from the estimator."""
        return self.estimator.stats(state).eviction

    # ------------------------------------------------------------------
    # Vectorised probe views (the probe-scoring engine's primitives)
    # ------------------------------------------------------------------
    def state_membership_matrix(self) -> np.ndarray:
        """0/1 matrix ``M[j, i] = 1`` iff rule ``j`` is cached in state ``i``.

        Built once by a single pass over the state list, then every
        state marginal (coverage vectors, rule-presence marginals) is a
        row reduction or matrix product over it instead of a pure-Python
        loop.  Frozen: the matrix is aliased to every caller (runtime
        complement of lint rule MUT001).
        """
        cached = self._membership_matrix
        if cached is None:
            states = np.asarray(self.states, dtype=np.int64)
            bits = np.arange(self.context.n_rules, dtype=np.int64)
            cached = ((states[None, :] >> bits[:, None]) & 1).astype(
                np.float64
            )
            cached.setflags(write=False)
            self._membership_matrix = cached
        if sanitize.is_active():
            sanitize.guard_array("compact.membership_matrix", cached)
        return cached

    def state_popcounts(self) -> np.ndarray:
        """Cached-rule count of every state, as a frozen int vector."""
        cached = self._state_popcounts
        if cached is None:
            cached = np.fromiter(
                (popcount(state) for state in self.states),
                dtype=np.int64,
                count=self.n_states,
            )
            cached.setflags(write=False)
            self._state_popcounts = cached
        if sanitize.is_active():
            sanitize.guard_array("compact.state_popcounts", cached)
        return cached

    def coverage_vector(self, flow: int) -> np.ndarray:
        """0/1 vector over states: 1 where a probe of ``flow`` hits."""
        flow = int(flow)
        cached = self._coverage_cache.get(flow)
        if cached is None:
            covering = self.context.covering[flow]
            if covering:
                membership = self.state_membership_matrix()
                cached = membership[list(covering)].max(axis=0)
            else:
                cached = np.zeros(self.n_states, dtype=np.float64)
            # Frozen: the cached vector is aliased to every caller
            # (runtime complement of lint rule MUT001).
            cached.setflags(write=False)
            self._coverage_cache[flow] = cached
        if sanitize.is_active():
            sanitize.guard_array(f"compact.coverage[{flow}]", cached)
        return cached

    def coverage_matrix(self, flows: Iterable[int]) -> np.ndarray:
        """Stacked coverage vectors, one row per flow."""
        return np.stack([self.coverage_vector(flow) for flow in flows])

    def probe_matrix(self, flow: int) -> sparse.csr_matrix:
        """Row-stochastic matrix of a probe's cache perturbation.

        Row ``i`` spreads state ``i`` over the successor states of
        probing ``flow`` there: identity for hits and uncovered misses,
        the install/evict branching for covered misses (the same
        semantics as :func:`repro.core.probe.apply_probe`).
        """
        flow = int(flow)
        cached = self._probe_matrix_cache.get(flow)
        if cached is None:
            from repro.core.probe import apply_probe

            rows: List[int] = []
            cols: List[int] = []
            probs: List[float] = []
            for row, state in enumerate(self.states):
                for successor, prob in apply_probe(self, state, flow):
                    if prob <= 0.0:
                        continue
                    rows.append(row)
                    cols.append(self.state_index[successor])
                    probs.append(prob)
            cached = sparse.coo_matrix(
                (probs, (rows, cols)), shape=(self.n_states, self.n_states)
            ).tocsr()
            validate_stochastic(cached)
            # Frozen like the transition CSR buffers: the matrix is
            # aliased to every caller (runtime complement of MUT001).
            cached.data.setflags(write=False)
            cached.indices.setflags(write=False)
            cached.indptr.setflags(write=False)
            self._probe_matrix_cache[flow] = cached
        if sanitize.is_active():
            sanitize.guard_array(f"compact.probe[{flow}].data", cached.data)
        return cached

    # ------------------------------------------------------------------
    # Transition construction
    # ------------------------------------------------------------------
    def _state_hazard_data(
        self, pre_state: int
    ) -> Tuple[int, List[Tuple[int, float]]]:
        """Precompute expiry data for a pre-step state.

        Returns ``(certain_mask, candidates)`` where ``certain_mask``
        marks rules that expire deterministically this step (hazard 1,
        e.g. a one-step timeout) unless matched, and ``candidates`` are
        the ``(rule, hazard)`` pairs with hazard strictly inside (0, 1).
        """
        hazards = self.estimator.stats(pre_state).timeout_hazards
        certain_mask = 0
        candidates: List[Tuple[int, float]] = []
        for rule, hazard in hazards.items():
            if hazard >= 1.0:
                certain_mask |= 1 << rule
            elif hazard > 0.0:
                candidates.append((rule, hazard))
        return certain_mask, candidates

    def _expiry_branches_from(
        self,
        interim: int,
        protected: Optional[int],
        certain_mask: int,
        candidates: List[Tuple[int, float]],
    ) -> List[Tuple[int, float]]:
        """Split ``interim`` across expiration outcomes.

        ``protected`` is the rule matched or installed this step (its
        timer was just reset/started, so it cannot expire); hazards come
        from the *pre-step* state, whose recency distribution the timers
        reflect.
        """
        protected_bit = 0 if protected is None else (1 << protected)
        interim &= ~(certain_mask & ~protected_bit)
        live = [
            (rule, hazard)
            for rule, hazard in candidates
            if interim & (1 << rule) and rule != protected
        ]
        if not live:
            return [(interim, 1.0)]
        if self.multi_expiry:
            branches: List[Tuple[int, float]] = [(interim, 1.0)]
            for rule, hazard in live:
                updated: List[Tuple[int, float]] = []
                for state, prob in branches:
                    updated.append((state, prob * (1.0 - hazard)))
                    updated.append((state & ~(1 << rule), prob * hazard))
                branches = updated
            return branches
        # At-most-one-expiry approximation, renormalised.
        keep_all = 1.0
        for _, hazard in live:
            keep_all *= 1.0 - hazard
        weights: List[Tuple[int, float]] = [(interim, keep_all)]
        total = keep_all
        for rule, hazard in live:
            weight = hazard
            for other, other_hazard in live:
                if other != rule:
                    weight *= 1.0 - other_hazard
            weights.append((interim & ~(1 << rule), weight))
            total += weight
        return [(state, prob / total) for state, prob in weights]

    def _expiry_branches(
        self, interim: int, protected: Optional[int], pre_state: int
    ) -> List[Tuple[int, float]]:
        """Back-compat single-call expiry split (used by tests)."""
        certain_mask, candidates = self._state_hazard_data(pre_state)
        return self._expiry_branches_from(
            interim, protected, certain_mask, candidates
        )

    def _arrival_outcomes(
        self, state: int, flow: int
    ) -> List[Tuple[int, Optional[int], float]]:
        """(interim state, protected rule, weight) outcomes of one arrival."""
        ctx = self.context
        matched = ctx.match_in_cache(flow, state)
        if matched is not None:
            return [(state, matched, 1.0)]
        installed = ctx.install_rule[flow]
        if installed is None:
            return [(state, None, 1.0)]
        if popcount(state) < ctx.cache_size:
            return [(state | (1 << installed), installed, 1.0)]
        eviction = self.eviction_distribution(state)
        outcomes: List[Tuple[int, Optional[int], float]] = []
        for victim, prob in eviction.items():
            if prob <= 0.0:
                continue
            next_state = (state & ~(1 << victim)) | (1 << installed)
            outcomes.append((next_state, installed, prob))
        return outcomes

    def _build_entries(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All transition entries as (rows, cols, probs, flow tags)."""
        ctx = self.context
        p_flows, p_none = per_flow_step_probabilities(
            np.asarray(ctx.step_rates)
        )
        rows: List[int] = []
        cols: List[int] = []
        probs: List[float] = []
        tags: List[int] = []
        state_index = self.state_index

        for row, state in enumerate(self.states):
            certain_mask, candidates = self._state_hazard_data(state)
            branch_cache: Dict[
                Tuple[int, Optional[int]], List[Tuple[int, float]]
            ] = {}

            def emit(
                interim: int, protected: Optional[int],
                base_prob: float, tag: int,
            ) -> None:
                if self.expire_on_arrival or tag == NO_FLOW:
                    key = (interim, protected)
                    branches = branch_cache.get(key)
                    if branches is None:
                        branches = self._expiry_branches_from(
                            interim, protected, certain_mask, candidates
                        )
                        branch_cache[key] = branches
                else:
                    branches = ((interim, 1.0),)
                for branch_state, branch_prob in branches:
                    probability = base_prob * branch_prob
                    if probability <= 0.0:
                        continue
                    rows.append(row)
                    cols.append(state_index[branch_state])
                    probs.append(probability)
                    tags.append(tag)

            emit(state, None, p_none, NO_FLOW)
            for flow in range(ctx.n_flows):
                p_flow = float(p_flows[flow])
                if p_flow <= 0.0:
                    continue
                for interim, protected, weight in self._arrival_outcomes(
                    state, flow
                ):
                    emit(interim, protected, p_flow * weight, flow)

        return (
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(probs, dtype=np.float64),
            np.asarray(tags, dtype=np.int64),
        )

    def _ensure_entries(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._entries is None:
            if self.kernel.name == "sparse":
                from repro.core import transition_build

                if transition_build.supports(self):
                    self._entries = transition_build.build_entries(self)
                else:
                    # Non-default estimator or expiry semantics: only the
                    # reference builder implements them.
                    self._entries = self._build_entries()
            else:
                self._entries = self._build_entries()
        return self._entries

    def _sorted_entries(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The transition entries in (row, col) order, memoised.

        A stable lexsort keeps duplicate (row, col) runs in emission
        order; any tag-filtered subset of these arrays is still sorted,
        so every exclusion matrix assembles from them without its own
        sort pass.
        """
        if self._entries_sorted is None:
            rows, cols, probs, tags = self._ensure_entries()
            # Stable argsort of the composite key (row * n + col) -- the
            # same permutation np.lexsort((cols, rows)) produces (the
            # differential suite pins the equality) at ~40% of its cost
            # on this entry volume.  No overflow: rows and cols are
            # bounded by n_states, so the key is < n_states**2 << 2**63.
            order = np.argsort(
                rows * np.int64(self.n_states) + cols, kind="stable"
            )
            sorted_entries = (
                rows[order], cols[order], probs[order], tags[order]
            )
            # Aliased to every caller (transition_matrix, the fast
            # screen's float32 CSRs, reachability): read-only, like the
            # kernel CSR buffers (runtime complement of MUT001).
            for array in sorted_entries:
                array.setflags(write=False)
            if sanitize.is_active():
                sanitize.guard_array(
                    "model.sorted_entries.probs", sorted_entries[2]
                )
            self._entries_sorted = sorted_entries
        return self._entries_sorted

    def _assemble_csr(
        self, rows: np.ndarray, cols: np.ndarray, probs: np.ndarray
    ) -> sparse.csr_matrix:  # repro: noqa[STO001]
        """Build a CSR matrix from (row, col)-sorted COO entries.

        Equivalent to ``coo_matrix(...).tocsr()`` -- consecutive
        duplicates are summed left to right -- minus the sort that
        conversion would redo for every exclusion set.

        Stochasticity is validated by the sole caller,
        ``transition_matrix``: only it knows the excluded flows' mass
        a substochastic matrix is expected to shed.
        """
        n = self.n_states
        if len(rows) == 0:
            return sparse.csr_matrix((n, n), dtype=np.float64)
        boundary = np.empty(len(rows), dtype=bool)
        boundary[0] = True
        boundary[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        starts = np.flatnonzero(boundary)
        data = np.add.reduceat(probs, starts)
        indices = cols[starts].astype(np.int32, copy=False)
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(
            np.bincount(rows[starts], minlength=n), out=indptr[1:],
            dtype=np.int32,
        )
        return sparse.csr_matrix(
            (data, indices, indptr), shape=(n, n)
        )

    @staticmethod
    def _exclusion_key(exclude_flows: Iterable[int]) -> Tuple[int, ...]:
        return tuple(sorted({int(flow) for flow in exclude_flows}))

    def transition_matrix(
        self, exclude_flows: Iterable[int] = ()
    ) -> MatrixLike:
        """The chain's transition matrix, optionally dropping flows.

        With ``exclude_flows`` empty the matrix is row-stochastic; with
        flows excluded it is substochastic (the dropped mass equals the
        per-step probability of an excluded flow arriving), implementing
        the Section V-A construction for ``P(X̂ = 0 ∧ ...)``.

        The sparse kernels return a ``csr_matrix`` whose buffers are
        frozen; the dense kernel a read-only ``np.ndarray``.  Matrices
        are memoised per exclusion set and aliased to every caller.
        """
        key = self._exclusion_key(exclude_flows)
        cached = self._matrix_cache.get(key)
        if cached is not None:
            return cached
        rows, cols, probs, tags = self._sorted_entries()
        if key:
            if len(key) == 1:
                keep = tags != key[0]
            else:
                keep = ~np.isin(tags, key)
            rows, cols, probs = rows[keep], cols[keep], probs[keep]
        # Entries arrive (row, col)-sorted, so the CSR assembles without
        # a per-exclusion sort: duplicate (row, col) runs collapse via
        # reduceat and the structure comes straight from the run starts.
        # Sorting once per model (not once per exclusion set) is what
        # lets many-target callers -- the recon service above all --
        # re-exclude cheaply.  The dense kernel densifies *after* this
        # so both kernels sum duplicates in the identical order
        # (bit-equal matrices).
        csr = self._assemble_csr(rows, cols, probs)
        matrix: MatrixLike
        if self.kernel.name == "dense":
            matrix = csr.toarray()
            matrix.setflags(write=False)
        else:
            matrix = csr
            matrix.data.setflags(write=False)
            matrix.indices.setflags(write=False)
            matrix.indptr.setflags(write=False)
        validate_stochastic(matrix, substochastic=bool(key))
        self._matrix_cache[key] = matrix
        if sanitize.is_active():
            buffer = matrix if self.kernel.name == "dense" else matrix.data
            sanitize.guard_array(f"compact.transition[{key}]", buffer)
        return matrix

    def transition_operator(
        self, exclude_flows: Iterable[int] = ()
    ) -> TransitionOperator:
        """Memoised one-step operator ``d -> d @ A`` per exclusion set.

        Hoists the sparse transpose (and, under the compiled kernel, the
        jit dispatch) out of repeated powering.
        """
        key = self._exclusion_key(exclude_flows)
        operator = self._operator_cache.get(key)
        if operator is None:
            operator = TransitionOperator(
                self.transition_matrix(key), compiled=self.kernel.compiled
            )
            self._operator_cache[key] = operator
        return operator

    def power_chain(
        self,
        exclude_flows: Iterable[int] = (),
        start: Optional[np.ndarray] = None,
    ) -> PowerChain:
        """Memoised incremental power chain per (exclusion set, start).

        ``start=None`` means the model's initial distribution -- the
        common case, shared across every inference fitted on this model,
        so re-windowing (fig6/fig7 sweeps, the window ablation) pays
        only the step delta instead of a full re-powering.
        """
        key = (
            self._exclusion_key(exclude_flows),
            None if start is None else np.asarray(start).tobytes(),
        )
        chain = self._chain_cache.get(key)
        if chain is None:
            initial = self.initial_distribution() if start is None else start
            chain = PowerChain(self.transition_operator(key[0]), initial)
            self._chain_cache[key] = chain
        return chain

    # ------------------------------------------------------------------
    # Distribution evolution
    # ------------------------------------------------------------------
    def initial_distribution(
        self, state: Optional[FrozenSet[int]] = None
    ) -> np.ndarray:
        """Point distribution at ``state`` (default: empty cache)."""
        from repro.core.chain import point_distribution
        from repro.core.masks import mask_from_indices

        mask = 0 if state is None else mask_from_indices(state)
        return point_distribution(self.n_states, self.state_index[mask])

    def distribution_after(
        self,
        steps: int,
        initial: Optional[np.ndarray] = None,
        exclude_flows: Iterable[int] = (),
    ) -> np.ndarray:
        """``I_T = A^T I_0`` (Eqn. 8), row-vector convention.

        Default-start evolutions go through the memoised power chain, so
        repeated calls with growing ``steps`` pay only the delta; the
        result is always a fresh writable copy.
        """
        if initial is None:
            chain = self.power_chain(exclude_flows)
            return np.array(chain.advance(steps))
        operator = self.transition_operator(exclude_flows)
        return operator.power(np.asarray(initial, dtype=np.float64), steps)

    def rule_presence_marginals(self, distribution: np.ndarray) -> np.ndarray:
        """``P(rule_j in cache)`` for each rule, under a state distribution."""
        membership = self.state_membership_matrix()
        return membership @ np.asarray(distribution, dtype=np.float64)

    def occupancy_distribution(self, distribution: np.ndarray) -> np.ndarray:
        """Distribution of the number of cached rules.

        ``bincount`` accumulates the weights in state order, so the
        result is bit-identical to the original per-state loop.
        """
        return np.bincount(
            self.state_popcounts(),
            weights=np.asarray(distribution, dtype=np.float64),
            minlength=self.context.cache_size + 1,
        )
