"""Entropy and information gain (Section V).

All entropies are in bits.  The conventions match the paper: ``X̂`` is
the indicator of the target flow having occurred within the detection
window, ``Q_f`` (or a tuple of them) the probe outcome(s), and the
attacker maximises ``IG(X̂ | Q) = H(X̂) - H(X̂ | Q)``.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence, Tuple

#: Outcome key type: tuple of 0/1 probe results.
Outcome = Tuple[int, ...]


def _plogp(p: float) -> float:
    """``-p log2 p`` with the ``0 log 0 = 0`` convention."""
    if p <= 0.0:
        return 0.0
    return -p * math.log2(p)


def entropy(probabilities: Sequence[float]) -> float:
    """Shannon entropy of a distribution, in bits.

    Tolerates tiny negative values from floating-point round-off and an
    overall normalisation drift below 1e-6.
    """
    total = 0.0
    mass = 0.0
    for p in probabilities:
        if p < -1e-12:
            raise ValueError(f"negative probability: {p}")
        p = max(p, 0.0)
        mass += p
        total += _plogp(p)
    if abs(mass - 1.0) > 1e-6:
        raise ValueError(f"probabilities sum to {mass}, expected 1")
    return total


def binary_entropy(p: float) -> float:
    """Entropy of a Bernoulli(p) variable, in bits."""
    if not -1e-12 <= p <= 1.0 + 1e-12:
        raise ValueError(f"probability out of range: {p}")
    p = min(max(p, 0.0), 1.0)
    return _plogp(p) + _plogp(1.0 - p)


def conditional_entropy_binary(
    joint_absent: Mapping[Outcome, float],
    outcome_probs: Mapping[Outcome, float],
) -> float:
    """``H(X̂ | Q)`` for binary ``X̂`` from joint outcome tables.

    ``outcome_probs[q] = P(Q = q)`` and ``joint_absent[q] =
    P(X̂ = 0 ∧ Q = q)``; the ``X̂ = 1`` joint follows by complement.
    Outcomes with zero probability contribute nothing.
    """
    total = 0.0
    for outcome, p_q in outcome_probs.items():
        if p_q <= 0.0:
            continue
        p_absent = min(max(joint_absent.get(outcome, 0.0), 0.0), p_q)
        p_present = p_q - p_absent
        # sum over x of P(x, q) * log(1 / P(x | q))
        for p_joint in (p_absent, p_present):
            if p_joint <= 0.0:
                continue
            total += p_joint * math.log2(p_q / p_joint)
    return total


def information_gain(
    prior_absent: float,
    joint_absent: Mapping[Outcome, float],
    outcome_probs: Mapping[Outcome, float],
) -> float:
    """``IG(X̂ | Q) = H(X̂) - H(X̂ | Q)``, clipped at zero.

    Mathematically the gain is non-negative; tiny negative values can
    appear through the model's approximations and are clipped so probe
    ranking stays sane.
    """
    gain = binary_entropy(prior_absent) - conditional_entropy_binary(
        joint_absent, outcome_probs
    )
    return max(gain, 0.0)
