"""Simulation/screening path selection (reference vs. fast path).

The reproduction keeps two implementations of the hot execution paths
that sit *outside* the probability kernels (those are selected by
:mod:`repro.core.kernels`):

* ``reference`` -- the original implementations: linear-scan
  :class:`~repro.simulator.flowtable.FlowTable` lookups, one scheduled
  event per background packet, and exact float64 screening of every
  sampled candidate configuration.
* ``fastpath`` -- the optimized implementations: a priority-bucketed
  exact-match flow-table index with a lazy-deletion expiry heap, batched
  background-traffic delivery merged with the event heap, and a
  margin-certified float32 screening pre-pass that falls back to the
  exact float64 screen whenever its error bounds cannot certify the
  verdict.  Every accepted candidate is re-confirmed by the exact
  screen, so accepted results are bit-identical to ``reference``.
* ``auto`` -- ``fastpath``.  The fast path degrades gracefully (e.g. the
  native screening kernel falls back to numpy when no C compiler is
  available), so ``auto`` is always safe to request.

The resolved path is plumbed into experiment provenance
(ResultDocument/ScoringStats) so persisted results record which path
produced them, and the fastpath==reference differential suite
(tests/experiments/test_simpath_diff.py) pins the two paths to
bit-identical results over the headline experiments.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

#: Simulation-path names accepted by params, the CLI, and the service.
SIMPATH_CHOICES = ("reference", "fastpath", "auto")

#: Environment override for the default path (same choices).
SIMPATH_ENV_VAR = "REPRO_SIMPATH"


@dataclass(frozen=True)
class ResolvedSimPath:
    """A concrete simulation-path choice after ``auto`` resolution."""

    #: What the caller asked for ("reference", "fastpath", or "auto").
    requested: str
    #: The implementation actually used.
    name: str

    @property
    def fast(self) -> bool:
        """Whether the optimized implementations are active."""
        return self.name == "fastpath"

    def describe(self) -> str:
        """Human/provenance label, e.g. ``"fastpath"``."""
        return self.name


def resolve_simpath(name: Optional[str] = None) -> ResolvedSimPath:
    """Resolve a path request (or the ambient default) to an impl.

    ``None`` consults :data:`SIMPATH_ENV_VAR` and falls back to
    ``"auto"``.  ``auto`` also defers to a concrete (non-``auto``)
    :data:`SIMPATH_ENV_VAR` value -- params carry ``simpath="auto"`` by
    default, and the env var must be able to flip such runs to the
    reference path (the differential suite and ``--bench-compare`` rely
    on it) -- and otherwise means the fast path.
    """
    requested = name if name is not None else _default_simpath_name()
    if requested not in SIMPATH_CHOICES:
        raise ValueError(
            f"unknown simpath {requested!r}; choose from {SIMPATH_CHOICES}"
        )
    if requested == "auto":
        ambient = _default_simpath_name()
        if ambient not in SIMPATH_CHOICES:
            raise ValueError(
                f"unknown {SIMPATH_ENV_VAR} value {ambient!r}; "
                f"choose from {SIMPATH_CHOICES}"
            )
        resolved = "fastpath" if ambient == "auto" else ambient
        return ResolvedSimPath("auto", resolved)
    return ResolvedSimPath(requested, requested)


def _default_simpath_name() -> str:
    value = os.environ.get(SIMPATH_ENV_VAR, "").strip()
    return value if value else "auto"


@contextmanager
def simpath_override(name: str) -> Iterator[None]:
    """Temporarily force the ambient default path (tests/benchmarks)."""
    resolve_simpath(name)  # validate eagerly
    previous = os.environ.get(SIMPATH_ENV_VAR)
    os.environ[SIMPATH_ENV_VAR] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SIMPATH_ENV_VAR, None)
        else:
            os.environ[SIMPATH_ENV_VAR] = previous
