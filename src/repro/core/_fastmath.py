"""Optional compiled (numba) inner kernels.

numba ships via the ``fast`` extra (``pip install .[fast]``) and is
never required: every caller falls back to the pure numpy/scipy path
when :data:`HAVE_NUMBA` is false.  The compiled CSR matvec mirrors
scipy's row-sequential accumulation order exactly, so the compiled and
numpy paths agree bit-for-bit (tests/core/test_sparse_dense_diff.py).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only when the fast extra is present
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - default environment
    numba = None
    HAVE_NUMBA = False


if HAVE_NUMBA:  # pragma: no cover - exercised only with the fast extra

    @numba.njit(cache=True)
    def _csr_power_jit(indptr, indices, data, vec, steps):
        n = vec.shape[0]
        current = vec.copy()
        scratch = np.empty(n, dtype=np.float64)
        for _ in range(steps):
            for i in range(n):
                acc = 0.0
                for k in range(indptr[i], indptr[i + 1]):
                    acc += data[k] * current[indices[k]]
                scratch[i] = acc
            current, scratch = scratch, current
        return current.copy()


def csr_power(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    vec: np.ndarray,
    steps: int,
) -> np.ndarray:
    """``steps`` fused matvecs ``vec <- M @ vec`` for CSR ``M``.

    Only callable when :data:`HAVE_NUMBA` is true; the ping-pong buffers
    avoid the per-step allocation of the scipy path.
    """
    if not HAVE_NUMBA:  # pragma: no cover - guarded by callers
        raise RuntimeError("numba is not installed (pip install .[fast])")
    return _csr_power_jit(indptr, indices, data, vec, steps)
