"""Ablation: recency-estimator fidelity vs cost.

DESIGN.md calls out the eviction/timeout estimation as the compact
model's approximation point: the paper's exact sum over injective
recency functions is exponential.  This benchmark quantifies, on an
instance small enough for exact enumeration, how close the Monte Carlo
sampler and the closed-form independence approximation come -- and what
each costs.
"""

import time

from repro.core.context import ModelContext
from repro.core.masks import mask_from_indices
from repro.core.recency import (
    ExactRecencyEstimator,
    IndependentRecencyEstimator,
    MonteCarloRecencyEstimator,
)
from repro.experiments.report import format_table
from repro.flows.flowid import FlowId
from repro.flows.policy import ModelRule, Policy
from repro.flows.universe import FlowUniverse


def _context():
    """Three overlapping rules, timeouts ~8-12 steps, cache 3 (full)."""
    policy = Policy(
        [
            ModelRule(0, "r0", frozenset({0}), 8, 30),
            ModelRule(1, "r1", frozenset({0, 1}), 12, 20),
            ModelRule(2, "r2", frozenset({2, 3}), 10, 10),
        ]
    )
    universe = FlowUniverse(
        tuple(FlowId(src=i, dst=99) for i in range(4)),
        (0.35, 0.5, 0.25, 0.4),
    )
    return ModelContext(policy, universe, delta=0.25, cache_size=3)


def test_bench_ablation_estimators(benchmark, print_section):
    context = _context()
    state = mask_from_indices([0, 1, 2])

    def run_all():
        results = {}
        for name, estimator in (
            ("exact", ExactRecencyEstimator(context, max_assignments=10**7)),
            ("montecarlo", MonteCarloRecencyEstimator(context, 4000, seed=7)),
            ("independent", IndependentRecencyEstimator(context)),
        ):
            start = time.perf_counter()
            stats = estimator.stats(state)
            results[name] = (stats, time.perf_counter() - start)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    exact_stats, _ = results["exact"]
    rows = []
    for name, (stats, elapsed) in results.items():
        eviction_error = max(
            abs(stats.eviction[rule] - exact_stats.eviction[rule])
            for rule in exact_stats.eviction
        )
        hazard_error = max(
            abs(
                stats.timeout_hazards[rule]
                - exact_stats.timeout_hazards[rule]
            )
            for rule in exact_stats.timeout_hazards
        )
        rows.append([name, elapsed * 1e3, eviction_error, hazard_error])
    print_section(
        format_table(
            ["estimator", "time (ms)", "max |evict err|", "max |hazard err|"],
            rows,
            title=(
                "Recency-estimator ablation (3 cached rules, "
                "t = 8/12/10 steps; errors vs exact enumeration)"
            ),
        )
    )

    mc_stats, _ = results["montecarlo"]
    indep_stats, indep_time = results["independent"]
    _, exact_time = results["exact"]
    for rule in exact_stats.eviction:
        assert abs(
            mc_stats.eviction[rule] - exact_stats.eviction[rule]
        ) < 0.05
        assert abs(
            indep_stats.eviction[rule] - exact_stats.eviction[rule]
        ) < 0.2
    # The approximation must be dramatically cheaper than enumeration.
    assert indep_time < exact_time


def test_bench_estimator_effect_on_attack(benchmark, print_section):
    """Same probe choice under independent vs Monte Carlo estimators."""
    from repro.core.compact_model import CompactModel
    from repro.core.inference import ReconInference
    from repro.core.selection import rank_probes

    context = _context()

    def compare():
        choices = {}
        for name in ("independent", "montecarlo"):
            from repro.core.recency import make_estimator

            model = CompactModel(
                context.policy,
                context.universe,
                context.delta,
                context.cache_size,
            )
            if name == "montecarlo":
                model.estimator = make_estimator(
                    "montecarlo", model.context, n_samples=800, seed=3
                )
            inference = ReconInference(model, target_flow=0, window_steps=60)
            choices[name] = rank_probes(inference)
        return choices

    choices = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        [
            name,
            ranked[0].probes[0],
            ranked[0].gain,
        ]
        for name, ranked in choices.items()
    ]
    print_section(
        format_table(
            ["estimator", "optimal probe", "gain (bits)"],
            rows,
            title="Estimator choice barely moves probe selection",
        )
    )
    assert (
        choices["independent"][0].probes == choices["montecarlo"][0].probes
    )
