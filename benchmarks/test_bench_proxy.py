"""Fast fixed-scale proxy for the headline experiment's compute.

The headline benchmark regenerates the whole Figure 6 experiment --
minutes of rejection-sampled configurations.  This proxy pins a batch
of configurations instead and measures only the kernel-dominated work
each one triggers: compact-model construction, transition-matrix
assembly, window-length power chains, and optimal-probe selection,
followed by a handful of decision trials.

Everything is pinned -- seeds, trial mode, batch size -- and nothing
reads ``REPRO_SCALE``/``REPRO_FULL``/``REPRO_MODE``, so two runs on the
same machine measure the same work and are directly comparable.  That
makes it the benchmark ``--bench-compare`` gates against the stored
``BENCH_headline.json`` baseline (see ``make bench-smoke``).
"""

from __future__ import annotations

from repro.experiments.harness import ConfigHarness
from repro.experiments.params import ExperimentParams
from repro.flows.config import ConfigParams

#: Pinned configuration seeds.  Spread out so the batch covers a range
#: of policy shapes (rule counts, coverage overlap, cache pressure).
PROXY_SEEDS = (11, 97, 211, 311, 433, 557, 653, 769, 883, 907, 1013, 1103)

PROXY_TRIALS = 8

#: Pinned seeds for the simulator proxy (network-mode trials).
PROXY_SIM_SEEDS = (23, 151, 389, 677)

PROXY_SIM_TRIALS = 60


def run_proxy():
    """Build and exercise every pinned configuration; return results."""
    results = []
    for seed in PROXY_SEEDS:
        params = ExperimentParams(
            n_trials=PROXY_TRIALS, seed=seed, trial_mode="table"
        )
        harness = ConfigHarness.sample(params)
        results.append(harness.run_trials())
    return results


def test_bench_proxy(benchmark, bench_compare):
    results = benchmark.pedantic(run_proxy, rounds=1, iterations=1)
    assert len(results) == len(PROXY_SEEDS)
    for result in results:
        for accuracy in result.accuracies.values():
            assert 0.0 <= accuracy <= 1.0
    bench_compare(benchmark)


def run_simulator_proxy():
    """Network-mode trials over pinned configurations.

    Unlike :func:`run_proxy` (kernel-dominated table replay), this
    batch spends its time inside the packet-level simulator: background
    arrival scheduling, switch lookups, controller round trips, and
    flow-table expiry.  ``cache_size`` is doubled over the paper's
    default so the table holds enough live entries for the indexed
    fast path's lookup and expiry structures to matter -- the linear
    scan degrades with table occupancy, the index does not.
    """
    results = []
    for seed in PROXY_SIM_SEEDS:
        params = ExperimentParams(
            config=ConfigParams(n_rules=14, cache_size=12),
            n_trials=PROXY_SIM_TRIALS,
            seed=seed,
            trial_mode="network",
        )
        harness = ConfigHarness.sample(params)
        results.append(harness.run_trials())
    return results


def test_bench_proxy_simulator(benchmark, bench_compare):
    results = benchmark.pedantic(run_simulator_proxy, rounds=1, iterations=1)
    assert len(results) == len(PROXY_SIM_SEEDS)
    for result in results:
        for accuracy in result.accuracies.values():
            assert 0.0 <= accuracy <= 1.0
    bench_compare(benchmark)
