"""Extension benchmark: adaptive vs non-adaptive probing.

The paper's attacker fixes its ``m`` probes in advance (Section V-B).
The adaptive attacker in :mod:`repro.core.adaptive` picks each probe
after seeing the previous outcome.  This benchmark compares, on
screened configurations, the model-predicted information extracted by
both policies at equal probe budgets, and their measured accuracy over
simulated trials.
"""

import numpy as np

from benchmarks.conftest import experiment_params
from repro.core.adaptive import AdaptiveModelAttacker, AdaptiveSession
from repro.core.selection import best_probe_set
from repro.experiments.harness import sample_screened_harnesses
from repro.experiments.params import bench_scale
from repro.experiments.report import format_table
from repro.experiments.trials import run_adaptive_trial


def test_bench_adaptive_vs_nonadaptive(benchmark, print_section):
    params = experiment_params(seed=505).with_absence_range(0.5, 0.95)
    n_configs = max(2, round(8 * bench_scale() * 2))
    n_trials = max(30, int(100 * bench_scale() * 2))
    budget = 2

    def run():
        harnesses = sample_screened_harnesses(params, n_configs)
        rows = []
        for index, harness in enumerate(harnesses):
            nonadaptive = best_probe_set(
                harness.inference, budget, method="greedy"
            )
            session = AdaptiveSession(
                harness.inference, max_probes=budget
            )
            adaptive_info = session.expected_information()

            attacker = AdaptiveModelAttacker(
                harness.inference, max_probes=budget
            )
            rng = np.random.default_rng(1000 + index)
            correct = 0
            for _ in range(n_trials):
                seed = int(rng.integers(2**62))
                trial = run_adaptive_trial(
                    harness.config, attacker, seed, mode="table"
                )
                correct += trial.correct("adaptive")
            rows.append(
                [
                    index,
                    nonadaptive.gain,
                    adaptive_info,
                    correct / n_trials,
                    harness.run_trials(n_trials=n_trials).accuracies["model"],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section(
        format_table(
            [
                "config",
                f"IG nonadaptive (m={budget})",
                f"info adaptive (m={budget})",
                "adaptive acc",
                "model (1-probe) acc",
            ],
            rows,
            title=(
                "Adaptive vs non-adaptive probing on screened "
                f"configurations ({n_trials} trials each)"
            ),
        )
    )

    for row in rows:
        # Myopic adaptivity tracks the greedy non-adaptive plan; tiny
        # deficits are possible because the non-adaptive plan's sorted
        # execution order can exploit a cache-perturbation ordering the
        # myopic policy never considers (see repro.core.adaptive).
        assert row[2] >= row[1] - 0.01
        assert 0.0 <= row[3] <= 1.0
