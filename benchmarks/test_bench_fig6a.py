"""Figure 6a: average accuracy vs P(absence of target), model vs naive.

Paper shape to reproduce: both attackers' accuracy rises with the
target's probability of absence; the model attacker matches or beats the
naive attacker, by ~2% on average with the gap widening at high absence.
Configurations are screened for detector viability and for the optimal
probe differing from the target (the case where the two attackers
actually behave differently).
"""

from benchmarks.conftest import get_fig6_result
from repro.experiments.report import format_series


def test_bench_fig6a(benchmark, print_section):
    result = benchmark.pedantic(get_fig6_result, rounds=1, iterations=1)

    series = result.accuracy_series()
    print_section(
        format_series(
            "P(absent)",
            result.bin_centers(),
            series,
            title=(
                "Figure 6a -- average accuracy vs probability of absence "
                "of the target flow (optimal probe != target)"
            ),
        )
    )

    # Shape assertions (paper: model >= naive on average).
    model = [v for v in series["model"] if v is not None]
    naive = [v for v in series["naive"] if v is not None]
    assert model, "no populated bins"
    mean_model = sum(model) / len(model)
    mean_naive = sum(naive) / len(naive)
    assert mean_model >= mean_naive - 0.05
    for value in model + naive:
        assert 0.0 <= value <= 1.0
