"""Shared benchmark scaffolding.

Each experiment benchmark regenerates one of the paper's evaluation
artifacts and prints it in the paper's terms (series, CDFs, or
paper-vs-measured tables).  Experiment sizes scale with the environment:

* default           -- reduced scale, minutes per benchmark;
* ``REPRO_SCALE=x`` -- explicit scale factor on configuration counts;
* ``REPRO_FULL=1``  -- the paper's 100-configuration scale (hours);
* ``REPRO_MODE=network`` -- run trials on the packet-level simulator
  instead of the fast (semantically identical) flow-table replay.

Heavy experiments run exactly once inside ``benchmark.pedantic``; the
timing numbers pytest-benchmark reports for them are wall-clock costs
of the experiment, not statistical micro-benchmarks.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.params import ExperimentParams, bench_scale


def trial_mode() -> str:
    """Trial fidelity for experiment benchmarks."""
    return os.environ.get("REPRO_MODE", "table")


def experiment_params(seed: int, n_trials: int = 60) -> ExperimentParams:
    """Paper-setup parameters at the benchmark scale."""
    return ExperimentParams(
        n_trials=n_trials,
        seed=seed,
        trial_mode=trial_mode(),
    )


def scaled_configs(per_bin_full: int) -> int:
    """Configurations per bin, scaled from the paper's count."""
    return max(1, round(per_bin_full * bench_scale()))


from repro.experiments.params import (  # noqa: E402
    VIABLE_FIG6_BINS as FIG6_BINS,
    VIABLE_FIG7_BINS as FIG7_BINS,
)

#: Paper-scale configurations per bin (scaled by ``bench_scale``).
FIG6_PER_BIN_FULL = 50
FIG7_PER_BIN_FULL = 33

_experiment_cache = {}


def get_fig6_result():
    """The Figure 6 experiment, shared by fig6a/fig6b/headline benches."""
    key = ("fig6", bench_scale(), trial_mode())
    if key not in _experiment_cache:
        from repro.experiments.fig6 import run_fig6

        _experiment_cache[key] = run_fig6(
            experiment_params(seed=2017),
            bins=FIG6_BINS,
            configs_per_bin=scaled_configs(FIG6_PER_BIN_FULL),
        )
    return _experiment_cache[key]


def get_fig7_result():
    """The Figure 7 experiment, shared by fig7a/fig7b benches."""
    key = ("fig7", bench_scale(), trial_mode())
    if key not in _experiment_cache:
        from repro.experiments.fig7 import run_fig7

        _experiment_cache[key] = run_fig7(
            experiment_params(seed=1848),
            bins=FIG7_BINS,
            configs_per_bin=scaled_configs(FIG7_PER_BIN_FULL),
        )
    return _experiment_cache[key]


@pytest.fixture
def print_section(capsys):
    """Print a benchmark's report outside pytest's capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print
