"""Shared benchmark scaffolding.

Each experiment benchmark regenerates one of the paper's evaluation
artifacts and prints it in the paper's terms (series, CDFs, or
paper-vs-measured tables).  Experiment sizes scale with the environment:

* default           -- reduced scale, minutes per benchmark;
* ``REPRO_SCALE=x`` -- explicit scale factor on configuration counts;
* ``REPRO_FULL=1``  -- the paper's 100-configuration scale (hours);
* ``REPRO_MODE=network`` -- run trials on the packet-level simulator
  instead of the fast (semantically identical) flow-table replay.

Heavy experiments run exactly once inside ``benchmark.pedantic``; the
timing numbers pytest-benchmark reports for them are wall-clock costs
of the experiment, not statistical micro-benchmarks.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.params import ExperimentParams, bench_scale

#: Stored pytest-benchmark baseline the ``--bench-compare`` gate reads.
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_headline.json"

#: Allowed slowdown of a compared benchmark over its stored baseline
#: before ``--bench-compare`` fails the run.
REGRESSION_BUDGET = 0.20


def pytest_addoption(parser):
    parser.addoption(
        "--bench-compare",
        action="store",
        nargs="?",
        const=str(BASELINE_PATH),
        default=None,
        metavar="BASELINE_JSON",
        help=(
            "compare fast benchmarks against a stored pytest-benchmark "
            "JSON baseline (default BENCH_headline.json) and fail when "
            f"a benchmark regresses by more than {REGRESSION_BUDGET:.0%}"
        ),
    )


def _machine_fingerprint(machine_info) -> tuple:
    """The (cpu brand, cpu count) pair that makes timings comparable."""
    cpu = machine_info.get("cpu", {}) if isinstance(machine_info, dict) else {}
    return (cpu.get("brand_raw"), cpu.get("count"))


@pytest.fixture
def bench_compare(request, print_section):
    """Gate a benchmark's mean against the stored baseline.

    Returns a callable ``check(benchmark)`` to invoke *after* the
    benchmark ran.  A no-op unless ``--bench-compare`` was given.  The
    comparison only holds on the machine that produced the baseline, so
    a differing CPU fingerprint downgrades the gate to a notice instead
    of producing a meaningless pass or fail.
    """
    path = request.config.getoption("--bench-compare")

    def check(benchmark) -> None:
        if path is None:
            return
        baseline = json.loads(Path(path).read_text())
        name = benchmark.name
        entry = next(
            (
                b
                for b in baseline.get("benchmarks", [])
                if b.get("name") == name
            ),
            None,
        )
        if entry is None:
            pytest.skip(f"{path} has no baseline entry for {name}")
        stored_mean = entry["stats"]["mean"]
        measured_mean = benchmark.stats.stats.mean
        session = getattr(request.config, "_benchmarksession", None)
        current = getattr(session, "machine_info", None) or {}
        stored_print = _machine_fingerprint(baseline.get("machine_info", {}))
        current_print = _machine_fingerprint(current)
        report = (
            f"bench-compare {name}: baseline {stored_mean:.3f}s, "
            f"measured {measured_mean:.3f}s "
            f"({measured_mean / stored_mean - 1.0:+.1%})"
        )
        if stored_print != current_print:
            print_section(
                f"{report}\n"
                f"machine differs from baseline ({current_print} vs "
                f"{stored_print}); comparison is informational only"
            )
            return
        print_section(report)
        assert measured_mean <= stored_mean * (1.0 + REGRESSION_BUDGET), (
            f"{name} regressed beyond the {REGRESSION_BUDGET:.0%} budget: "
            f"{measured_mean:.3f}s vs baseline {stored_mean:.3f}s"
        )

    return check


def trial_mode() -> str:
    """Trial fidelity for experiment benchmarks."""
    return os.environ.get("REPRO_MODE", "table")


def experiment_params(seed: int, n_trials: int = 60) -> ExperimentParams:
    """Paper-setup parameters at the benchmark scale."""
    return ExperimentParams(
        n_trials=n_trials,
        seed=seed,
        trial_mode=trial_mode(),
    )


def scaled_configs(per_bin_full: int) -> int:
    """Configurations per bin, scaled from the paper's count."""
    return max(1, round(per_bin_full * bench_scale()))


from repro.experiments.params import (  # noqa: E402
    VIABLE_FIG6_BINS as FIG6_BINS,
    VIABLE_FIG7_BINS as FIG7_BINS,
)

#: Paper-scale configurations per bin (scaled by ``bench_scale``).
FIG6_PER_BIN_FULL = 50
FIG7_PER_BIN_FULL = 33

_experiment_cache = {}


def get_fig6_result():
    """The Figure 6 experiment, shared by fig6a/fig6b/headline benches."""
    key = ("fig6", bench_scale(), trial_mode())
    if key not in _experiment_cache:
        from repro.experiments.fig6 import run_fig6

        _experiment_cache[key] = run_fig6(
            experiment_params(seed=2017),
            bins=FIG6_BINS,
            configs_per_bin=scaled_configs(FIG6_PER_BIN_FULL),
        )
    return _experiment_cache[key]


def get_fig7_result():
    """The Figure 7 experiment, shared by fig7a/fig7b benches."""
    key = ("fig7", bench_scale(), trial_mode())
    if key not in _experiment_cache:
        from repro.experiments.fig7 import run_fig7

        _experiment_cache[key] = run_fig7(
            experiment_params(seed=1848),
            bins=FIG7_BINS,
            configs_per_bin=scaled_configs(FIG7_PER_BIN_FULL),
        )
    return _experiment_cache[key]


@pytest.fixture
def print_section(capsys):
    """Print a benchmark's report outside pytest's capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print
