"""The paper's headline statistics (Sections I and VI).

"The use of our model improves the accuracy of these attacks by about
2% on average.  However, for certain subclasses of rule sets and flow
rates, this improvement can grow to 23% or more, yielding an average
accuracy approaching 85%" (naive attackers "barely reach 62%" there).
"""

from benchmarks.conftest import get_fig6_result
from repro.experiments.report import paper_vs_measured


def test_bench_headline(benchmark, print_section):
    result = benchmark.pedantic(get_fig6_result, rounds=1, iterations=1)
    headline = result.headline()

    improvements = sorted(result.improvements(), reverse=True)
    top = improvements[: max(1, len(improvements) // 10)]
    best_subclass_improvement = sum(top) / len(top)

    print_section(
        paper_vs_measured(
            [
                ("mean improvement", 0.02, headline["mean_improvement"]),
                (
                    "best-subclass improvement",
                    0.23,
                    best_subclass_improvement,
                ),
                (
                    "frac configs improving >= 15%",
                    0.20,
                    headline["frac_configs_improving_15pct"],
                ),
                (
                    "frac configs improving >= 35%",
                    0.05,
                    headline["frac_configs_improving_35pct"],
                ),
                ("mean model accuracy", 0.75, headline["mean_model_accuracy"]),
            ],
            title=(
                "Headline statistics "
                f"(n = {int(headline['n_configs'])} configurations)"
            ),
        )
    )

    assert headline["mean_improvement"] >= -0.05
    assert headline["mean_model_accuracy"] >= headline["mean_naive_accuracy"] - 0.05
