"""Ablation: how the detection window ``T`` shapes the attack.

DESIGN.md's experiment index calls for ablations of the design's
parameters.  The detection window is the most consequential: rule TTLs
cap how far back the cache can "remember" (at most 1 s in the paper's
menu), so as ``T`` grows past the longest TTL the probe's evidence
covers a shrinking fraction of the question being asked, the prior
``P(X̂=0) = (1-p)^T`` decays, and the optimal probe's information gain
collapses.  This benchmark traces that curve on one paper-scale
configuration.
"""

from repro.core.compact_model import CompactModel
from repro.core.decision_tree import DecisionTree
from repro.core.inference import ReconInference
from repro.core.selection import best_single_probe
from repro.experiments.report import format_table
from repro.flows.config import ConfigGenerator, ConfigParams

#: Detection windows in seconds (the paper fixes 15 s).
WINDOWS = (0.5, 1.0, 2.0, 5.0, 15.0)


def test_bench_ablation_window(benchmark, print_section):
    params = ConfigParams(absence_range=(0.5, 0.95))
    config = ConfigGenerator(params, seed=404).sample()
    model = CompactModel(
        config.policy, config.universe, config.delta, config.cache_size
    )

    def sweep():
        rows = []
        for window in WINDOWS:
            steps = int(window / config.delta)
            inference = ReconInference(model, config.target_flow, steps)
            choice = best_single_probe(inference)
            tree = DecisionTree.build(inference, choice.probes)
            rows.append(
                [
                    window,
                    inference.prior_absent(),
                    choice.probes[0],
                    choice.gain,
                    tree.expected_accuracy(),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_section(
        format_table(
            [
                "window (s)",
                "P(absent)",
                "optimal probe",
                "IG (bits)",
                "predicted acc",
            ],
            rows,
            title=(
                "Detection-window ablation (one configuration; max rule "
                "TTL = 1 s)"
            ),
        )
    )

    priors = [row[1] for row in rows]
    assert priors == sorted(priors, reverse=True)  # prior decays with T
    # Short windows (within TTL reach) are at least as informative as
    # the 15 s window.
    assert rows[1][3] >= rows[-1][3] - 1e-9
