"""Figure 7b: accuracy vs P(absence of target), constrained attacker.

Same three attackers as Figure 7a, but along the absence-probability
axis.  Paper shape: accuracies track the prior upward; the constrained
model attacker stays close to the naive attacker and above random.
"""

from benchmarks.conftest import get_fig7_result
from repro.experiments.report import format_series, format_table


def test_bench_fig7b(benchmark, print_section):
    result = benchmark.pedantic(get_fig7_result, rounds=1, iterations=1)

    print_section(
        format_series(
            "P(absent)",
            result.bin_centers(),
            result.accuracy_series(),
            title=(
                "Figure 7b -- average accuracy vs probability of absence "
                "of the target flow (constrained model attacker)"
            ),
        )
    )
    summary = result.summary()
    print_section(
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in summary.items()],
            title="Pooled summary",
        )
    )

    series = result.accuracy_series()
    constrained = [v for v in series["constrained"] if v is not None]
    random_acc = [v for v in series["random"] if v is not None]
    # Shape: accuracy rises along the absence axis for the model-based
    # attacker (tracks the prior), and beats random pooled.
    assert constrained == sorted(constrained) or len(constrained) <= 1 or (
        constrained[-1] >= constrained[0] - 0.05
    )
    assert summary["constrained"] >= summary["random"] - 0.02
    del random_acc
