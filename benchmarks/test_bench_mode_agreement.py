"""Fidelity check: packet-level trials vs fast flow-table replay.

The figure benchmarks default to the table-level trial runner for
speed; this benchmark validates that substitution by running identical
seeded trials through both runners at paper scale and reporting the
probe-outcome and ground-truth agreement rate (it should be ~100%: the
4 ms hit/miss gap cannot be flipped by sub-millisecond latency noise,
only by rare boundary effects such as a rule expiring between the two
runners' slightly different probe timestamps).
"""

from benchmarks.conftest import experiment_params
from repro.experiments.harness import ConfigHarness
from repro.experiments.params import bench_scale
from repro.experiments.report import format_table
from repro.experiments.trials import run_network_trial, run_table_trial
from repro.flows.config import ConfigGenerator


def test_bench_mode_agreement(benchmark, print_section):
    params = experiment_params(seed=31)
    n_trials = max(10, int(100 * bench_scale()))

    def run():
        generator = ConfigGenerator(params.config, seed=31)
        harness = ConfigHarness(generator.sample(), params, rng=generator.rng)
        attackers = harness.attackers()
        agree_truth = agree_outcomes = 0
        for seed in range(n_trials):
            network = run_network_trial(harness.config, attackers, seed=seed)
            table = run_table_trial(harness.config, attackers, seed=seed)
            agree_truth += network.ground_truth == table.ground_truth
            agree_outcomes += all(
                network.outcomes[name] == table.outcomes[name]
                for name in ("naive", "model", "constrained")
            )
        return agree_truth / n_trials, agree_outcomes / n_trials

    truth_rate, outcome_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section(
        format_table(
            ["agreement", "rate"],
            [
                ["ground truth", truth_rate],
                ["all probe outcomes", outcome_rate],
            ],
            title=(
                f"Network-mode vs table-mode agreement over {n_trials} "
                "seeded trials"
            ),
        )
    )
    # Exact by construction: k/n with k == n.
    assert truth_rate == 1.0  # repro: noqa[PY001]
    assert outcome_rate >= 0.9
