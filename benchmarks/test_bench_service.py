"""Service throughput: sessions/sec vs serially looping ``run_trials``.

The service's contract (docs/SERVICE.md) is *same numbers, more
sessions per second*.  The baseline is what reconnoitring ``N`` targets
looked like before the service existed: a loop constructing a fresh
:class:`ConfigHarness` per target and calling ``run_trials()`` -- every
iteration pays the full per-session setup (transition-entry build,
both chain evolutions, two probe selections).  A warm
:class:`ReconService` shares the scenario's :class:`CompactModel` --
and with it the sorted transition entries, the base power chain, and
the persistent worker pool -- across sessions, so each additional
session pays only its own exclusion evolution, probe selection, and
trials.

Steady-state throughput is measured the way a service runs: one warmup
job primes the model and the pool, then a second job over *disjoint*
targets is timed.  Both halves of the contract are pinned:

* every measured session's accuracies equal the serial harness run on
  the same target with the same ``default_rng([seed, session])``
  stream (bit-identical numbers);
* at ``--shards >= 4`` the warm service sustains at least
  ``MIN_SPEEDUP`` times the baseline's sessions/sec.

``REPRO_BENCH_SERVICE_OUT=<path>`` additionally writes the measured
numbers as the committed ``BENCH_service.json`` evidence document.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from dataclasses import replace

import numpy as np

from repro.apispec import JobSpec
from repro.experiments.harness import ConfigHarness
from repro.experiments.report import format_table
from repro.flows.config import ConfigGenerator, ConfigParams
from repro.service import ReconService
from repro.service.sessions import SESSION_ATTACKERS, eligible_targets

SEED = 2017
N_WARMUP = 4
N_SESSIONS = 8
N_TRIALS = 2
SHARDS = 4
MIN_SPEEDUP = 4.0


def _bench_spec(**overrides) -> JobSpec:
    """A setup-heavy job: the paper's 16-flow topology, short window."""
    fields = dict(
        experiment="recon",
        config=ConfigParams(window_seconds=1.0, delta=0.05),
        n_trials=N_TRIALS,
        seed=SEED,
        trial_mode="table",
        shards=SHARDS,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def _split_targets(spec):
    """(warmup, measured): disjoint target sets on one scenario."""
    scenario = ConfigGenerator(spec.config, seed=spec.seed).sample()
    probe = _bench_spec(n_targets=N_WARMUP + N_SESSIONS)
    targets = eligible_targets(scenario, probe)
    assert len(targets) == N_WARMUP + N_SESSIONS
    return scenario, targets[:N_WARMUP], targets[N_WARMUP:]


def _serial_baseline(spec, scenario, targets):
    """The pre-service loop: a fresh harness + ``run_trials()`` each."""
    params = spec.to_params()
    accuracies = []
    start = time.perf_counter()
    for index, target in enumerate(targets):
        harness = ConfigHarness(
            replace(scenario, target_flow=int(target)),
            params,
            rng=np.random.default_rng([spec.seed, index]),
        )
        accuracies.append(harness.run_trials().accuracies)
    return accuracies, time.perf_counter() - start


def _service_run(warm_spec, measured_spec, state):
    """Warm the service on one job, then time a disjoint-target job."""
    service = ReconService(state, shards=SHARDS)
    try:
        service.submit(warm_spec)
        asyncio.run(service.drain())
        service.submit(measured_spec)
        start = time.perf_counter()
        asyncio.run(service.drain())
        elapsed = time.perf_counter() - start
        sessions = service.store.completed_sessions(measured_spec.job_id)
        rows = [sessions[index]["series"]["session"]
                for index in sorted(sessions)]
    finally:
        service.close()
    return rows, elapsed


def test_bench_service_throughput(benchmark, print_section, tmp_path):
    spec = _bench_spec()
    scenario, warm_targets, measured_targets = _split_targets(spec)
    warm_spec = _bench_spec(
        targets=tuple(int(t) for t in warm_targets), job_id="warmup"
    )
    measured_spec = _bench_spec(
        targets=tuple(int(t) for t in measured_targets), job_id="measured"
    )

    serial_accuracies, serial_seconds = _serial_baseline(
        spec, scenario, measured_targets
    )

    (rows, service_seconds) = benchmark.pedantic(
        lambda: _service_run(warm_spec, measured_spec, tmp_path / "state"),
        rounds=1,
        iterations=1,
    )

    n = len(measured_targets)
    assert n == N_SESSIONS
    serial_rate = n / serial_seconds
    service_rate = n / service_seconds
    speedup = service_rate / serial_rate

    print_section(
        format_table(
            ["run", "seconds", "sessions/sec"],
            [
                [f"serial run_trials loop ({n} sessions)",
                 serial_seconds, serial_rate],
                [f"warm service (shards={SHARDS})",
                 service_seconds, service_rate],
                ["speedup", "", speedup],
            ],
            title="Reconnaissance session throughput",
        )
    )

    # Determinism first: the service must not change a single number.
    # The serial loop also ran the constrained attacker (part of
    # run_trials' default lineup); the session attackers' accuracies
    # must match it bit for bit.
    expected = [
        {name: accuracies[name] for name in SESSION_ATTACKERS}
        for accuracies in serial_accuracies
    ]
    assert [row["accuracies"] for row in rows] == expected

    out = os.environ.get("REPRO_BENCH_SERVICE_OUT")
    if out:
        document = {
            "benchmark": "service_throughput",
            "machine_info": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "system": platform.system(),
                "cpus": os.cpu_count(),
            },
            "spec": {
                "warmup_sessions": N_WARMUP,
                "measured_sessions": n,
                "trials_per_session": spec.n_trials,
                "shards": SHARDS,
                "seed": spec.seed,
                "trial_mode": spec.trial_mode,
                "window_seconds": spec.config.window_seconds,
                "delta": spec.config.delta,
            },
            "serial_seconds": serial_seconds,
            "service_seconds": service_seconds,
            "serial_sessions_per_sec": serial_rate,
            "service_sessions_per_sec": service_rate,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "bit_identical_accuracies": True,
        }
        with open(out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    assert speedup >= MIN_SPEEDUP, (
        f"warm service at shards={SHARDS} gave {speedup:.2f}x the serial "
        f"sessions/sec ({serial_rate:.2f}/s -> {service_rate:.2f}/s), "
        f"expected >= {MIN_SPEEDUP}x"
    )
