"""Figure 6b: CDF of the model attacker's additive accuracy improvement.

Paper shape to reproduce: most configurations see a small (or zero)
improvement, with a heavy right tail -- ">= 15% improvement for about
20% of network configurations, and for 5% of configurations this
improvement exceeds 35%".
"""

from benchmarks.conftest import get_fig6_result
from repro.analysis.cdf import survival_at
from repro.experiments.report import format_cdf, format_table


def test_bench_fig6b(benchmark, print_section):
    result = benchmark.pedantic(get_fig6_result, rounds=1, iterations=1)

    improvements = result.improvements()
    print_section(
        format_cdf(
            result.improvement_cdf(),
            title=(
                "Figure 6b -- CDF of additive improvement in average "
                "accuracy over the naive attacker, per configuration"
            ),
        )
    )
    print_section(
        format_table(
            ["tail", "paper", "measured"],
            [
                ["P(improvement >= 0.15)", 0.20, survival_at(improvements, 0.15)],
                ["P(improvement >= 0.35)", 0.05, survival_at(improvements, 0.35)],
            ],
            title="Improvement tail vs paper",
        )
    )

    # Shape: improvements are bounded and not systematically negative.
    assert all(-1.0 <= value <= 1.0 for value in improvements)
    mean = sum(improvements) / len(improvements)
    assert mean >= -0.05
