"""Ablation: how much do extra (non-adaptive) probes buy? (Section V-B)

The paper extends single-probe selection to m probes chosen jointly by
information gain, evaluated through a decision tree over outcome
vectors.  This benchmark measures, on screened paper-scale
configurations, the predicted information gain and decision-tree
accuracy for m = 1, 2, 3.
"""

from benchmarks.conftest import experiment_params
from repro.core.decision_tree import DecisionTree
from repro.core.selection import best_probe_set
from repro.experiments.harness import sample_screened_harnesses
from repro.experiments.params import bench_scale
from repro.experiments.report import format_table


def test_bench_ablation_multiprobe(benchmark, print_section):
    params = experiment_params(seed=55).with_absence_range(0.5, 0.95)
    n_configs = max(2, round(10 * bench_scale() * 2))

    from repro.core.attacker import ModelAttacker

    n_trials = max(40, int(100 * bench_scale() * 2))

    def run():
        harnesses = sample_screened_harnesses(params, n_configs)
        rows = []
        for index, harness in enumerate(harnesses):
            row = [index]
            for m in (1, 2, 3):
                choice = best_probe_set(
                    harness.inference, m, method="greedy"
                )
                tree = DecisionTree.build(harness.inference, choice.probes)
                row.extend([choice.gain, tree.expected_accuracy()])
            # Measured accuracy at m=1 (query) vs m=2 (decision tree).
            one = ModelAttacker(harness.inference, n_probes=1)
            two = ModelAttacker(
                harness.inference, n_probes=2, decision="map",
                selection_method="greedy",
            )
            one.name, two.name = "m1", "m2"
            measured = harness.run_trials(
                n_trials=n_trials, attackers=(one, two)
            )
            row.extend(
                [measured.accuracies["m1"], measured.accuracies["m2"]]
            )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section(
        format_table(
            [
                "config",
                "IG m=1",
                "pred m=1",
                "IG m=2",
                "pred m=2",
                "IG m=3",
                "pred m=3",
                "meas m=1",
                "meas m=2",
            ],
            rows,
            title=(
                "Multi-probe ablation on screened configurations "
                "(greedy selection; predicted = decision-tree MAP, "
                f"measured = {n_trials} trials)"
            ),
        )
    )

    for row in rows:
        # Information gain is monotone in the probe budget.
        ig1, ig2, ig3 = row[1], row[3], row[5]
        assert ig2 >= ig1 - 1e-9
        assert ig3 >= ig2 - 1e-9
        # Measured accuracies are valid probabilities.
        assert 0.0 <= row[7] <= 1.0
        assert 0.0 <= row[8] <= 1.0
