"""Benchmarks for the probe-scoring engine vs the serial selection loop.

The engine's cached prefix distributions and batched matrix scoring
replace the per-candidate dict walks of the original implementation.
On the 10-flow / 8-rule universe below, exhaustive 2-probe selection
must come out at least 2x faster than the pre-engine serial loop (the
acceptance floor; in practice the gap is much larger because the serial
path re-walks every prefix once per tail).
"""

from __future__ import annotations

import time

import pytest

from repro.core.compact_model import CompactModel
from repro.core.engine import ProbeScoringEngine
from repro.core.inference import ReconInference
from repro.core.selection import best_probe_set, best_probe_set_serial
from repro.flows.flowid import FlowId
from repro.flows.policy import ModelRule, Policy
from repro.flows.universe import FlowUniverse

N_FLOWS = 10
CACHE_SIZE = 4
TARGET = 0
WINDOW_STEPS = 40
DELTA = 0.1

#: Eight rules over ten flows: overlapping pairs plus two singletons.
RULE_SPECS = [
    ({0, 1}, 12),
    ({1, 2}, 9),
    ({3, 4}, 15),
    ({4, 5}, 10),
    ({6, 7}, 8),
    ({7, 8}, 14),
    ({9}, 11),
    ({0, 9}, 7),
]

RATES = [0.6, 1.1, 0.4, 0.9, 0.5, 1.3, 0.7, 0.3, 1.0, 0.8]


@pytest.fixture(scope="module")
def model():
    flows = tuple(FlowId(src=i, dst=999) for i in range(N_FLOWS))
    universe = FlowUniverse(flows, tuple(RATES))
    rules = [
        ModelRule(
            index=rank,
            name=f"r{rank}",
            flows=frozenset(covered),
            timeout_steps=timeout,
            priority=100 - rank,
        )
        for rank, (covered, timeout) in enumerate(RULE_SPECS)
    ]
    return CompactModel(Policy(rules), universe, DELTA, CACHE_SIZE)


def _fresh_inference(model):
    return ReconInference(model, TARGET, WINDOW_STEPS)


def test_bench_serial_exhaustive_pair(benchmark, model):
    """Pre-engine baseline: serial dict-walk over all 45 pairs."""

    def run():
        return best_probe_set_serial(_fresh_inference(model), 2)

    choice = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(choice.probes) == 2


def test_bench_engine_exhaustive_pair(benchmark, model):
    """Engine path: shared prefix cache + batched matrix scoring."""

    def run():
        return best_probe_set(_fresh_inference(model), 2)

    choice = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(choice.probes) == 2


def test_engine_speedup_at_least_2x(model):
    """Acceptance floor: engine >= 2x faster than the serial loop.

    Both paths pay for a fresh :class:`ReconInference` (window evolution
    included) so the comparison is end-to-end per configuration, exactly
    what the experiment harness pays per trial.
    """
    # Warm-up outside the timed region (imports, sparse builds, JIT-free
    # but cache-sensitive numpy paths).
    best_probe_set_serial(_fresh_inference(model), 2)
    best_probe_set(_fresh_inference(model), 2)

    serial_best = float("inf")
    engine_best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        serial_choice = best_probe_set_serial(_fresh_inference(model), 2)
        serial_best = min(serial_best, time.perf_counter() - start)

        start = time.perf_counter()
        engine_choice = best_probe_set(_fresh_inference(model), 2)
        engine_best = min(engine_best, time.perf_counter() - start)

    assert engine_choice.probes == serial_choice.probes
    assert engine_choice.gain == pytest.approx(serial_choice.gain, abs=1e-12)
    speedup = serial_best / engine_best
    assert speedup >= 2.0, (
        f"engine {engine_best:.4f}s vs serial {serial_best:.4f}s "
        f"-> only {speedup:.2f}x"
    )


def test_engine_reuse_amortises_cache(model):
    """A second selection on a warm engine does no new prefix work."""
    inference = _fresh_inference(model)
    engine = ProbeScoringEngine(inference)
    engine.best_set(2)
    misses_after_first = engine.stats.cache_misses
    engine.best_set(2)
    assert engine.stats.cache_misses == misses_after_first
    assert engine.stats.cache_hits > 0
