"""Ablation: non-stationary traffic vs the stationary Markov model.

The model assumes homogeneous Poisson arrivals; real networks breathe
(diurnal load, bursts).  Here the background traffic follows a
piecewise-constant rate profile while the attacker models the network
with the *time-averaged* rates -- the best a long-observing attacker
could estimate.  We measure how much the model attacker's accuracy
degrades as the profile's burstiness grows, against the naive attacker
who never used the rates anyway.
"""

import numpy as np

from benchmarks.conftest import experiment_params
from repro.core.attacker import NaiveAttacker
from repro.experiments.harness import sample_screened_harnesses
from repro.experiments.params import bench_scale
from repro.experiments.report import format_table
from repro.experiments.trials import _TableWorld
from repro.flows.arrival import (
    PiecewiseRateProfile,
    occurred_in_window,
    sample_schedule_with_profile,
)

#: (label, factors) -- 3-phase profiles over the 15 s window with unit
#: time average, increasing burstiness.
PROFILES = (
    ("stationary", (1.0, 1.0, 1.0)),
    ("mild diurnal", (0.7, 1.3, 1.0)),
    ("strong diurnal", (0.4, 1.9, 0.7)),
    ("bursty", (0.1, 2.8, 0.1)),
)


def test_bench_ablation_nonstationary(benchmark, print_section):
    params = experiment_params(seed=808).with_absence_range(0.5, 0.95)
    n_trials = max(60, int(200 * bench_scale()))

    def run():
        harness = sample_screened_harnesses(params, 1)[0]
        config = harness.config
        window = config.window_seconds
        breakpoints = [0.0, window / 3, 2 * window / 3]
        rows = []
        for label, factors in PROFILES:
            profile = PiecewiseRateProfile(breakpoints, list(factors))
            mean_factor = profile.mean_factor(window)
            rng = np.random.default_rng(99)
            attackers = {
                "naive": NaiveAttacker(config.target_flow),
                "model": harness.model_attacker,
            }
            correct = {name: 0 for name in attackers}
            for _ in range(n_trials):
                schedule = sample_schedule_with_profile(
                    config.universe, profile, window, rng
                )
                truth = int(
                    occurred_in_window(
                        schedule, config.target_flow, 0.0, window
                    )
                )
                for name, attacker in attackers.items():
                    world = _TableWorld(config)
                    for arrival in schedule:
                        world.arrival(arrival.flow_index, arrival.time)
                    bits = tuple(
                        world.probe(flow, window + 0.0005 * i)
                        for i, flow in enumerate(attacker.plan())
                    )
                    if attacker.decide(bits) == truth:
                        correct[name] += 1
            rows.append(
                [
                    label,
                    mean_factor,
                    correct["model"] / n_trials,
                    correct["naive"] / n_trials,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section(
        format_table(
            ["traffic profile", "mean factor", "model acc", "naive acc"],
            rows,
            title=(
                "Non-stationary traffic vs the stationary attacker model "
                f"({n_trials} trials per row; attacker plans on averaged "
                "rates)"
            ),
        )
    )

    # Shape: profiles average to the modelled load (sanity), accuracies
    # stay valid probabilities, and the stationary row is the reference.
    for row in rows:
        assert abs(row[1] - 1.0) < 1e-9
        assert 0.0 <= row[2] <= 1.0
        assert 0.0 <= row[3] <= 1.0