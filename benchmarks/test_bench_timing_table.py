"""Section VI-A timing characterisation of the side channel.

Paper measurements on Mininet/OVS/Ryu: response time with a covering
rule cached 0.087 ms (std 0.021 ms); with rule setup required 4.070 ms
(std 1.806 ms); trivially separable with a 1 ms threshold.  This
benchmark regenerates the table on the discrete-event substrate.
"""

from repro.experiments.params import bench_scale
from repro.experiments.report import paper_vs_measured
from repro.experiments.tables import timing_table


def test_bench_timing_table(benchmark, print_section):
    n_samples = max(60, int(400 * bench_scale()))
    table = benchmark.pedantic(
        timing_table,
        kwargs={"n_samples": n_samples, "seed": 0},
        rounds=1,
        iterations=1,
    )
    hit, miss = table["hit"], table["miss"]

    print_section(
        paper_vs_measured(
            [
                ("hit mean (ms)", hit.paper_mean * 1e3, hit.mean * 1e3),
                ("hit std (ms)", hit.paper_std * 1e3, hit.std * 1e3),
                ("miss mean (ms)", miss.paper_mean * 1e3, miss.mean * 1e3),
                ("miss std (ms)", miss.paper_std * 1e3, miss.std * 1e3),
            ],
            title=(
                "Section VI-A -- attacker-observed response times "
                f"({hit.samples} samples per population)"
            ),
        )
    )
    print_section(
        f"threshold = {table['threshold'] * 1e3:g} ms, "
        f"classification accuracy = {table['threshold_accuracy']:.4f}"
    )

    # Shape: populations separable at the paper's threshold, and the
    # calibrated means within 25% of the paper's.
    assert table["threshold_accuracy"] > 0.99
    assert abs(hit.mean - hit.paper_mean) / hit.paper_mean < 0.25
    assert abs(miss.mean - miss.paper_mean) / miss.paper_mean < 0.25
