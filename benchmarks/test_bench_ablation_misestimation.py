"""Ablation: robustness to the attacker's rate-knowledge quality.

The threat model grants the attacker *estimates* of each flow's Poisson
parameter ("more realistically, the attacker might only be able to
estimate lambda_f", Section IV-A1).  This benchmark perturbs the
attacker's rate knowledge by multiplicative log-normal noise, re-runs
probe selection with the corrupted model, and measures how often the
chosen probe changes and how much measured accuracy degrades -- the
practical question of whether the attack survives sloppy recon.
"""

import numpy as np

from benchmarks.conftest import experiment_params
from repro.core.attacker import ModelAttacker, NaiveAttacker
from repro.core.compact_model import CompactModel
from repro.core.inference import ReconInference
from repro.experiments.harness import sample_screened_harnesses
from repro.experiments.params import bench_scale
from repro.experiments.report import format_table

#: Multiplicative noise levels (log-normal sigma) on the rate estimates.
NOISE_LEVELS = (0.0, 0.25, 0.5, 1.0)


def test_bench_ablation_misestimation(benchmark, print_section):
    params = experiment_params(seed=606).with_absence_range(0.5, 0.95)
    n_trials = max(40, int(150 * bench_scale()))

    def run():
        harness = sample_screened_harnesses(params, 1)[0]
        config = harness.config
        rng = np.random.default_rng(77)
        rows = []
        for sigma in NOISE_LEVELS:
            if sigma <= 0.0:
                noisy_universe = config.universe
            else:
                factors = rng.lognormal(0.0, sigma, len(config.universe))
                noisy_universe = config.universe.with_rates(
                    tuple(
                        rate * factor
                        for rate, factor in zip(
                            config.universe.rates, factors
                        )
                    )
                )
            # The attacker plans with the corrupted model...
            noisy_model = CompactModel(
                config.policy,
                noisy_universe,
                config.delta,
                config.cache_size,
            )
            noisy_inference = ReconInference(
                noisy_model, config.target_flow, config.window_steps
            )
            attacker = ModelAttacker(noisy_inference)
            attacker.name = "model"
            # ...but reality follows the true rates.
            result = harness.run_trials(
                n_trials=n_trials,
                attackers=(
                    NaiveAttacker(config.target_flow),
                    attacker,
                ),
            )
            rows.append(
                [
                    sigma,
                    attacker.probes[0],
                    result.accuracies["model"],
                    result.accuracies["naive"],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section(
        format_table(
            [
                "rate-noise sigma",
                "chosen probe",
                "model acc",
                "naive acc",
            ],
            rows,
            title=(
                "Rate-misestimation ablation: attacker plans with noisy "
                "lambda estimates (one screened configuration, "
                f"{max(40, int(150 * bench_scale()))} trials per row)"
            ),
        )
    )

    # Shape: with zero noise the model attacker is at least competitive
    # with naive; degradation with noise stays bounded (accuracy is a
    # probability).
    assert rows[0][2] >= rows[0][3] - 0.1
    for row in rows:
        assert 0.0 <= row[2] <= 1.0
