"""Sections IV-A2 / IV-B: state-space sizes of the two models.

The compact model's point: at the evaluation's parameters (12 rules,
cache 6) it has 2509 non-empty states, where the basic model's formula
gives billions.  The paper's worked example (|Rules|=10, t=100, n=8)
quotes ~5.9e7; the printed formula evaluates to ~2e22 -- both values are
reported (see EXPERIMENTS.md for the discrepancy note).
"""

from repro.analysis.statecount import state_count_table
from repro.experiments.report import format_table
from repro.experiments.tables import statecount_report


def test_bench_statecount(benchmark, print_section):
    report = benchmark.pedantic(statecount_report, rounds=1, iterations=1)
    exp = report["experiment"]
    example = report["paper_example"]

    rows = [
        [
            "evaluation (12 rules, t=10, n=6)",
            float(exp["basic"]),
            float(exp["compact"]),
        ],
        [
            "paper example (10 rules, t=100, n=8), formula",
            float(example["basic_formula"]),
            None,
        ],
        [
            "paper example, value quoted in text",
            float(example["paper_quoted"]),
            None,
        ],
    ]
    print_section(
        format_table(
            ["setting", "basic model", "compact model"],
            rows,
            title="State-space sizes (basic vs compact)",
        )
    )

    sweep = state_count_table(12, 10, [2, 4, 6, 8])
    print_section(
        format_table(
            ["cache size", "basic", "compact", "ratio"],
            [
                [r["cache_size"], float(r["basic"]), r["compact"], r["ratio"]]
                for r in sweep
            ],
            title="Blow-up vs cache size (12 rules, t = 10 steps)",
        )
    )

    assert exp["compact"] == 2509
    assert exp["basic"] > 1e9
    assert example["basic_formula"] > 1e21
