"""Ablation: the step duration ``Delta`` and model fidelity.

The paper requires ``Delta`` "selected so that the probability of
multiple flows arriving in ``Delta`` time is negligible" but never
states its value.  This matters: with 16 flows at ``lambda ~ U[0,1]``
the aggregate rate is ~8/s, so at ``Delta = 0.1 s`` the normalised
single-arrival decomposition underweights arrivals by ~30%.  This
benchmark measures the compact model's hit-probability error against
ground-truth trace replay across ``Delta`` values, justifying the
library default of 0.01 s.
"""

import numpy as np

from repro.core.compact_model import CompactModel
from repro.core.inference import ReconInference
from repro.experiments.params import bench_scale
from repro.experiments.report import format_table
from repro.experiments.trials import _TableWorld
from repro.flows.arrival import sample_schedule
from repro.flows.config import ConfigGenerator, ConfigParams

DELTAS = (0.1, 0.05, 0.02, 0.01)


def test_bench_ablation_delta(benchmark, print_section):
    n_trials = max(300, int(2000 * bench_scale()))

    def run():
        rows = []
        for delta in DELTAS:
            params = ConfigParams(delta=delta)
            config = ConfigGenerator(params, seed=99).sample()
            model = CompactModel(
                config.policy,
                config.universe,
                config.delta,
                config.cache_size,
            )
            inference = ReconInference(
                model, config.target_flow, config.window_steps
            )
            predicted = np.array(
                [
                    inference.hit_probability(flow)
                    for flow in range(len(config.universe))
                ]
            )
            rng = np.random.default_rng(7)
            hits = np.zeros(len(config.universe))
            for _ in range(n_trials):
                world = _TableWorld(config)
                for arrival in sample_schedule(
                    config.universe, config.window_seconds, rng
                ):
                    world.arrival(arrival.flow_index, arrival.time)
                for flow in range(len(config.universe)):
                    if (
                        world.table.peek(
                            config.universe.flows[flow],
                            config.window_seconds,
                        )
                        is not None
                    ):
                        hits[flow] += 1
            empirical = hits / n_trials
            errors = np.abs(predicted - empirical)
            total_step_rate = sum(config.universe.rates) * delta
            rows.append(
                [
                    delta,
                    total_step_rate,
                    float(errors.mean()),
                    float(errors.max()),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section(
        format_table(
            [
                "Delta (s)",
                "Lambda*Delta",
                "mean |P(hit) error|",
                "max |P(hit) error|",
            ],
            rows,
            title=(
                "Step-duration ablation: compact-model hit-probability "
                f"error vs trace ground truth ({n_trials} traces per row)"
            ),
        )
    )

    # Shape: fidelity improves monotonically as Delta shrinks, and the
    # library default is well-calibrated.
    mean_errors = [row[2] for row in rows]
    assert mean_errors[-1] < mean_errors[0]
    assert mean_errors[-1] < 0.03
