"""Micro-benchmarks of the attack pipeline's computational stages.

These are conventional pytest-benchmark measurements (multiple rounds)
of the costs a real attacker pays per network configuration: building
the compact model's transition matrix, evolving the state distribution
over the detection window (Eqn. 8), and selecting the optimal probe.
The paper ran these on a 2.3 GHz / 128 GB server in MATLAB + C++; the
reproduction runs them in seconds on one laptop core.
"""

import pytest

from repro.core.compact_model import CompactModel
from repro.core.inference import ReconInference
from repro.core.selection import best_single_probe
from repro.flows.config import ConfigGenerator, ConfigParams


@pytest.fixture(scope="module")
def config():
    return ConfigGenerator(ConfigParams(), seed=2017).sample()


@pytest.fixture(scope="module")
def model(config):
    return CompactModel(
        config.policy, config.universe, config.delta, config.cache_size
    )


@pytest.fixture(scope="module")
def inference(config, model):
    return ReconInference(model, config.target_flow, config.window_steps)


def test_bench_transition_matrix_build(benchmark, config):
    """Build the 2510-state transition matrix from scratch."""

    def build():
        fresh = CompactModel(
            config.policy, config.universe, config.delta, config.cache_size
        )
        return fresh.transition_matrix()

    matrix = benchmark(build)
    assert matrix.shape[0] == 2510


def test_bench_window_evolution(benchmark, config, model):
    """Evolve the cache distribution over T = 1500 steps (Eqn. 8)."""
    matrix = model.transition_matrix()

    from repro.core.chain import evolve

    start = model.initial_distribution()
    dist = benchmark(evolve, start, matrix, config.window_steps)
    assert dist.sum() == pytest.approx(1.0)


def test_bench_probe_selection(benchmark, config, model):
    """Full single-probe selection over all 16 candidate flows."""

    def select():
        inference = ReconInference(
            model, config.target_flow, config.window_steps
        )
        return best_single_probe(inference)

    choice = benchmark.pedantic(select, rounds=3, iterations=1)
    assert 0 <= choice.probes[0] < 16


def test_bench_outcome_table_walk(benchmark, inference):
    """Joint outcome distribution for a 2-probe plan (Section V-B)."""

    def walk():
        inference._table_cache.clear()
        return inference.outcome_table((0, 1))

    table = benchmark(walk)
    assert sum(table.outcome_probs.values()) == pytest.approx(1.0)
